#![warn(missing_docs)]
//! # etlopt-workload
//!
//! Scenario builders and workload generation for the ICDE'05 evaluation.
//!
//! * [`scenarios`] — hand-built workflows, including the paper's running
//!   example (Fig. 1: `PARTS1`/`PARTS2` → `DW`) with matching data.
//! * [`generator`] — the seeded random workflow generator reproducing the
//!   evaluation's 40 test cases in their three size bands (small ≈ 15–25,
//!   medium ≈ 35–45, large ≈ 60–70 activities).
//! * [`datagen`] — random source tables and surrogate lookups for any
//!   generated workflow, so every scenario is executable end-to-end.
//! * [`calibrate`] — the statistics-refresh loop: observed selectivities
//!   from an engine run fed back into the workflow's estimates.

pub mod calibrate;
pub mod datagen;
pub mod generator;
pub mod scenarios;

pub use calibrate::{calibrate, CalibrationStore, StoreDir, StoreError};
pub use generator::{Generator, GeneratorConfig, Scenario, SizeCategory};
