//! Hand-built scenarios, headlined by the paper's running example.

use etlopt_core::naming::NamingRegistry;
use etlopt_core::predicate::Predicate;
use etlopt_core::rng::Rng;
use etlopt_core::scalar::Scalar;
use etlopt_core::schema::Schema;
use etlopt_core::semantics::{Aggregation, BinaryOp, UnaryOp};
use etlopt_core::workflow::{Workflow, WorkflowBuilder};
use etlopt_engine::{Catalog, Table};

/// The paper's Fig. 1 workflow.
///
/// `PARTS1(pkey,source,date,cost€)` holds monthly European data;
/// `PARTS2(pkey,source,date,dept,cost$)` holds daily American data. The
/// flow: a not-null check on branch 1; `$2€`, `A2E` and a monthly
/// aggregation (dropping `DEPT`) on branch 2; a union; a final selection on
/// the Euro cost; load into `DW(pkey,source,date,€cost)`.
///
/// Attribute names below are *reference* names per the naming principle
/// (§3.1): both `DATE` formats share `date`; the two `COST` homonyms are
/// split into `euro_cost` / `dollar_cost`.
pub fn fig1() -> Workflow {
    let mut b = WorkflowBuilder::new();
    // Node 1: PARTS1, monthly, Euros.
    let parts1 = b.source(
        "PARTS1",
        Schema::of(["pkey", "source", "date", "euro_cost"]),
        300.0,
    );
    // Node 2: PARTS2, daily, Dollars (≈30× the rows of a monthly source).
    let parts2 = b.source(
        "PARTS2",
        Schema::of(["pkey", "source", "date", "dept", "dollar_cost"]),
        9000.0,
    );
    // Node 3: NN(euro_cost) on branch 1.
    let nn = b.unary(
        "NN",
        UnaryOp::not_null("euro_cost").with_selectivity(0.95),
        parts1,
    );
    // Node 4: $2€ on branch 2.
    let d2e = b.unary(
        "$2E",
        UnaryOp::function("dollar2euro", ["dollar_cost"], "euro_cost"),
        parts2,
    );
    // Node 5: A2E date-format conversion (same reference name).
    let a2e = b.unary("A2E", UnaryOp::function("am2eu", ["date"], "date"), d2e);
    // Node 6: γ-SUM monthly aggregation; DEPT is discarded by the
    // aggregation's schema (≈1/30 of daily rows survive).
    let agg = b.unary(
        "γ-SUM",
        UnaryOp::aggregate(Aggregation::sum(
            ["pkey", "source", "date"],
            "euro_cost",
            "euro_cost",
        ))
        .with_selectivity(1.0 / 30.0),
        a2e,
    );
    // Node 7: U.
    let u = b.binary("U", BinaryOp::Union, nn, agg);
    // Node 8: σ(euro_cost ≥ 100): only costs above the threshold load.
    let sel = b.unary(
        "σ(€)",
        UnaryOp::filter(Predicate::ge("euro_cost", 100.0)).with_selectivity(0.4),
        u,
    );
    // Node 9: DW.
    b.target(
        "DW",
        Schema::of(["pkey", "source", "date", "euro_cost"]),
        sel,
    );
    b.build().expect("Fig. 1 workflow is valid")
}

/// The naming-principle bookkeeping behind [`fig1`] (§3.1): how the
/// physical attributes of the two sources map onto the reference names the
/// workflow uses.
pub fn fig1_naming() -> NamingRegistry {
    let mut reg = NamingRegistry::new();
    let pkey = reg.declare("pkey", "part production key").unwrap();
    let source = reg.declare("source", "source system id").unwrap();
    let date = reg.declare("date", "supply date (grouper)").unwrap();
    let eur = reg.declare("euro_cost", "part cost in Euros").unwrap();
    let usd = reg.declare("dollar_cost", "part cost in Dollars").unwrap();
    let dept = reg.declare("dept", "department").unwrap();
    for rs in ["PARTS1", "PARTS2"] {
        reg.map(rs, "PKEY", &pkey).unwrap();
        reg.map(rs, "SOURCE", &source).unwrap();
        // American and European dates are the same grouper entity…
        reg.map(rs, "DATE", &date).unwrap();
    }
    // …while the COST homonyms denote different entities.
    reg.map("PARTS1", "COST", &eur).unwrap();
    reg.map("PARTS2", "COST", &usd).unwrap();
    reg.map("PARTS2", "DEPT", &dept).unwrap();
    reg
}

/// Seeded data for [`fig1`]: monthly Euro rows for `PARTS1` (with a few
/// NULL costs for the `NN` check to catch) and daily Dollar rows for
/// `PARTS2`.
pub fn fig1_catalog(seed: u64, parts1_rows: usize, parts2_rows: usize) -> Catalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut catalog = Catalog::new();

    let mut t1 = Table::empty(Schema::of(["pkey", "source", "date", "euro_cost"]));
    for _ in 0..parts1_rows {
        let cost = if rng.gen_bool(0.05) {
            Scalar::Null
        } else {
            Scalar::Float((rng.gen_range(10.0..500.0_f64) * 100.0).round() / 100.0)
        };
        t1.push(vec![
            Scalar::Int(rng.gen_range(1..200)),
            Scalar::Int(1),
            // Monthly grain: day index snapped to the first of the month.
            Scalar::Date(rng.gen_range(0..24) * 30),
            cost,
        ])
        .unwrap();
    }
    catalog.insert("PARTS1", t1);

    let mut t2 = Table::empty(Schema::of([
        "pkey",
        "source",
        "date",
        "dept",
        "dollar_cost",
    ]));
    for _ in 0..parts2_rows {
        t2.push(vec![
            Scalar::Int(rng.gen_range(1..200)),
            Scalar::Int(2),
            // Daily grain, later snapped to months by the aggregation's
            // grouping on the (monthly) reference date.
            Scalar::Date(rng.gen_range(0..24) * 30),
            Scalar::Str(["toys", "tools", "food"][rng.gen_range(0..3usize)].to_owned()),
            Scalar::Float((rng.gen_range(10.0..600.0_f64) * 100.0).round() / 100.0),
        ])
        .unwrap();
    }
    catalog.insert("PARTS2", t2);
    catalog
}

/// A second hand-built scenario: click-stream consolidation. Two web logs
/// are cleansed (not-null, bot filtering), session keys get surrogates, and
/// a daily aggregate loads the warehouse. Exercises SK + FAC opportunities
/// (the two branch filters are homologous).
pub fn clickstream() -> Workflow {
    let mut b = WorkflowBuilder::new();
    let log1 = b.source(
        "LOG1",
        Schema::of(["session", "date", "clicks", "is_bot"]),
        50_000.0,
    );
    let log2 = b.source(
        "LOG2",
        Schema::of(["session", "date", "clicks", "is_bot"]),
        30_000.0,
    );
    let f1 = b.unary(
        "σ-bot-1",
        UnaryOp::filter(Predicate::eq("is_bot", 0)).with_selectivity(0.7),
        log1,
    );
    let f2 = b.unary(
        "σ-bot-2",
        UnaryOp::filter(Predicate::eq("is_bot", 0)).with_selectivity(0.7),
        log2,
    );
    let nn1 = b.unary(
        "NN-1",
        UnaryOp::not_null("clicks").with_selectivity(0.98),
        f1,
    );
    let nn2 = b.unary(
        "NN-2",
        UnaryOp::not_null("clicks").with_selectivity(0.98),
        f2,
    );
    let u = b.binary("U", BinaryOp::Union, nn1, nn2);
    let drop_bot = b.unary("π-out", UnaryOp::project_out(["is_bot"]), u);
    let sk = b.unary(
        "SK",
        UnaryOp::surrogate_key("session", "session_sk", "SESSIONS"),
        drop_bot,
    );
    let agg = b.unary(
        "γ-daily",
        UnaryOp::aggregate(Aggregation::sum(["session_sk", "date"], "clicks", "clicks"))
            .with_selectivity(0.2),
        sk,
    );
    b.target(
        "DW_CLICKS",
        Schema::of(["session_sk", "date", "clicks"]),
        agg,
    );
    b.build().expect("clickstream workflow is valid")
}

/// Data for [`clickstream`].
pub fn clickstream_catalog(seed: u64, rows_per_log: usize) -> Catalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut catalog = Catalog::new();
    for name in ["LOG1", "LOG2"] {
        let mut t = Table::empty(Schema::of(["session", "date", "clicks", "is_bot"]));
        for _ in 0..rows_per_log {
            t.push(vec![
                Scalar::Int(rng.gen_range(1..500)),
                Scalar::Date(rng.gen_range(0..30)),
                if rng.gen_bool(0.02) {
                    Scalar::Null
                } else {
                    Scalar::Int(rng.gen_range(1..50))
                },
                Scalar::Int(i64::from(rng.gen_bool(0.3))),
            ])
            .unwrap();
        }
        catalog.insert(name, t);
    }
    catalog
}

/// A third scenario: financial reconciliation via bag difference. Today's
/// ledger minus yesterday's snapshot yields the delta rows to load,
/// guarded by a currency normalization and a validity filter.
pub fn reconciliation() -> Workflow {
    let mut b = WorkflowBuilder::new();
    let today = b.source("LEDGER_TODAY", Schema::of(["acct", "dollar_amt"]), 20_000.0);
    let yesterday = b.source("LEDGER_YDAY", Schema::of(["acct", "dollar_amt"]), 19_000.0);
    let n1 = b.unary(
        "$2E-1",
        UnaryOp::function("dollar2euro", ["dollar_amt"], "euro_amt"),
        today,
    );
    let n2 = b.unary(
        "$2E-2",
        UnaryOp::function("dollar2euro", ["dollar_amt"], "euro_amt"),
        yesterday,
    );
    let diff = b.binary("Δ", BinaryOp::Difference, n1, n2);
    let sel = b.unary(
        "σ-valid",
        UnaryOp::filter(Predicate::gt("euro_amt", 0.0)).with_selectivity(0.9),
        diff,
    );
    b.target("DW_DELTA", Schema::of(["acct", "euro_amt"]), sel);
    b.build().expect("reconciliation workflow is valid")
}

/// Data for [`reconciliation`]: yesterday's ledger is a subset of today's
/// plus noise, so the difference is small and meaningful.
pub fn reconciliation_catalog(seed: u64, rows: usize) -> Catalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut catalog = Catalog::new();
    let mut today = Table::empty(Schema::of(["acct", "dollar_amt"]));
    let mut yday = Table::empty(Schema::of(["acct", "dollar_amt"]));
    for i in 0..rows {
        let acct = Scalar::Int(i as i64);
        let amt = Scalar::Float((rng.gen_range(-100.0..1000.0_f64) * 100.0).round() / 100.0);
        today.push(vec![acct.clone(), amt.clone()]).unwrap();
        if rng.gen_bool(0.9) {
            yday.push(vec![acct, amt]).unwrap();
        }
    }
    catalog.insert("LEDGER_TODAY", today);
    catalog.insert("LEDGER_YDAY", yday);
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::cost::RowCountModel;
    use etlopt_core::opt::{HeuristicSearch, Optimizer};
    use etlopt_engine::Executor;

    #[test]
    fn fig1_signature_matches_paper() {
        let wf = fig1();
        assert_eq!(
            wf.signature().to_string(),
            "((1.3)//(2.4.5.6)).7.8.9",
            "the paper's own example signature (§4.1)"
        );
    }

    #[test]
    fn fig1_has_the_paper_local_groups() {
        // "the local groups of the state are {3}, {4,5,6} and {8}".
        let wf = fig1();
        let groups = wf.local_groups().unwrap();
        let tokens: Vec<Vec<String>> = groups
            .iter()
            .map(|g| g.iter().map(|&n| wf.priority_token(n)).collect())
            .collect();
        assert_eq!(
            tokens,
            vec![
                vec!["3".to_owned()],
                vec!["4".into(), "5".into(), "6".into()],
                vec!["8".into()]
            ]
        );
    }

    #[test]
    fn fig1_executes_end_to_end() {
        let wf = fig1();
        let catalog = fig1_catalog(42, 300, 9000);
        let result = Executor::new(catalog).run(&wf).unwrap();
        let dw = result.target("DW").unwrap();
        assert!(!dw.is_empty());
        assert!(dw
            .schema()
            .same_attrs(&Schema::of(["pkey", "source", "date", "euro_cost"])));
        // Only costs ≥ 100 load.
        let cost_col = dw.col(&"euro_cost".into()).unwrap();
        assert!(dw
            .rows()
            .iter()
            .all(|r| r[cost_col].as_f64().unwrap() >= 100.0));
    }

    #[test]
    fn fig1_naming_registry_is_consistent() {
        let reg = fig1_naming();
        assert_eq!(reg.resolve("PARTS1", "COST").unwrap().name(), "euro_cost");
        assert_eq!(reg.resolve("PARTS2", "COST").unwrap().name(), "dollar_cost");
        assert_eq!(reg.resolve("PARTS1", "DATE"), reg.resolve("PARTS2", "DATE"));
    }

    #[test]
    fn fig1_optimized_is_cheaper_and_equivalent_on_data() {
        let wf = fig1();
        let model = RowCountModel::default();
        let out = HeuristicSearch::new().run(&wf, &model).unwrap();
        assert!(out.best_cost < out.initial_cost);
        let exec = Executor::new(fig1_catalog(7, 200, 4000));
        etlopt_engine::assert_equivalent_execution(&exec, &wf, &out.best);
    }

    #[test]
    fn clickstream_executes_and_optimizes() {
        let wf = clickstream();
        let exec = Executor::new(clickstream_catalog(1, 2000));
        let model = RowCountModel::default();
        let out = HeuristicSearch::new().run(&wf, &model).unwrap();
        assert!(out.best_cost <= out.initial_cost);
        etlopt_engine::assert_equivalent_execution(&exec, &wf, &out.best);
    }

    #[test]
    fn reconciliation_executes_and_optimizes() {
        let wf = reconciliation();
        let exec = Executor::new(reconciliation_catalog(3, 500));
        let model = RowCountModel::default();
        let out = HeuristicSearch::new().run(&wf, &model).unwrap();
        assert!(out.best_cost <= out.initial_cost);
        etlopt_engine::assert_equivalent_execution(&exec, &wf, &out.best);
    }

    #[test]
    fn fig1_catalog_is_seed_deterministic() {
        let a = fig1_catalog(5, 50, 100);
        let b = fig1_catalog(5, 50, 100);
        assert_eq!(a.table("PARTS1"), b.table("PARTS1"));
        assert_eq!(a.table("PARTS2"), b.table("PARTS2"));
        let c = fig1_catalog(6, 50, 100);
        assert_ne!(a.table("PARTS1"), c.table("PARTS1"));
    }
}
