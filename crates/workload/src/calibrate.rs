//! Selectivity calibration: run a workflow over real data, observe each
//! activity's actual pass rate, and feed it back into the workflow's
//! estimates before (re-)optimizing.
//!
//! The paper's optimizer is only as good as its "assigned selectivities"
//! (§4.2); this is the statistics-refresh loop a production deployment
//! would run between loads.

use etlopt_core::activity::Op;
use etlopt_core::semantics::UnaryOp;
use etlopt_core::workflow::Workflow;
use etlopt_engine::{Executor, Result};

/// Floor for calibrated selectivities: an activity that passed zero rows on
/// this sample still gets a tiny positive estimate (zero would make every
/// downstream plan collapse to cost 0).
pub const MIN_SELECTIVITY: f64 = 1e-4;

/// Execute `wf` on the executor's catalog and return a copy whose
/// cardinality-changing unary activities carry their *observed*
/// selectivities.
pub fn calibrate(wf: &Workflow, exec: &Executor) -> Result<Workflow> {
    let result = exec.run(wf)?;
    let mut out = wf.clone();
    for node in wf.activities().map_err(etlopt_engine::EngineError::Core)? {
        let act = wf
            .graph()
            .activity(node)
            .map_err(etlopt_engine::EngineError::Core)?;
        let adjustable = matches!(
            act.op,
            Op::Unary(
                UnaryOp::Filter { .. }
                    | UnaryOp::NotNull { .. }
                    | UnaryOp::PkCheck { .. }
                    | UnaryOp::Dedup { .. }
                    | UnaryOp::Aggregate { .. }
            )
        );
        if !adjustable {
            continue;
        }
        if let Some(observed) = result.stats.observed_selectivity(&act.id.to_string()) {
            out = out
                .with_selectivity(node, observed.clamp(MIN_SELECTIVITY, 1.0))
                .map_err(etlopt_engine::EngineError::Core)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::cost::RowCountModel;
    use etlopt_core::opt::{HeuristicSearch, Optimizer};
    use etlopt_core::predicate::Predicate;
    use etlopt_core::scalar::Scalar;
    use etlopt_core::schema::Schema;
    use etlopt_core::semantics::UnaryOp;
    use etlopt_core::workflow::WorkflowBuilder;
    use etlopt_engine::{Catalog, Table};

    /// Two filters with *inverted* estimates: σa claims 0.1 but passes 90 %
    /// of rows; σb claims 0.9 but passes 10 %.
    fn misestimated() -> (Workflow, Executor) {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["v"]), 1000.0);
        let fa = b.unary(
            "σa",
            UnaryOp::filter(Predicate::ge("v", 10)).with_selectivity(0.1),
            s,
        );
        let fb = b.unary(
            "σb",
            UnaryOp::filter(Predicate::ge("v", 90)).with_selectivity(0.9),
            fa,
        );
        b.target("T", Schema::of(["v"]), fb);
        let wf = b.build().unwrap();

        let mut cat = Catalog::new();
        let rows: Vec<Vec<Scalar>> = (0..100i64).map(|i| vec![i.into()]).collect();
        cat.insert("S", Table::from_rows(Schema::of(["v"]), rows).unwrap());
        (wf, Executor::new(cat))
    }

    fn selectivity_of(wf: &Workflow, label: &str) -> f64 {
        let node = wf
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| wf.graph().activity(a).unwrap().label == label)
            .unwrap();
        wf.graph().activity(node).unwrap().selectivity()
    }

    #[test]
    fn calibration_replaces_estimates_with_observations() {
        let (wf, exec) = misestimated();
        let calibrated = calibrate(&wf, &exec).unwrap();
        assert!((selectivity_of(&calibrated, "σa") - 0.9).abs() < 1e-9);
        // σb sees only rows ≥ 10 (90 of them), passes 10 → 1/9.
        assert!((selectivity_of(&calibrated, "σb") - 10.0 / 90.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_flips_the_optimizers_ordering() {
        let (wf, exec) = misestimated();
        let model = RowCountModel::default();
        // With the bogus estimates HS keeps σa first…
        let before = HeuristicSearch::new().run(&wf, &model).unwrap();
        let first = before.best.activities().unwrap()[0];
        assert_eq!(before.best.graph().activity(first).unwrap().label, "σa");
        // …after calibration, the truly selective σb moves to the front.
        let calibrated = calibrate(&wf, &exec).unwrap();
        let after = HeuristicSearch::new().run(&calibrated, &model).unwrap();
        let first = after.best.activities().unwrap()[0];
        assert_eq!(after.best.graph().activity(first).unwrap().label, "σb");
    }

    #[test]
    fn zero_pass_rate_clamps_to_floor() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["v"]), 10.0);
        let f = b.unary(
            "σ-none",
            UnaryOp::filter(Predicate::gt("v", 1_000_000)).with_selectivity(0.5),
            s,
        );
        b.target("T", Schema::of(["v"]), f);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert(
            "S",
            Table::from_rows(Schema::of(["v"]), vec![vec![1.into()], vec![2.into()]]).unwrap(),
        );
        let calibrated = calibrate(&wf, &Executor::new(cat)).unwrap();
        assert!((selectivity_of(&calibrated, "σ-none") - MIN_SELECTIVITY).abs() < 1e-12);
    }

    #[test]
    fn one_to_one_activities_are_untouched() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 10.0);
        let f = b.unary("f", UnaryOp::function("scale", ["v"], "v2"), s);
        b.target("T", Schema::of(["k", "v2"]), f);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert(
            "S",
            Table::from_rows(Schema::of(["k", "v"]), vec![vec![1.into(), 2.0.into()]]).unwrap(),
        );
        let calibrated = calibrate(&wf, &Executor::new(cat)).unwrap();
        assert!((selectivity_of(&calibrated, "f") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn calibrated_workflow_stays_equivalent() {
        let (wf, exec) = misestimated();
        let calibrated = calibrate(&wf, &exec).unwrap();
        // Selectivities are metadata, not semantics.
        assert!(etlopt_core::postcond::equivalent(&wf, &calibrated).unwrap());
        assert!(etlopt_engine::equivalent_execution(&exec, &wf, &calibrated).unwrap());
    }
}
