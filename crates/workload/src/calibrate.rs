//! Selectivity calibration: run a workflow over real data, observe each
//! activity's actual pass rate, and feed it back into the workflow's
//! estimates before (re-)optimizing.
//!
//! The paper's optimizer is only as good as its "assigned selectivities"
//! (§4.2); this is the statistics-refresh loop a production deployment
//! would run between loads.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use etlopt_core::activity::Op;
use etlopt_core::opt::adaptive::{CalEntry, Calibration};
use etlopt_core::semantics::UnaryOp;
use etlopt_core::workflow::Workflow;
use etlopt_engine::{Executor, Result};

/// Floor for calibrated selectivities: an activity that passed zero rows on
/// this sample still gets a tiny positive estimate (zero would make every
/// downstream plan collapse to cost 0). Shared with the adaptive loop's
/// clamp so one-shot and feedback-loop calibration agree.
pub const MIN_SELECTIVITY: f64 = etlopt_core::opt::adaptive::SELECTIVITY_FLOOR;

/// The persistent calibration layer of the adaptive re-optimization loop:
/// observed per-activity row traffic keyed by u128 activity-identity
/// fingerprints (`etlopt_core::opt::adaptive::activity_key`), plus
/// observed source cardinalities. Implements [`Calibration`] for the loop
/// and adds what a between-loads deployment needs on top: lossless JSON
/// round-tripping (hand-rolled — the workspace is offline/zero-dep) and a
/// commutative, idempotent [`CalibrationStore::merge`] so stores built by
/// independent runs can be combined in any order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CalibrationStore {
    /// key → (activity id string, observed tallies), key-ordered.
    entries: BTreeMap<u128, (String, CalEntry)>,
    /// source recordset name → observed cardinality.
    sources: BTreeMap<String, u64>,
}

impl CalibrationStore {
    /// An empty store.
    pub fn new() -> CalibrationStore {
        CalibrationStore::default()
    }

    /// Number of calibrated activities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.sources.is_empty()
    }

    /// Entries in key order: `(key, activity id string, entry)`.
    pub fn entries(&self) -> impl Iterator<Item = (u128, &str, CalEntry)> {
        self.entries.iter().map(|(k, (a, e))| (*k, a.as_str(), *e))
    }

    /// Observed source cardinalities, name-ordered.
    pub fn sources(&self) -> impl Iterator<Item = (&str, u64)> {
        self.sources.iter().map(|(n, r)| (n.as_str(), *r))
    }

    /// Merge another store into this one. Per activity the max-evidence
    /// entry wins ([`CalEntry::prefer`]), per source the larger observed
    /// cardinality — so `merge` is commutative (the same store results
    /// whichever operand starts) and idempotent (`a.merge(&a)` is a
    /// no-op). The law the round-trip suite pins down.
    pub fn merge(&mut self, other: &CalibrationStore) {
        for (key, (activity, entry)) in &other.entries {
            self.record(*key, activity, *entry);
        }
        for (name, &rows) in &other.sources {
            self.record_source(name, rows);
        }
    }

    /// Serialize to JSON. Deterministic: entries in key order, sources in
    /// name order, tallies as raw integers (no floats to round-trip).
    pub fn to_json(&self) -> String {
        let sources: Vec<String> = self
            .sources
            .iter()
            .map(|(n, r)| format!("    \"{}\": {}", json_escape(n), r))
            .collect();
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|(k, (a, e))| {
                format!(
                    concat!(
                        "    {{\"key\": \"{:032x}\", \"activity\": \"{}\", ",
                        "\"rows_in\": {}, \"rows_out\": {}}}"
                    ),
                    k,
                    json_escape(a),
                    e.rows_in,
                    e.rows_out
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"version\": 1,\n",
                "  \"sources\": {{\n{}\n  }},\n",
                "  \"entries\": [\n{}\n  ]\n",
                "}}\n"
            ),
            sources.join(",\n"),
            entries.join(",\n"),
        )
    }

    /// Parse a store back from [`CalibrationStore::to_json`] output (or
    /// any JSON of the same shape). Returns a one-line description of the
    /// first syntax or schema problem.
    pub fn from_json(text: &str) -> std::result::Result<CalibrationStore, String> {
        let mut p = JsonParser::new(text);
        let mut store = CalibrationStore::new();
        p.expect('{')?;
        loop {
            let field = p.string()?;
            p.expect(':')?;
            match field.as_str() {
                "version" => {
                    let v = p.integer()?;
                    if v != 1 {
                        return Err(format!("unsupported calibration store version {v}"));
                    }
                }
                "sources" => {
                    p.expect('{')?;
                    if !p.peek_is('}') {
                        loop {
                            let name = p.string()?;
                            p.expect(':')?;
                            let rows = p.integer()?;
                            store.record_source(&name, rows);
                            if !p.comma_or('}')? {
                                break;
                            }
                        }
                    } else {
                        p.expect('}')?;
                    }
                }
                "entries" => {
                    p.expect('[')?;
                    if !p.peek_is(']') {
                        loop {
                            let (key, activity, entry) = parse_entry(&mut p)?;
                            store.record(key, &activity, entry);
                            if !p.comma_or(']')? {
                                break;
                            }
                        }
                    } else {
                        p.expect(']')?;
                    }
                }
                other => return Err(format!("unknown calibration store field `{other}`")),
            }
            if !p.comma_or('}')? {
                break;
            }
        }
        Ok(store)
    }

    /// Write the store to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::result::Result<(), StoreError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()).map_err(|e| StoreError::Io {
            path: path.to_path_buf(),
            source: e,
        })
    }

    /// Load a store from a file written by [`CalibrationStore::save`].
    ///
    /// Failures are typed so callers can distinguish "no store yet" from
    /// "a store exists but is corrupt": an unreadable path is
    /// [`StoreError::Io`], a file whose contents do not parse is
    /// [`StoreError::Malformed`]. Silently treating a corrupt file as an
    /// empty store would erase a deployment's accumulated calibration on
    /// the next save — malformed input must surface, never default.
    pub fn load(path: impl AsRef<Path>) -> std::result::Result<CalibrationStore, StoreError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| StoreError::Io {
            path: path.to_path_buf(),
            source: e,
        })?;
        CalibrationStore::from_json(&text).map_err(|detail| StoreError::Malformed {
            path: path.to_path_buf(),
            detail,
        })
    }
}

/// Why a calibration store could not be read or written.
#[derive(Debug)]
pub enum StoreError {
    /// The file could not be read or written (missing, permissions, …).
    Io {
        /// The store path involved.
        path: PathBuf,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// The file exists and was read, but its contents are not a
    /// calibration store.
    Malformed {
        /// The store path involved.
        path: PathBuf,
        /// One-line description of the first syntax or schema problem.
        detail: String,
    },
}

impl StoreError {
    /// `true` when the file existed but failed to parse — the case a
    /// caller must never paper over with an empty store.
    pub fn is_malformed(&self) -> bool {
        matches!(self, StoreError::Malformed { .. })
    }

    /// `true` when the underlying I/O failure was "file not found" — the
    /// one case a cold-start caller may treat as an empty store.
    pub fn is_not_found(&self) -> bool {
        matches!(self, StoreError::Io { source, .. }
            if source.kind() == std::io::ErrorKind::NotFound)
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "calibration store {}: {source}", path.display())
            }
            StoreError::Malformed { path, detail } => {
                write!(
                    f,
                    "calibration store {} is malformed: {detail}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Malformed { .. } => None,
        }
    }
}

/// Filesystem layout for per-tenant, per-family calibration stores:
/// `root/<escaped tenant>/<family digest>.json`. The tenant directory is
/// the namespace boundary — one tenant's observed selectivities never
/// price another tenant's plans, because nothing below a tenant directory
/// is ever read for a different tenant. Family digests
/// ([`etlopt_core::text::family_digest`]) key the files because
/// calibration entries digest *activity identity*, which only means
/// anything within one workflow family.
#[derive(Debug, Clone)]
pub struct StoreDir {
    root: PathBuf,
}

impl StoreDir {
    /// A layout rooted at `root` (created lazily on first save).
    pub fn new(root: impl Into<PathBuf>) -> StoreDir {
        StoreDir { root: root.into() }
    }

    /// The layout root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file backing `(tenant, family)`.
    pub fn path_for(&self, tenant: &str, family: u128) -> PathBuf {
        self.root
            .join(escape_tenant(tenant))
            .join(format!("{family:032x}.json"))
    }

    /// Load the store for `(tenant, family)`. `Ok(None)` when no store
    /// exists yet; a store that exists but is corrupt is an error
    /// (see [`CalibrationStore::load`]).
    pub fn load(
        &self,
        tenant: &str,
        family: u128,
    ) -> std::result::Result<Option<CalibrationStore>, StoreError> {
        match CalibrationStore::load(self.path_for(tenant, family)) {
            Ok(store) => Ok(Some(store)),
            Err(e) if e.is_not_found() => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Persist the store for `(tenant, family)`, creating directories as
    /// needed.
    pub fn save(
        &self,
        tenant: &str,
        family: u128,
        store: &CalibrationStore,
    ) -> std::result::Result<(), StoreError> {
        let path = self.path_for(tenant, family);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| StoreError::Io {
                path: dir.to_path_buf(),
                source: e,
            })?;
        }
        store.save(path)
    }
}

/// Injective filesystem-safe encoding of a tenant name: ASCII
/// alphanumerics, `-` and `.` pass through; every other byte (including
/// `_` itself, so the escape prefix cannot be forged) becomes `_xx` hex.
/// Distinct tenants therefore always map to distinct directories.
fn escape_tenant(tenant: &str) -> String {
    let mut out = String::with_capacity(tenant.len() + 8);
    out.push('t');
    for &b in tenant.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'.' => out.push(b as char),
            other => {
                out.push('_');
                out.push_str(&format!("{other:02x}"));
            }
        }
    }
    out
}

impl Calibration for CalibrationStore {
    fn entry(&self, key: u128) -> Option<CalEntry> {
        self.entries.get(&key).map(|(_, e)| *e)
    }

    fn record(&mut self, key: u128, activity: &str, entry: CalEntry) {
        self.entries
            .entry(key)
            .and_modify(|(_, e)| *e = e.prefer(entry))
            .or_insert_with(|| (activity.to_owned(), entry));
    }

    fn source_rows(&self, name: &str) -> Option<u64> {
        self.sources.get(name).copied()
    }

    fn record_source(&mut self, name: &str, rows: u64) {
        let slot = self.sources.entry(name.to_owned()).or_insert(rows);
        *slot = (*slot).max(rows);
    }
}

fn parse_entry(p: &mut JsonParser<'_>) -> std::result::Result<(u128, String, CalEntry), String> {
    p.expect('{')?;
    let (mut key, mut activity) = (None, None);
    let mut entry = CalEntry::default();
    loop {
        let field = p.string()?;
        p.expect(':')?;
        match field.as_str() {
            "key" => {
                let hex = p.string()?;
                key = Some(
                    u128::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad calibration key `{hex}`"))?,
                );
            }
            "activity" => activity = Some(p.string()?),
            "rows_in" => entry.rows_in = p.integer()?,
            "rows_out" => entry.rows_out = p.integer()?,
            other => return Err(format!("unknown entry field `{other}`")),
        }
        if !p.comma_or('}')? {
            break;
        }
    }
    match (key, activity) {
        (Some(k), Some(a)) => Ok((k, a, entry)),
        _ => Err("calibration entry missing `key` or `activity`".to_owned()),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Minimal recursive-descent scanner for exactly the JSON shape the store
/// emits (strings, unsigned integers, `{}`/`[]` punctuation). Hand-rolled
/// because the workspace has no serde — and must build offline.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&(c as u8))
    }

    fn expect(&mut self, c: char) -> std::result::Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(&b) if b == c as u8 => {
                self.pos += 1;
                Ok(())
            }
            Some(&b) => Err(format!(
                "expected `{c}` at byte {}, found `{}`",
                self.pos, b as char
            )),
            None => Err(format!("expected `{c}`, found end of input")),
        }
    }

    /// After a value: consume `,` (more items follow → `true`) or the
    /// closing delimiter (→ `false`).
    fn comma_or(&mut self, close: char) -> std::result::Result<bool, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(&b) if b == close as u8 => {
                self.pos += 1;
                Ok(false)
            }
            other => Err(format!(
                "expected `,` or `{close}` at byte {}, found {:?}",
                self.pos,
                other.map(|&b| b as char)
            )),
        }
    }

    fn string(&mut self) -> std::result::Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self.bytes.get(self.pos + 1);
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        other => {
                            return Err(format!(
                                "unsupported escape {:?} at byte {}",
                                other.map(|&b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 2;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn integer(&mut self) -> std::result::Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected an integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad integer at byte {start}"))
    }
}

/// Execute `wf` on the executor's catalog and return a copy whose
/// cardinality-changing unary activities carry their *observed*
/// selectivities.
pub fn calibrate(wf: &Workflow, exec: &Executor) -> Result<Workflow> {
    let result = exec.run(wf)?;
    let mut out = wf.clone();
    for node in wf.activities().map_err(etlopt_engine::EngineError::Core)? {
        let act = wf
            .graph()
            .activity(node)
            .map_err(etlopt_engine::EngineError::Core)?;
        let adjustable = matches!(
            act.op,
            Op::Unary(
                UnaryOp::Filter { .. }
                    | UnaryOp::NotNull { .. }
                    | UnaryOp::PkCheck { .. }
                    | UnaryOp::Dedup { .. }
                    | UnaryOp::Aggregate { .. }
            )
        );
        if !adjustable {
            continue;
        }
        if let Some(observed) = result.stats.observed_selectivity(&act.id.to_string()) {
            out = out
                .with_selectivity(node, observed.clamp(MIN_SELECTIVITY, 1.0))
                .map_err(etlopt_engine::EngineError::Core)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::cost::RowCountModel;
    use etlopt_core::opt::{HeuristicSearch, Optimizer};
    use etlopt_core::predicate::Predicate;
    use etlopt_core::scalar::Scalar;
    use etlopt_core::schema::Schema;
    use etlopt_core::semantics::UnaryOp;
    use etlopt_core::workflow::WorkflowBuilder;
    use etlopt_engine::{Catalog, Table};

    /// Two filters with *inverted* estimates: σa claims 0.1 but passes 90 %
    /// of rows; σb claims 0.9 but passes 10 %.
    fn misestimated() -> (Workflow, Executor) {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["v"]), 1000.0);
        let fa = b.unary(
            "σa",
            UnaryOp::filter(Predicate::ge("v", 10)).with_selectivity(0.1),
            s,
        );
        let fb = b.unary(
            "σb",
            UnaryOp::filter(Predicate::ge("v", 90)).with_selectivity(0.9),
            fa,
        );
        b.target("T", Schema::of(["v"]), fb);
        let wf = b.build().unwrap();

        let mut cat = Catalog::new();
        let rows: Vec<Vec<Scalar>> = (0..100i64).map(|i| vec![i.into()]).collect();
        cat.insert("S", Table::from_rows(Schema::of(["v"]), rows).unwrap());
        (wf, Executor::new(cat))
    }

    fn selectivity_of(wf: &Workflow, label: &str) -> f64 {
        let node = wf
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| wf.graph().activity(a).unwrap().label == label)
            .unwrap();
        wf.graph().activity(node).unwrap().selectivity()
    }

    #[test]
    fn calibration_replaces_estimates_with_observations() {
        let (wf, exec) = misestimated();
        let calibrated = calibrate(&wf, &exec).unwrap();
        assert!((selectivity_of(&calibrated, "σa") - 0.9).abs() < 1e-9);
        // σb sees only rows ≥ 10 (90 of them), passes 10 → 1/9.
        assert!((selectivity_of(&calibrated, "σb") - 10.0 / 90.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_flips_the_optimizers_ordering() {
        let (wf, exec) = misestimated();
        let model = RowCountModel::default();
        // With the bogus estimates HS keeps σa first…
        let before = HeuristicSearch::new().run(&wf, &model).unwrap();
        let first = before.best.activities().unwrap()[0];
        assert_eq!(before.best.graph().activity(first).unwrap().label, "σa");
        // …after calibration, the truly selective σb moves to the front.
        let calibrated = calibrate(&wf, &exec).unwrap();
        let after = HeuristicSearch::new().run(&calibrated, &model).unwrap();
        let first = after.best.activities().unwrap()[0];
        assert_eq!(after.best.graph().activity(first).unwrap().label, "σb");
    }

    #[test]
    fn zero_pass_rate_clamps_to_floor() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["v"]), 10.0);
        let f = b.unary(
            "σ-none",
            UnaryOp::filter(Predicate::gt("v", 1_000_000)).with_selectivity(0.5),
            s,
        );
        b.target("T", Schema::of(["v"]), f);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert(
            "S",
            Table::from_rows(Schema::of(["v"]), vec![vec![1.into()], vec![2.into()]]).unwrap(),
        );
        let calibrated = calibrate(&wf, &Executor::new(cat)).unwrap();
        assert!((selectivity_of(&calibrated, "σ-none") - MIN_SELECTIVITY).abs() < 1e-12);
    }

    #[test]
    fn one_to_one_activities_are_untouched() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 10.0);
        let f = b.unary("f", UnaryOp::function("scale", ["v"], "v2"), s);
        b.target("T", Schema::of(["k", "v2"]), f);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert(
            "S",
            Table::from_rows(Schema::of(["k", "v"]), vec![vec![1.into(), 2.0.into()]]).unwrap(),
        );
        let calibrated = calibrate(&wf, &Executor::new(cat)).unwrap();
        assert!((selectivity_of(&calibrated, "f") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn calibrated_workflow_stays_equivalent() {
        let (wf, exec) = misestimated();
        let calibrated = calibrate(&wf, &exec).unwrap();
        // Selectivities are metadata, not semantics.
        assert!(etlopt_core::postcond::equivalent(&wf, &calibrated).unwrap());
        assert!(etlopt_engine::equivalent_execution(&exec, &wf, &calibrated).unwrap());
    }
}
