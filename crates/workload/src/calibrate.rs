//! Selectivity calibration: run a workflow over real data, observe each
//! activity's actual pass rate, and feed it back into the workflow's
//! estimates before (re-)optimizing.
//!
//! The paper's optimizer is only as good as its "assigned selectivities"
//! (§4.2); this is the statistics-refresh loop a production deployment
//! would run between loads.

use std::collections::BTreeMap;
use std::path::Path;

use etlopt_core::activity::Op;
use etlopt_core::opt::adaptive::{CalEntry, Calibration};
use etlopt_core::semantics::UnaryOp;
use etlopt_core::workflow::Workflow;
use etlopt_engine::{Executor, Result};

/// Floor for calibrated selectivities: an activity that passed zero rows on
/// this sample still gets a tiny positive estimate (zero would make every
/// downstream plan collapse to cost 0). Shared with the adaptive loop's
/// clamp so one-shot and feedback-loop calibration agree.
pub const MIN_SELECTIVITY: f64 = etlopt_core::opt::adaptive::SELECTIVITY_FLOOR;

/// The persistent calibration layer of the adaptive re-optimization loop:
/// observed per-activity row traffic keyed by u128 activity-identity
/// fingerprints (`etlopt_core::opt::adaptive::activity_key`), plus
/// observed source cardinalities. Implements [`Calibration`] for the loop
/// and adds what a between-loads deployment needs on top: lossless JSON
/// round-tripping (hand-rolled — the workspace is offline/zero-dep) and a
/// commutative, idempotent [`CalibrationStore::merge`] so stores built by
/// independent runs can be combined in any order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CalibrationStore {
    /// key → (activity id string, observed tallies), key-ordered.
    entries: BTreeMap<u128, (String, CalEntry)>,
    /// source recordset name → observed cardinality.
    sources: BTreeMap<String, u64>,
}

impl CalibrationStore {
    /// An empty store.
    pub fn new() -> CalibrationStore {
        CalibrationStore::default()
    }

    /// Number of calibrated activities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.sources.is_empty()
    }

    /// Entries in key order: `(key, activity id string, entry)`.
    pub fn entries(&self) -> impl Iterator<Item = (u128, &str, CalEntry)> {
        self.entries.iter().map(|(k, (a, e))| (*k, a.as_str(), *e))
    }

    /// Observed source cardinalities, name-ordered.
    pub fn sources(&self) -> impl Iterator<Item = (&str, u64)> {
        self.sources.iter().map(|(n, r)| (n.as_str(), *r))
    }

    /// Merge another store into this one. Per activity the max-evidence
    /// entry wins ([`CalEntry::prefer`]), per source the larger observed
    /// cardinality — so `merge` is commutative (the same store results
    /// whichever operand starts) and idempotent (`a.merge(&a)` is a
    /// no-op). The law the round-trip suite pins down.
    pub fn merge(&mut self, other: &CalibrationStore) {
        for (key, (activity, entry)) in &other.entries {
            self.record(*key, activity, *entry);
        }
        for (name, &rows) in &other.sources {
            self.record_source(name, rows);
        }
    }

    /// Serialize to JSON. Deterministic: entries in key order, sources in
    /// name order, tallies as raw integers (no floats to round-trip).
    pub fn to_json(&self) -> String {
        let sources: Vec<String> = self
            .sources
            .iter()
            .map(|(n, r)| format!("    \"{}\": {}", json_escape(n), r))
            .collect();
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|(k, (a, e))| {
                format!(
                    concat!(
                        "    {{\"key\": \"{:032x}\", \"activity\": \"{}\", ",
                        "\"rows_in\": {}, \"rows_out\": {}}}"
                    ),
                    k,
                    json_escape(a),
                    e.rows_in,
                    e.rows_out
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"version\": 1,\n",
                "  \"sources\": {{\n{}\n  }},\n",
                "  \"entries\": [\n{}\n  ]\n",
                "}}\n"
            ),
            sources.join(",\n"),
            entries.join(",\n"),
        )
    }

    /// Parse a store back from [`CalibrationStore::to_json`] output (or
    /// any JSON of the same shape). Returns a one-line description of the
    /// first syntax or schema problem.
    pub fn from_json(text: &str) -> std::result::Result<CalibrationStore, String> {
        let mut p = JsonParser::new(text);
        let mut store = CalibrationStore::new();
        p.expect('{')?;
        loop {
            let field = p.string()?;
            p.expect(':')?;
            match field.as_str() {
                "version" => {
                    let v = p.integer()?;
                    if v != 1 {
                        return Err(format!("unsupported calibration store version {v}"));
                    }
                }
                "sources" => {
                    p.expect('{')?;
                    if !p.peek_is('}') {
                        loop {
                            let name = p.string()?;
                            p.expect(':')?;
                            let rows = p.integer()?;
                            store.record_source(&name, rows);
                            if !p.comma_or('}')? {
                                break;
                            }
                        }
                    } else {
                        p.expect('}')?;
                    }
                }
                "entries" => {
                    p.expect('[')?;
                    if !p.peek_is(']') {
                        loop {
                            let (key, activity, entry) = parse_entry(&mut p)?;
                            store.record(key, &activity, entry);
                            if !p.comma_or(']')? {
                                break;
                            }
                        }
                    } else {
                        p.expect(']')?;
                    }
                }
                other => return Err(format!("unknown calibration store field `{other}`")),
            }
            if !p.comma_or('}')? {
                break;
            }
        }
        Ok(store)
    }

    /// Write the store to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::result::Result<(), String> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()).map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Load a store from a file written by [`CalibrationStore::save`].
    pub fn load(path: impl AsRef<Path>) -> std::result::Result<CalibrationStore, String> {
        let path = path.as_ref();
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        CalibrationStore::from_json(&text)
    }
}

impl Calibration for CalibrationStore {
    fn entry(&self, key: u128) -> Option<CalEntry> {
        self.entries.get(&key).map(|(_, e)| *e)
    }

    fn record(&mut self, key: u128, activity: &str, entry: CalEntry) {
        self.entries
            .entry(key)
            .and_modify(|(_, e)| *e = e.prefer(entry))
            .or_insert_with(|| (activity.to_owned(), entry));
    }

    fn source_rows(&self, name: &str) -> Option<u64> {
        self.sources.get(name).copied()
    }

    fn record_source(&mut self, name: &str, rows: u64) {
        let slot = self.sources.entry(name.to_owned()).or_insert(rows);
        *slot = (*slot).max(rows);
    }
}

fn parse_entry(p: &mut JsonParser<'_>) -> std::result::Result<(u128, String, CalEntry), String> {
    p.expect('{')?;
    let (mut key, mut activity) = (None, None);
    let mut entry = CalEntry::default();
    loop {
        let field = p.string()?;
        p.expect(':')?;
        match field.as_str() {
            "key" => {
                let hex = p.string()?;
                key = Some(
                    u128::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad calibration key `{hex}`"))?,
                );
            }
            "activity" => activity = Some(p.string()?),
            "rows_in" => entry.rows_in = p.integer()?,
            "rows_out" => entry.rows_out = p.integer()?,
            other => return Err(format!("unknown entry field `{other}`")),
        }
        if !p.comma_or('}')? {
            break;
        }
    }
    match (key, activity) {
        (Some(k), Some(a)) => Ok((k, a, entry)),
        _ => Err("calibration entry missing `key` or `activity`".to_owned()),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Minimal recursive-descent scanner for exactly the JSON shape the store
/// emits (strings, unsigned integers, `{}`/`[]` punctuation). Hand-rolled
/// because the workspace has no serde — and must build offline.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&(c as u8))
    }

    fn expect(&mut self, c: char) -> std::result::Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(&b) if b == c as u8 => {
                self.pos += 1;
                Ok(())
            }
            Some(&b) => Err(format!(
                "expected `{c}` at byte {}, found `{}`",
                self.pos, b as char
            )),
            None => Err(format!("expected `{c}`, found end of input")),
        }
    }

    /// After a value: consume `,` (more items follow → `true`) or the
    /// closing delimiter (→ `false`).
    fn comma_or(&mut self, close: char) -> std::result::Result<bool, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(&b) if b == close as u8 => {
                self.pos += 1;
                Ok(false)
            }
            other => Err(format!(
                "expected `,` or `{close}` at byte {}, found {:?}",
                self.pos,
                other.map(|&b| b as char)
            )),
        }
    }

    fn string(&mut self) -> std::result::Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self.bytes.get(self.pos + 1);
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        other => {
                            return Err(format!(
                                "unsupported escape {:?} at byte {}",
                                other.map(|&b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 2;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn integer(&mut self) -> std::result::Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected an integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad integer at byte {start}"))
    }
}

/// Execute `wf` on the executor's catalog and return a copy whose
/// cardinality-changing unary activities carry their *observed*
/// selectivities.
pub fn calibrate(wf: &Workflow, exec: &Executor) -> Result<Workflow> {
    let result = exec.run(wf)?;
    let mut out = wf.clone();
    for node in wf.activities().map_err(etlopt_engine::EngineError::Core)? {
        let act = wf
            .graph()
            .activity(node)
            .map_err(etlopt_engine::EngineError::Core)?;
        let adjustable = matches!(
            act.op,
            Op::Unary(
                UnaryOp::Filter { .. }
                    | UnaryOp::NotNull { .. }
                    | UnaryOp::PkCheck { .. }
                    | UnaryOp::Dedup { .. }
                    | UnaryOp::Aggregate { .. }
            )
        );
        if !adjustable {
            continue;
        }
        if let Some(observed) = result.stats.observed_selectivity(&act.id.to_string()) {
            out = out
                .with_selectivity(node, observed.clamp(MIN_SELECTIVITY, 1.0))
                .map_err(etlopt_engine::EngineError::Core)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::cost::RowCountModel;
    use etlopt_core::opt::{HeuristicSearch, Optimizer};
    use etlopt_core::predicate::Predicate;
    use etlopt_core::scalar::Scalar;
    use etlopt_core::schema::Schema;
    use etlopt_core::semantics::UnaryOp;
    use etlopt_core::workflow::WorkflowBuilder;
    use etlopt_engine::{Catalog, Table};

    /// Two filters with *inverted* estimates: σa claims 0.1 but passes 90 %
    /// of rows; σb claims 0.9 but passes 10 %.
    fn misestimated() -> (Workflow, Executor) {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["v"]), 1000.0);
        let fa = b.unary(
            "σa",
            UnaryOp::filter(Predicate::ge("v", 10)).with_selectivity(0.1),
            s,
        );
        let fb = b.unary(
            "σb",
            UnaryOp::filter(Predicate::ge("v", 90)).with_selectivity(0.9),
            fa,
        );
        b.target("T", Schema::of(["v"]), fb);
        let wf = b.build().unwrap();

        let mut cat = Catalog::new();
        let rows: Vec<Vec<Scalar>> = (0..100i64).map(|i| vec![i.into()]).collect();
        cat.insert("S", Table::from_rows(Schema::of(["v"]), rows).unwrap());
        (wf, Executor::new(cat))
    }

    fn selectivity_of(wf: &Workflow, label: &str) -> f64 {
        let node = wf
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| wf.graph().activity(a).unwrap().label == label)
            .unwrap();
        wf.graph().activity(node).unwrap().selectivity()
    }

    #[test]
    fn calibration_replaces_estimates_with_observations() {
        let (wf, exec) = misestimated();
        let calibrated = calibrate(&wf, &exec).unwrap();
        assert!((selectivity_of(&calibrated, "σa") - 0.9).abs() < 1e-9);
        // σb sees only rows ≥ 10 (90 of them), passes 10 → 1/9.
        assert!((selectivity_of(&calibrated, "σb") - 10.0 / 90.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_flips_the_optimizers_ordering() {
        let (wf, exec) = misestimated();
        let model = RowCountModel::default();
        // With the bogus estimates HS keeps σa first…
        let before = HeuristicSearch::new().run(&wf, &model).unwrap();
        let first = before.best.activities().unwrap()[0];
        assert_eq!(before.best.graph().activity(first).unwrap().label, "σa");
        // …after calibration, the truly selective σb moves to the front.
        let calibrated = calibrate(&wf, &exec).unwrap();
        let after = HeuristicSearch::new().run(&calibrated, &model).unwrap();
        let first = after.best.activities().unwrap()[0];
        assert_eq!(after.best.graph().activity(first).unwrap().label, "σb");
    }

    #[test]
    fn zero_pass_rate_clamps_to_floor() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["v"]), 10.0);
        let f = b.unary(
            "σ-none",
            UnaryOp::filter(Predicate::gt("v", 1_000_000)).with_selectivity(0.5),
            s,
        );
        b.target("T", Schema::of(["v"]), f);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert(
            "S",
            Table::from_rows(Schema::of(["v"]), vec![vec![1.into()], vec![2.into()]]).unwrap(),
        );
        let calibrated = calibrate(&wf, &Executor::new(cat)).unwrap();
        assert!((selectivity_of(&calibrated, "σ-none") - MIN_SELECTIVITY).abs() < 1e-12);
    }

    #[test]
    fn one_to_one_activities_are_untouched() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 10.0);
        let f = b.unary("f", UnaryOp::function("scale", ["v"], "v2"), s);
        b.target("T", Schema::of(["k", "v2"]), f);
        let wf = b.build().unwrap();
        let mut cat = Catalog::new();
        cat.insert(
            "S",
            Table::from_rows(Schema::of(["k", "v"]), vec![vec![1.into(), 2.0.into()]]).unwrap(),
        );
        let calibrated = calibrate(&wf, &Executor::new(cat)).unwrap();
        assert!((selectivity_of(&calibrated, "f") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn calibrated_workflow_stays_equivalent() {
        let (wf, exec) = misestimated();
        let calibrated = calibrate(&wf, &exec).unwrap();
        // Selectivities are metadata, not semantics.
        assert!(etlopt_core::postcond::equivalent(&wf, &calibrated).unwrap());
        assert!(etlopt_engine::equivalent_execution(&exec, &wf, &calibrated).unwrap());
    }
}
