//! Random source data for any workflow, so every scenario — hand-built or
//! generated — can be executed by the engine.

use etlopt_core::graph::Node;
use etlopt_core::rng::Rng;
use etlopt_core::scalar::Scalar;
use etlopt_core::workflow::Workflow;
use etlopt_engine::{Catalog, Table};

/// Build a catalog with `rows_per_source` random rows for every source
/// recordset of `wf`. Value distributions are keyed by attribute-name
/// convention:
///
/// * `pkey`, `*_id`, `session`, `acct` → small-range integers (duplicates
///   are likely, which exercises aggregation and PK checks),
/// * `date` → day-count dates,
/// * `is_*` → 0/1 flags,
/// * everything else → floats in `(0, 1000)` with a 3 % NULL rate (so
///   not-null checks actually drop rows).
pub fn catalog_for(wf: &Workflow, rows_per_source: usize, seed: u64) -> Catalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut catalog = Catalog::new();
    for src in wf.sources() {
        let Ok(Node::Recordset(rs)) = wf.graph().node(src) else {
            continue;
        };
        let mut table = Table::empty(rs.schema.clone());
        for _ in 0..rows_per_source {
            let row = rs
                .schema
                .iter()
                .map(|attr| random_value(attr.name(), &mut rng))
                .collect();
            table.push(row).expect("generated row matches schema");
        }
        catalog.insert(rs.name.clone(), table);
    }
    catalog
}

/// Row-count multiplier read from the `ETLOPT_ROW_SCALE` environment
/// variable (default `1`). CI and local perf runs can scale every
/// scenario's data volume without touching call sites: `ETLOPT_ROW_SCALE=10`
/// turns a 200-row smoke catalog into a 2000-row one. Values that are
/// unset, non-numeric, or zero fall back to `1`.
pub fn row_scale() -> usize {
    scale_from(std::env::var("ETLOPT_ROW_SCALE").ok().as_deref())
}

/// Parse a scale setting; anything unusable means "no scaling".
fn scale_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// [`catalog_for`] with `rows_per_source` multiplied by [`row_scale`].
pub fn catalog_for_scaled(wf: &Workflow, rows_per_source: usize, seed: u64) -> Catalog {
    catalog_for(wf, rows_per_source.saturating_mul(row_scale()), seed)
}

fn random_value(attr: &str, rng: &mut Rng) -> Scalar {
    if attr == "pkey" || attr.ends_with("_id") || attr == "session" || attr == "acct" {
        Scalar::Int(rng.gen_range(1..200))
    } else if attr == "date" {
        Scalar::Date(rng.gen_range(0..365))
    } else if attr.starts_with("is_") {
        Scalar::Int(i64::from(rng.gen_bool(0.5)))
    } else if rng.gen_bool(0.03) {
        Scalar::Null
    } else {
        Scalar::Float((rng.gen_range(0.0..1000.0_f64) * 100.0).round() / 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig, SizeCategory};
    use etlopt_engine::Executor;

    #[test]
    fn generated_scenarios_execute_on_generated_data() {
        for seed in 0..3 {
            let s = Generator::generate(GeneratorConfig {
                seed,
                category: SizeCategory::Small,
            });
            let catalog = catalog_for(&s.workflow, 200, seed);
            let result = Executor::new(catalog).run(&s.workflow).unwrap();
            assert_eq!(result.targets.len(), 1, "one DW target");
        }
    }

    #[test]
    fn datagen_is_deterministic() {
        let s = Generator::generate(GeneratorConfig {
            seed: 4,
            category: SizeCategory::Small,
        });
        let a = catalog_for(&s.workflow, 50, 9);
        let b = catalog_for(&s.workflow, 50, 9);
        for src in s.workflow.sources() {
            let name = &s.workflow.graph().recordset(src).unwrap().name;
            assert_eq!(a.table(name), b.table(name));
        }
    }

    #[test]
    fn scale_parsing_falls_back_to_one() {
        assert_eq!(scale_from(None), 1);
        assert_eq!(scale_from(Some("")), 1);
        assert_eq!(scale_from(Some("banana")), 1);
        assert_eq!(scale_from(Some("0")), 1);
        assert_eq!(scale_from(Some("1")), 1);
        assert_eq!(scale_from(Some(" 25 ")), 25);
    }

    #[test]
    fn flags_and_keys_follow_conventions() {
        use etlopt_core::schema::Schema;
        use etlopt_core::workflow::WorkflowBuilder;
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["pkey", "date", "is_bot", "v"]), 10.0);
        b.target("T", Schema::of(["pkey", "date", "is_bot", "v"]), s);
        let wf = b.build().unwrap();
        let catalog = catalog_for(&wf, 100, 1);
        let t = catalog.table("S").unwrap();
        for row in t.rows() {
            assert!(matches!(row[0], Scalar::Int(_)));
            assert!(matches!(row[1], Scalar::Date(_)));
            assert!(matches!(row[2], Scalar::Int(0 | 1)));
            assert!(matches!(row[3], Scalar::Float(_) | Scalar::Null));
        }
    }
}
