//! The random workflow generator behind the paper's evaluation.
//!
//! "As test cases, we have used 40 different ETL workflows categorized as
//! small, medium, and large, involving a range of 15 to 70 activities"
//! (§4.2). The original 40 scenarios were never published; this generator
//! reproduces their *statistics*: seeded, deterministic workflows in the
//! same three size bands, built from the paper's template vocabulary
//! (filters, not-null checks, function applications, aggregations,
//! surrogate keys, unions), with deliberate optimization opportunities —
//! homologous activities on sibling branches (Factorize bait), selective
//! filters far from the sources (Swap/Distribute bait).

use std::fmt;

use etlopt_core::graph::NodeId;
use etlopt_core::predicate::Predicate;
use etlopt_core::rng::Rng;
use etlopt_core::schema::Schema;
use etlopt_core::semantics::{Aggregation, BinaryOp, UnaryOp};
use etlopt_core::workflow::{Workflow, WorkflowBuilder};

/// The paper's three workflow size bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeCategory {
    /// ≈ 15–25 activities (paper average: 20).
    Small,
    /// ≈ 35–45 activities (paper average: 40).
    Medium,
    /// ≈ 60–70 activities (paper average: 70).
    Large,
}

impl SizeCategory {
    /// Inclusive activity-count band.
    pub fn activity_range(self) -> (usize, usize) {
        match self {
            SizeCategory::Small => (15, 25),
            SizeCategory::Medium => (35, 45),
            SizeCategory::Large => (60, 70),
        }
    }

    /// Number of converging source branches.
    pub fn branches(self) -> usize {
        match self {
            SizeCategory::Small => 2,
            SizeCategory::Medium => 3,
            SizeCategory::Large => 4,
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            SizeCategory::Small => "small",
            SizeCategory::Medium => "medium",
            SizeCategory::Large => "large",
        }
    }

    /// All bands, in table order.
    pub fn all() -> [SizeCategory; 3] {
        [
            SizeCategory::Small,
            SizeCategory::Medium,
            SizeCategory::Large,
        ]
    }
}

impl fmt::Display for SizeCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// RNG seed — equal seeds give equal workflows.
    pub seed: u64,
    /// Size band.
    pub category: SizeCategory,
}

/// One generated test case.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name, e.g. `"medium-03"`.
    pub name: String,
    /// Size band.
    pub category: SizeCategory,
    /// Seed it was generated from.
    pub seed: u64,
    /// The workflow.
    pub workflow: Workflow,
}

/// The branch-level attribute vocabulary all generated sources share.
fn branch_schema() -> Schema {
    Schema::of(["pkey", "date", "cost", "qty", "grade"])
}

/// Seeded workflow generator.
#[derive(Debug)]
pub struct Generator {
    rng: Rng,
}

impl Generator {
    /// Generator from a seed.
    pub fn new(seed: u64) -> Self {
        Generator {
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Generate one scenario.
    pub fn generate(config: GeneratorConfig) -> Scenario {
        let mut gen = Generator::new(config.seed);
        let workflow = gen.build(config.category);
        Scenario {
            name: format!("{}-{:04x}", config.category.label(), config.seed & 0xffff),
            category: config.category,
            seed: config.seed,
            workflow,
        }
    }

    /// The paper's 40-scenario suite: 15 small, 15 medium, 10 large,
    /// derived deterministically from a base seed.
    pub fn paper_suite(base_seed: u64) -> Vec<Scenario> {
        Self::suite(base_seed, 15, 15, 10)
    }

    /// A suite with custom per-band counts (benches use a trimmed one).
    pub fn suite(base_seed: u64, small: usize, medium: usize, large: usize) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(small + medium + large);
        for (count, category) in [
            (small, SizeCategory::Small),
            (medium, SizeCategory::Medium),
            (large, SizeCategory::Large),
        ] {
            for i in 0..count {
                out.push(Self::generate(GeneratorConfig {
                    seed: base_seed
                        .wrapping_mul(1_000_003)
                        .wrapping_add((i as u64) << 8)
                        .wrapping_add(category.branches() as u64),
                    category,
                }));
            }
        }
        out
    }

    /// A random schema-preserving row-wise operation over the branch
    /// vocabulary. `grade_ok` is false once the branch trap has renamed
    /// `grade` away — segments downstream of it must not reference it.
    fn row_wise_op(&mut self, grade_ok: bool) -> UnaryOp {
        let upper = if grade_ok { 7 } else { 6 };
        match self.rng.gen_range(0..upper) {
            0 => UnaryOp::not_null("cost").with_selectivity(self.rng.gen_range(0.9..0.99)),
            1 => UnaryOp::not_null("qty").with_selectivity(self.rng.gen_range(0.9..0.99)),
            2 => UnaryOp::filter(Predicate::gt("cost", self.rng.gen_range(1.0..100.0)))
                .with_selectivity(self.rng.gen_range(0.2..0.9)),
            3 => UnaryOp::filter(Predicate::gt("qty", self.rng.gen_range(1.0..10.0)))
                .with_selectivity(self.rng.gen_range(0.2..0.9)),
            // In-place functions must be entity-preserving format
            // conversions (the naming principle, §3.1): the engine runs
            // both as value-identities, so every legal swap across them is
            // exactly equivalence-preserving.
            4 => UnaryOp::function("normalize", ["cost"], "cost"),
            5 => UnaryOp::function("am2eu", ["date"], "date"),
            6 => UnaryOp::filter(Predicate::le("grade", self.rng.gen_range(1.0..5.0)))
                .with_selectivity(self.rng.gen_range(0.3..0.95)),
            _ => unreachable!(),
        }
    }

    /// A greedy trap (the paper's Fig. 5 structure): a renaming injective
    /// function guarding a selective filter, preceded by a cost-neutral
    /// format conversion. The filter cannot cross the function (swap
    /// condition 3), and moving the function toward the sources is
    /// cost-neutral — so a strictly-improving hill climb stalls on the
    /// plateau while a full swap exploration walks through it.
    /// `depth` controls the plateau width (number of cost-neutral ops in
    /// front of the guard); wider plateaus hurt a strictly-improving climb
    /// more — the paper's greedy gets "unstable" on large workflows.
    fn trap(&mut self, attr: &'static str, renamed: &'static str, depth: usize) -> Vec<UnaryOp> {
        let mut ops = Vec::with_capacity(depth + 2);
        for i in 0..depth {
            ops.push(if i % 2 == 0 {
                UnaryOp::function("normalize", ["cost"], "cost")
            } else {
                UnaryOp::function("am2eu", ["date"], "date")
            });
        }
        ops.push(UnaryOp::function("scale", [attr], renamed));
        ops.push(
            UnaryOp::filter(Predicate::gt(renamed, self.rng.gen_range(100.0..900.0)))
                .with_selectivity(self.rng.gen_range(0.15..0.5)),
        );
        ops
    }

    fn build(&mut self, category: SizeCategory) -> Workflow {
        let (lo, hi) = category.activity_range();
        let target_activities = self.rng.gen_range(lo..=hi);
        let k = category.branches();
        let unions = k - 1;
        // Greedy traps (see `trap`): one per branch (renaming `grade`),
        // applied to *every* branch so the union's schemata stay equal, and
        // one on the joint flow (renaming `qty`).
        let branch_trap = self.rng.gen_bool(0.8);
        let joint_trap = self.rng.gen_bool(0.8);
        // Plateau width scales with workflow size.
        let trap_depth = match category {
            SizeCategory::Small => 1,
            SizeCategory::Medium => 2,
            SizeCategory::Large => 3,
        };
        let trap_len = trap_depth + 2;
        // Joint tail: a couple of row-wise ops, the joint trap, an
        // aggregation, a surrogate key and a final business-rule selection.
        let joint_rowwise = self.rng.gen_range(1..=3usize);
        let joint_len = joint_rowwise + 3 + if joint_trap { trap_len } else { 0 };
        let mid_total = unions.saturating_sub(1); // one op between chained unions
        let trap_per_branch = if branch_trap { trap_len } else { 0 };
        let branch_budget = target_activities
            .saturating_sub(unions + joint_len + mid_total + k * trap_per_branch)
            .max(k);
        let base = branch_budget / k;
        let mut lens = vec![base; k];
        for len in lens.iter_mut().take(branch_budget % k) {
            *len += 1;
        }

        let mut b = WorkflowBuilder::new();
        let schema = branch_schema();

        // Branch chains; the trap sits at the far end of each chain so its
        // filter has the longest profitable journey toward the source.
        let mut heads: Vec<NodeId> = Vec::with_capacity(k);
        for (bi, &len) in lens.iter().enumerate() {
            let rows = self.rng.gen_range(1_000.0..20_000.0_f64).round();
            let src = b.source(&format!("SRC{}", bi + 1), schema.clone(), rows);
            let mut cur = src;
            for oi in 0..len {
                let op = self.row_wise_op(true);
                cur = b.unary(&format!("b{}-{}", bi + 1, oi + 1), op, cur);
            }
            if branch_trap {
                let ops = self.trap("grade", "grade_idx", trap_depth);
                for (ti, op) in ops.into_iter().enumerate() {
                    cur = b.unary(&format!("b{}-t{}", bi + 1, ti + 1), op, cur);
                }
            }
            heads.push(cur);
        }

        // Homologous bait: with high probability, append the *same*
        // operation to the first two sibling branches.
        if self.rng.gen_bool(0.8) && k >= 2 {
            let op = self.row_wise_op(!branch_trap);
            heads[0] = b.unary("hom-1", op.clone(), heads[0]);
            heads[1] = b.unary("hom-2", op, heads[1]);
        }

        // Left-deep union tree with optional mid ops.
        let mut flow = heads[0];
        for (ui, &head) in heads.iter().enumerate().skip(1) {
            flow = b.binary(&format!("U{ui}"), BinaryOp::Union, flow, head);
            if ui < k - 1 {
                let op = self.row_wise_op(!branch_trap);
                flow = b.unary(&format!("mid-{ui}"), op, flow);
            }
        }

        // Joint tail: pool ops, then the joint trap (if any), then the
        // aggregation / surrogate key / load filter.
        for oi in 0..joint_rowwise {
            let op = self.row_wise_op(!branch_trap);
            flow = b.unary(&format!("joint-{}", oi + 1), op, flow);
        }
        if joint_trap {
            let ops = self.trap("qty", "qty_idx", trap_depth);
            for (ti, op) in ops.into_iter().enumerate() {
                flow = b.unary(&format!("joint-t{}", ti + 1), op, flow);
            }
        }
        let agg_sel = self.rng.gen_range(0.05..0.3);
        flow = b.unary(
            "γ",
            UnaryOp::aggregate(Aggregation::sum(["pkey", "date"], "cost", "cost"))
                .with_selectivity(agg_sel),
            flow,
        );
        flow = b.unary(
            "SK",
            UnaryOp::surrogate_key("pkey", "pkey_sk", "DIM_PARTS"),
            flow,
        );
        flow = b.unary(
            "σ-load",
            UnaryOp::filter(Predicate::gt("cost", self.rng.gen_range(50.0..500.0)))
                .with_selectivity(self.rng.gen_range(0.1..0.7)),
            flow,
        );
        b.target("DW", Schema::empty(), flow);
        b.build().expect("generated workflow must be valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_workflows_are_valid_and_sized() {
        for category in SizeCategory::all() {
            for seed in 0..5 {
                let s = Generator::generate(GeneratorConfig { seed, category });
                s.workflow.validate().unwrap();
                let n = s.workflow.activity_count();
                let (lo, hi) = category.activity_range();
                assert!(
                    n >= lo.saturating_sub(2) && n <= hi,
                    "{category} seed {seed}: {n} activities not in [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let c = GeneratorConfig {
            seed: 99,
            category: SizeCategory::Medium,
        };
        let a = Generator::generate(c);
        let b = Generator::generate(c);
        assert_eq!(a.workflow.signature(), b.workflow.signature());
        assert_eq!(a.workflow, b.workflow);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Generator::generate(GeneratorConfig {
            seed: 1,
            category: SizeCategory::Small,
        });
        let b = Generator::generate(GeneratorConfig {
            seed: 2,
            category: SizeCategory::Small,
        });
        assert_ne!(a.workflow, b.workflow);
    }

    #[test]
    fn paper_suite_has_40_scenarios() {
        let suite = Generator::paper_suite(2005);
        assert_eq!(suite.len(), 40);
        let smalls = suite
            .iter()
            .filter(|s| s.category == SizeCategory::Small)
            .count();
        let mediums = suite
            .iter()
            .filter(|s| s.category == SizeCategory::Medium)
            .count();
        let larges = suite
            .iter()
            .filter(|s| s.category == SizeCategory::Large)
            .count();
        assert_eq!((smalls, mediums, larges), (15, 15, 10));
    }

    #[test]
    fn scenarios_offer_optimization_opportunities() {
        // Most scenarios should expose at least one homologous pair or
        // distributable activity (the generator plants them).
        let suite = Generator::suite(7, 5, 5, 5);
        let with_opportunities = suite
            .iter()
            .filter(|s| {
                let h = s.workflow.homologous_pairs().map(|v| v.len()).unwrap_or(0);
                let d = s
                    .workflow
                    .distributable_activities()
                    .map(|v| v.len())
                    .unwrap_or(0);
                h + d > 0
            })
            .count();
        assert!(with_opportunities >= 12, "{with_opportunities}/15");
    }

    #[test]
    fn large_has_more_branches_than_small() {
        assert!(SizeCategory::Large.branches() > SizeCategory::Small.branches());
        let s = Generator::generate(GeneratorConfig {
            seed: 3,
            category: SizeCategory::Large,
        });
        assert_eq!(s.workflow.sources().len(), 4);
    }
}
