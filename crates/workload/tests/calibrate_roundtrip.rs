//! Persistence laws for [`CalibrationStore`]: JSON round-trips losslessly,
//! merge is commutative and idempotent, and lookups that miss fall back to
//! the workflow's uncalibrated prior (with the `MIN_SELECTIVITY` clamp
//! guarding the zero-rows-observed edge).

use etlopt_core::opt::adaptive::{
    activity_key, activity_key_str, seed_workflow, CalEntry, Calibration,
};
use etlopt_core::prelude::*;
use etlopt_workload::calibrate::MIN_SELECTIVITY;
use etlopt_workload::CalibrationStore;

fn sample_store() -> CalibrationStore {
    let mut s = CalibrationStore::new();
    s.record(activity_key_str("3"), "3", CalEntry::new(300, 285));
    s.record(activity_key_str("2+5"), "2+5", CalEntry::new(9000, 300));
    s.record(activity_key_str("4'1"), "4'1", CalEntry::new(120, 48));
    s.record(activity_key_str("8"), "8", CalEntry::new(9300, 3720));
    s.record_source("PARTS1", 300);
    s.record_source("PARTS2", 9000);
    s
}

/// A two-filter chain whose first filter carries a deliberate prior, used
/// to observe what seeding does (and does not) touch.
fn two_filter_workflow() -> Workflow {
    let mut b = WorkflowBuilder::new();
    let src = b.source("S", Schema::of(["id", "v"]), 100.0);
    let f1 = b.unary(
        "sigma_a",
        UnaryOp::filter(Predicate::gt("v", 10)).with_selectivity(0.35),
        src,
    );
    let f2 = b.unary(
        "sigma_b",
        UnaryOp::filter(Predicate::gt("id", 0)).with_selectivity(0.8),
        f1,
    );
    b.target("T", Schema::of(["id", "v"]), f2);
    b.build().unwrap()
}

#[test]
fn json_roundtrip_is_lossless() {
    let store = sample_store();
    let text = store.to_json();
    let back = CalibrationStore::from_json(&text).expect("parse own output");
    assert_eq!(back, store);
    // And stable: re-serializing the parse reproduces the bytes.
    assert_eq!(back.to_json(), text);
}

#[test]
fn empty_store_roundtrips() {
    let store = CalibrationStore::new();
    let back = CalibrationStore::from_json(&store.to_json()).expect("parse empty");
    assert_eq!(back, store);
    assert!(back.is_empty());
}

#[test]
fn activity_names_are_escaped() {
    let mut store = CalibrationStore::new();
    store.record(activity_key_str("a\"b\\c"), "a\"b\\c", CalEntry::new(10, 5));
    store.record_source("s\"rc", 7);
    let back = CalibrationStore::from_json(&store.to_json()).expect("parse escaped");
    assert_eq!(back, store);
}

#[test]
fn from_json_rejects_garbage() {
    assert!(CalibrationStore::from_json("not json").is_err());
    assert!(
        CalibrationStore::from_json("{\"version\": 2, \"sources\": {}, \"entries\": []}").is_err()
    );
    assert!(
        CalibrationStore::from_json("{\"version\": 1, \"entries\": [{\"rows_in\": 3}]}").is_err()
    );
}

#[test]
fn merge_is_commutative() {
    let a = sample_store();
    let mut b = CalibrationStore::new();
    // Overlapping key with *more* evidence, plus a fresh one.
    b.record(activity_key_str("3"), "3", CalEntry::new(600, 540));
    b.record(activity_key_str("9"), "9", CalEntry::new(50, 25));
    b.record_source("PARTS1", 450);
    b.record_source("LOOKUP", 32);

    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba);

    // Max-evidence wins on the overlap.
    assert_eq!(
        ab.entry(activity_key_str("3")),
        Some(CalEntry::new(600, 540))
    );
    assert_eq!(ab.source_rows("PARTS1"), Some(450));
}

#[test]
fn merge_is_idempotent() {
    let a = sample_store();
    let mut twice = a.clone();
    twice.merge(&a);
    assert_eq!(twice, a);

    let mut b = CalibrationStore::new();
    b.record(activity_key_str("9"), "9", CalEntry::new(50, 25));
    let mut ab = a.clone();
    ab.merge(&b);
    let mut abb = ab.clone();
    abb.merge(&b);
    assert_eq!(abb, ab, "merging the same store again must be a no-op");
}

#[test]
fn unknown_fingerprint_falls_back_to_uncalibrated_prior() {
    let wf = two_filter_workflow();
    let g = wf.graph();

    // Calibrate only the *second* filter; the first must keep its prior.
    let (mut calibrated_node, mut prior_node) = (None, None);
    for node in wf.activities().unwrap() {
        let act = g.activity(node).unwrap();
        match act.label.as_str() {
            "sigma_a" => prior_node = Some((node, act.id.clone())),
            "sigma_b" => calibrated_node = Some((node, act.id.clone())),
            _ => {}
        }
    }
    let (prior_node, prior_id) = prior_node.unwrap();
    let (calibrated_node, calibrated_id) = calibrated_node.unwrap();

    let mut store = CalibrationStore::new();
    store.record(
        activity_key(&calibrated_id),
        &calibrated_id.to_string(),
        CalEntry::new(100, 20),
    );

    let outcome = seed_workflow(&wf, &store).unwrap();
    assert_eq!(outcome.seeded, 1);
    assert_eq!(outcome.missing, vec![prior_id.to_string()]);

    let seeded = outcome.workflow;
    let sg = seeded.graph();
    let prior_sel = sg.activity(prior_node).unwrap().selectivity();
    let cal_sel = sg.activity(calibrated_node).unwrap().selectivity();
    assert!(
        (prior_sel - 0.35).abs() < 1e-12,
        "unknown fingerprint must keep the uncalibrated prior, got {prior_sel}"
    );
    assert!(
        (cal_sel - 0.2).abs() < 1e-12,
        "calibrated selectivity, got {cal_sel}"
    );
}

#[test]
fn zero_rows_out_clamps_to_min_selectivity() {
    // Regression: an activity observed to pass zero rows must not seed a
    // zero selectivity (which would zero out every downstream cost).
    assert_eq!(
        MIN_SELECTIVITY,
        etlopt_core::opt::adaptive::SELECTIVITY_FLOOR,
        "one-shot and adaptive calibration must share the clamp"
    );
    let entry = CalEntry::new(1000, 0);
    assert_eq!(entry.selectivity(), Some(MIN_SELECTIVITY));

    // Zero evidence is different from zero output: no rows seen, no estimate.
    assert_eq!(CalEntry::new(0, 0).selectivity(), None);

    let wf = two_filter_workflow();
    let g = wf.graph();
    let mut store = CalibrationStore::new();
    for node in wf.activities().unwrap() {
        let act = g.activity(node).unwrap();
        store.record(
            activity_key(&act.id),
            &act.id.to_string(),
            CalEntry::new(100, 0),
        );
    }
    let outcome = seed_workflow(&wf, &store).unwrap();
    assert_eq!(outcome.seeded, 2);
    let sg = outcome.workflow.graph();
    for node in outcome.workflow.activities().unwrap() {
        let sel = sg.activity(node).unwrap().selectivity();
        assert!(
            (sel - MIN_SELECTIVITY).abs() < 1e-15,
            "zero-output activity must clamp to the floor, got {sel}"
        );
    }
}
