//! Typed error paths and tenant namespacing of the calibration store's
//! filesystem layer.
//!
//! The regression pinned here: a store file that exists but is corrupt
//! must surface as [`StoreError::Malformed`], never be silently replaced
//! by an empty store (which would erase accumulated calibration on the
//! next save).

use etlopt_core::opt::adaptive::{CalEntry, Calibration};
use etlopt_workload::{CalibrationStore, StoreDir, StoreError};

use std::path::PathBuf;

/// A unique scratch directory per test, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("etlopt_store_errors_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sample_store() -> CalibrationStore {
    let mut store = CalibrationStore::new();
    store.record(7, "3", CalEntry::new(100, 40));
    store.record_source("S", 128);
    store
}

#[test]
fn malformed_file_is_a_typed_error_not_an_empty_store() {
    let scratch = Scratch::new("malformed");
    let path = scratch.0.join("cal.json");
    std::fs::write(&path, "{ this is not a calibration store ]").unwrap();

    let err = CalibrationStore::load(&path).expect_err("corrupt file must not load");
    assert!(err.is_malformed(), "got {err:?}");
    assert!(!err.is_not_found());
    let msg = err.to_string();
    assert!(msg.contains("malformed"), "{msg}");
    assert!(msg.contains("cal.json"), "{msg}");
}

#[test]
fn truncated_valid_prefix_is_malformed_too() {
    let scratch = Scratch::new("truncated");
    let path = scratch.0.join("cal.json");
    let full = sample_store().to_json();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();
    let err = CalibrationStore::load(&path).expect_err("truncated file must not load");
    assert!(err.is_malformed(), "got {err:?}");
}

#[test]
fn missing_file_is_io_not_found() {
    let scratch = Scratch::new("missing");
    let err = CalibrationStore::load(scratch.0.join("absent.json"))
        .expect_err("missing file is an error at this layer");
    assert!(err.is_not_found(), "got {err:?}");
    assert!(!err.is_malformed());
    assert!(matches!(err, StoreError::Io { .. }));
}

#[test]
fn save_load_roundtrips_through_typed_layer() {
    let scratch = Scratch::new("roundtrip");
    let path = scratch.0.join("cal.json");
    let store = sample_store();
    store.save(&path).unwrap();
    assert_eq!(CalibrationStore::load(&path).unwrap(), store);
}

#[test]
fn store_dir_namespaces_tenants() {
    let scratch = Scratch::new("namespacing");
    let dir = StoreDir::new(&scratch.0);
    let family = 0xABCDu128;

    let mut a = CalibrationStore::new();
    a.record(1, "1", CalEntry::new(10, 5));
    let mut b = CalibrationStore::new();
    b.record(1, "1", CalEntry::new(10, 9));

    dir.save("acme", family, &a).unwrap();
    dir.save("umbrella", family, &b).unwrap();

    // Same family digest, different tenants: loads never mix.
    assert_eq!(dir.load("acme", family).unwrap().unwrap(), a);
    assert_eq!(dir.load("umbrella", family).unwrap().unwrap(), b);
    // A tenant with no saved store is a clean cold start.
    assert_eq!(dir.load("initech", family).unwrap(), None);
}

#[test]
fn store_dir_surfaces_corruption() {
    let scratch = Scratch::new("dir_corrupt");
    let dir = StoreDir::new(&scratch.0);
    dir.save("acme", 1, &sample_store()).unwrap();
    std::fs::write(dir.path_for("acme", 1), "not json").unwrap();
    let err = dir.load("acme", 1).expect_err("corrupt store must error");
    assert!(err.is_malformed(), "got {err:?}");
}

#[test]
fn tenant_escaping_is_injective_for_hostile_names() {
    let scratch = Scratch::new("escaping");
    let dir = StoreDir::new(&scratch.0);
    // Names that collide under naive sanitization ('/' → '_').
    let tenants = ["a/b", "a_b", "a_2fb", "..", "a b"];
    for (i, t) in tenants.iter().enumerate() {
        let mut s = CalibrationStore::new();
        s.record_source("S", i as u64 + 1);
        dir.save(t, 5, &s).unwrap();
    }
    for (i, t) in tenants.iter().enumerate() {
        let s = dir.load(t, 5).unwrap().unwrap();
        assert_eq!(
            s.sources().next().unwrap().1,
            i as u64 + 1,
            "tenant {t:?} read someone else's store"
        );
        // Every path stays inside the root.
        assert!(dir.path_for(t, 5).starts_with(&scratch.0));
    }
}
