//! Randomized property tests over the core data structures: schema algebra,
//! predicate text round-trips, commutation symmetry and id-algebra
//! invariants. Driven by the in-repo seeded [`Rng`] (the build environment
//! is offline, so `proptest` is unavailable); every case prints its seed on
//! failure so a shrink-by-hand reproduction is one constant away.

use etlopt_core::predicate::{CmpOp, Predicate};
use etlopt_core::rng::Rng;
use etlopt_core::scalar::Scalar;
use etlopt_core::schema::{Attr, Schema};
use etlopt_core::semantics::{Aggregation, UnaryOp};
use etlopt_core::transition::commute::ops_commute;

const CASES: u64 = 512;

fn attr_name(rng: &mut Rng) -> String {
    let letters = ['a', 'b', 'c', 'd'];
    let len = rng.gen_range(1..=2usize);
    (0..len)
        .map(|_| letters[rng.gen_range(0..4usize)])
        .collect()
}

fn schema(rng: &mut Rng) -> Schema {
    let n = rng.gen_range(0..5usize);
    (0..n).map(|_| Attr::new(attr_name(rng))).collect()
}

fn scalar(rng: &mut Rng) -> Scalar {
    match rng.gen_range(0..6u32) {
        0 => Scalar::Null,
        1 => Scalar::Int(rng.gen_range(i32::MIN as i64..=i32::MAX as i64)),
        2 => Scalar::Float(rng.gen_range(-1000.0..1000.0)),
        3 => Scalar::Bool(rng.gen_bool(0.5)),
        4 => Scalar::Date(rng.gen_range(-5000..5000i32)),
        _ => {
            let len = rng.gen_range(0..=12usize);
            Scalar::from(
                (0..len)
                    .map(|_| char::from(rng.gen_range(0x20..0x7fu32) as u8))
                    .collect::<String>(),
            )
        }
    }
}

fn cmp_op(rng: &mut Rng) -> CmpOp {
    match rng.gen_range(0..6u32) {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

fn leaf_predicate(rng: &mut Rng) -> Predicate {
    match rng.gen_range(0..5u32) {
        0 => Predicate::Cmp {
            attr: attr_name(rng).into(),
            op: cmp_op(rng),
            value: scalar(rng),
        },
        1 => Predicate::not_null(attr_name(rng).as_str()),
        2 => Predicate::IsNull(Attr::new(attr_name(rng))),
        3 => {
            let n = rng.gen_range(1..4usize);
            Predicate::InList {
                attr: attr_name(rng).into(),
                values: (0..n).map(|_| scalar(rng)).collect(),
            }
        }
        _ => Predicate::True,
    }
}

fn predicate(rng: &mut Rng, depth: usize) -> Predicate {
    if depth == 0 || rng.gen_bool(0.4) {
        return leaf_predicate(rng);
    }
    match rng.gen_range(0..3u32) {
        0 => predicate(rng, depth - 1).and(predicate(rng, depth - 1)),
        1 => predicate(rng, depth - 1).or(predicate(rng, depth - 1)),
        _ => predicate(rng, depth - 1).not(),
    }
}

// --- Schema algebra -----------------------------------------------------

#[test]
fn union_is_idempotent_and_monotone() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let (a, b) = (schema(&mut rng), schema(&mut rng));
        let u = a.union(&b);
        assert!(a.is_subset_of(&u), "seed {seed}");
        assert!(b.is_subset_of(&u), "seed {seed}");
        assert_eq!(u.union(&b), u, "seed {seed}");
        assert!(u.same_attrs(&b.union(&a)), "seed {seed}");
    }
}

#[test]
fn difference_and_intersection_partition() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x11);
        let (a, b) = (schema(&mut rng), schema(&mut rng));
        let d = a.difference(&b);
        let i = a.intersection(&b);
        assert_eq!(d.len() + i.len(), a.len(), "seed {seed}");
        for x in d.iter() {
            assert!(!b.contains(x), "seed {seed}");
        }
        for x in i.iter() {
            assert!(b.contains(x), "seed {seed}");
        }
        // d and i are disjoint and together rebuild a (as a set).
        assert!(d.union(&i).same_attrs(&a), "seed {seed}");
    }
}

#[test]
fn subset_is_a_partial_order() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x22);
        let (a, b, c) = (schema(&mut rng), schema(&mut rng), schema(&mut rng));
        assert!(a.is_subset_of(&a), "seed {seed}");
        if a.is_subset_of(&b) && b.is_subset_of(&c) {
            assert!(a.is_subset_of(&c), "seed {seed}");
        }
        if a.is_subset_of(&b) && b.is_subset_of(&a) {
            assert!(a.same_attrs(&b), "seed {seed}");
        }
    }
}

// --- Scalars -------------------------------------------------------------

#[test]
fn total_cmp_is_a_total_order() {
    use std::cmp::Ordering;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x33);
        let (a, b, c) = (scalar(&mut rng), scalar(&mut rng), scalar(&mut rng));
        assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse(), "seed {seed}");
        assert_eq!(a.total_cmp(&a), Ordering::Equal, "seed {seed}");
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            assert_ne!(a.total_cmp(&c), Ordering::Greater, "seed {seed}");
        }
    }
}

#[test]
fn compare_is_antisymmetric_when_defined() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x44);
        let (a, b) = (scalar(&mut rng), scalar(&mut rng));
        if let (Some(x), Some(y)) = (a.compare(&b), b.compare(&a)) {
            assert_eq!(x, y.reverse(), "seed {seed}");
        }
    }
}

// --- Predicates ----------------------------------------------------------

#[test]
fn predicate_text_roundtrips() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x55);
        let p = predicate(&mut rng, 3);
        let text = etlopt_core::text::pred::render(&p);
        let mut cursor = etlopt_core::text::lexer::Cursor::new(&text).unwrap();
        let back = etlopt_core::text::pred::parse(&mut cursor).unwrap();
        cursor.expect_end().unwrap();
        assert_eq!(back, p, "seed {seed} through `{text}`");
    }
}

#[test]
fn referenced_attrs_covers_every_leaf() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x66);
        let p = predicate(&mut rng, 3);
        // Rendering mentions exactly the attributes referenced_attrs reports
        // (string containment as a weak but effective oracle).
        let attrs = p.referenced_attrs();
        let text = etlopt_core::text::pred::render(&p);
        for a in attrs.iter() {
            assert!(text.contains(a.name()), "seed {seed}: {a} not in `{text}`");
        }
    }
}

// --- Commutation ---------------------------------------------------------

#[test]
fn ops_commute_is_symmetric() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x77);
        let a_attr = attr_name(&mut rng);
        let b_attr = attr_name(&mut rng);
        let mk = |which: u32, attr: &str| -> UnaryOp {
            match which {
                0 => UnaryOp::filter(Predicate::gt(attr, 1)),
                1 => UnaryOp::not_null(attr),
                2 => UnaryOp::function("f", [attr], attr),
                3 => UnaryOp::aggregate(Aggregation::sum([attr], attr, attr)),
                _ => UnaryOp::Dedup { selectivity: 1.0 },
            }
        };
        let a = mk(rng.gen_range(0..5u32), &a_attr);
        let b = mk(rng.gen_range(0..5u32), &b_attr);
        assert_eq!(
            ops_commute(&a, &b).is_ok(),
            ops_commute(&b, &a).is_ok(),
            "seed {seed}: {a:?} vs {b:?}"
        );
    }
}

// --- Activity-id algebra -------------------------------------------------

#[test]
fn factored_distributed_are_inverse() {
    use etlopt_core::activity::ActivityId;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed ^ 0x88);
        let base = rng.gen_range(0..1000u32);
        let id = ActivityId::Base(base);
        let (c1, c2) = ActivityId::distributed(&id);
        assert_eq!(ActivityId::factored(&c1, &c2), id, "seed {seed}");
        let other = ActivityId::Base(base.wrapping_add(1));
        let f = ActivityId::factored(&id, &other);
        let (x, y) = ActivityId::distributed(&f);
        assert!(
            (x == id && y == other) || (x == other && y == id),
            "seed {seed}"
        );
    }
}
