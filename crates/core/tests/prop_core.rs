//! Property tests over the core data structures: schema algebra, predicate
//! text round-trips, commutation symmetry and signature/graph invariants.

use etlopt_core::predicate::{CmpOp, Predicate};
use etlopt_core::scalar::Scalar;
use etlopt_core::schema::{Attr, Schema};
use etlopt_core::semantics::{Aggregation, UnaryOp};
use etlopt_core::transition::commute::ops_commute;
use proptest::prelude::*;

fn attr_name() -> impl Strategy<Value = String> {
    "[a-d]{1,2}".prop_map(|s| s)
}

fn schema() -> impl Strategy<Value = Schema> {
    proptest::collection::btree_set(attr_name(), 0..5)
        .prop_map(|s| s.into_iter().map(Attr::new).collect())
}

fn scalar() -> impl Strategy<Value = Scalar> {
    prop_oneof![
        Just(Scalar::Null),
        any::<i32>().prop_map(|i| Scalar::Int(i as i64)),
        (-1000.0..1000.0f64).prop_map(Scalar::Float),
        any::<bool>().prop_map(Scalar::Bool),
        (-5000i32..5000).prop_map(Scalar::Date),
        "[ -~]{0,12}".prop_map(Scalar::from),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn predicate() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        (attr_name(), cmp_op(), scalar()).prop_map(|(a, op, v)| Predicate::Cmp {
            attr: a.into(),
            op,
            value: v
        }),
        attr_name().prop_map(|a| Predicate::not_null(a.as_str())),
        attr_name().prop_map(|a| Predicate::IsNull(Attr::new(a))),
        (attr_name(), proptest::collection::vec(scalar(), 1..4)).prop_map(|(a, vs)| {
            Predicate::InList {
                attr: a.into(),
                values: vs,
            }
        }),
        Just(Predicate::True),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Predicate::not),
        ]
    })
}

proptest! {
    // --- Schema algebra -------------------------------------------------

    #[test]
    fn union_is_idempotent_and_monotone(a in schema(), b in schema()) {
        let u = a.union(&b);
        prop_assert!(a.is_subset_of(&u));
        prop_assert!(b.is_subset_of(&u));
        prop_assert_eq!(u.union(&b), u.clone());
        prop_assert!(u.same_attrs(&b.union(&a)));
    }

    #[test]
    fn difference_and_intersection_partition(a in schema(), b in schema()) {
        let d = a.difference(&b);
        let i = a.intersection(&b);
        prop_assert_eq!(d.len() + i.len(), a.len());
        for x in d.iter() {
            prop_assert!(!b.contains(x));
        }
        for x in i.iter() {
            prop_assert!(b.contains(x));
        }
        // d and i are disjoint and together rebuild a (as a set).
        prop_assert!(d.union(&i).same_attrs(&a));
    }

    #[test]
    fn subset_is_a_partial_order(a in schema(), b in schema(), c in schema()) {
        prop_assert!(a.is_subset_of(&a));
        if a.is_subset_of(&b) && b.is_subset_of(&c) {
            prop_assert!(a.is_subset_of(&c));
        }
        if a.is_subset_of(&b) && b.is_subset_of(&a) {
            prop_assert!(a.same_attrs(&b));
        }
    }

    // --- Scalars ---------------------------------------------------------

    #[test]
    fn total_cmp_is_a_total_order(a in scalar(), b in scalar(), c in scalar()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    #[test]
    fn compare_is_antisymmetric_when_defined(a in scalar(), b in scalar()) {
        if let (Some(x), Some(y)) = (a.compare(&b), b.compare(&a)) {
            prop_assert_eq!(x, y.reverse());
        }
    }

    // --- Predicates ------------------------------------------------------

    #[test]
    fn predicate_text_roundtrips(p in predicate()) {
        let text = etlopt_core::text::pred::render(&p);
        let mut cursor = etlopt_core::text::lexer::Cursor::new(&text).unwrap();
        let back = etlopt_core::text::pred::parse(&mut cursor).unwrap();
        cursor.expect_end().unwrap();
        prop_assert_eq!(back, p, "through `{}`", text);
    }

    #[test]
    fn referenced_attrs_covers_every_leaf(p in predicate()) {
        // Rendering mentions exactly the attributes referenced_attrs reports
        // (string containment as a weak but effective oracle).
        let attrs = p.referenced_attrs();
        let text = etlopt_core::text::pred::render(&p);
        for a in attrs.iter() {
            prop_assert!(text.contains(a.name()), "{} not in `{}`", a, text);
        }
    }

    // --- Commutation -----------------------------------------------------

    #[test]
    fn ops_commute_is_symmetric(
        a_attr in attr_name(),
        b_attr in attr_name(),
        which_a in 0usize..5,
        which_b in 0usize..5,
    ) {
        let mk = |which: usize, attr: &str| -> UnaryOp {
            match which {
                0 => UnaryOp::filter(Predicate::gt(attr, 1)),
                1 => UnaryOp::not_null(attr),
                2 => UnaryOp::function("f", [attr], attr),
                3 => UnaryOp::aggregate(Aggregation::sum([attr], attr, attr)),
                _ => UnaryOp::Dedup { selectivity: 1.0 },
            }
        };
        let a = mk(which_a, &a_attr);
        let b = mk(which_b, &b_attr);
        prop_assert_eq!(ops_commute(&a, &b).is_ok(), ops_commute(&b, &a).is_ok());
    }

    // --- Activity-id algebra ----------------------------------------------

    #[test]
    fn factored_distributed_are_inverse(base in 0u32..1000) {
        use etlopt_core::activity::ActivityId;
        let id = ActivityId::Base(base);
        let (c1, c2) = ActivityId::distributed(&id);
        prop_assert_eq!(ActivityId::factored(&c1, &c2), id.clone());
        let other = ActivityId::Base(base.wrapping_add(1));
        let f = ActivityId::factored(&id, &other);
        let (x, y) = ActivityId::distributed(&f);
        prop_assert!(
            (x == id.clone() && y == other.clone()) || (x == other && y == id)
        );
    }
}
