//! State signatures (§4.1).
//!
//! During search we must recognize states we have already visited. The paper
//! assigns each activity its initial topological priority as a lifelong
//! identifier and serializes the workflow structure into a string — the
//! example of Fig. 1 has signature `((1.3)//(2.4.5.6)).7.8.9`.
//!
//! Our serialization follows the same grammar:
//!
//! * a source recordset renders as its priority,
//! * a unary activity renders as `<provider>.<id>`,
//! * a binary activity renders as `(<left>//<right>).<id>`, with the two
//!   branches sorted lexicographically when the operator is commutative so
//!   that mirror-image states collapse to one signature,
//! * recordsets in mid-flow and targets render like unary activities.

use std::collections::HashMap;
use std::fmt;

use crate::graph::{Node, NodeId};
use crate::workflow::Workflow;

/// A canonical state identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(String);

impl Signature {
    /// Compute the signature of a workflow state.
    pub fn of(wf: &Workflow) -> Signature {
        // Memoize only nodes with more than one consumer (shared subflows);
        // pure tree shapes — the overwhelmingly common case in the search
        // hot loop — render without any map traffic.
        let mut memo: HashMap<NodeId, String> = HashMap::new();
        let mut targets: Vec<String> = wf
            .targets()
            .into_iter()
            .map(|t| {
                let mut out = String::with_capacity(64);
                render(wf, t, &mut memo, &mut out);
                out
            })
            .collect();
        targets.sort();
        Signature(targets.join("||"))
    }

    /// The signature string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The 128-bit fingerprint of this signature.
    ///
    /// Search keys its visited sets on the fingerprint instead of the
    /// string: a `u128` compare replaces a heap allocation plus a
    /// hash-of-string per visited state. Two independent 64-bit lanes with
    /// distinct multipliers make an accidental collision across both lanes
    /// vanishingly unlikely (≪ 2⁻⁶⁴ for search-sized state sets); a
    /// property test asserts fingerprint equality coincides with string
    /// equality over generated workflows.
    pub fn fingerprint(&self) -> u128 {
        let mut fp = Fp128::new();
        fp.write(self.0.as_bytes());
        fp.finish()
    }
}

/// Two-lane streaming mixer producing a 128-bit fingerprint.
///
/// Each lane is an FxHash-style rotate-xor-multiply over the input bytes,
/// seeded and multiplied differently, finished with a SplitMix64-style
/// avalanche. Byte-at-a-time processing keeps the digest independent of
/// write granularity, so hashing a whole string and streaming the same
/// bytes piecewise agree exactly.
#[derive(Debug, Clone)]
pub(crate) struct Fp128 {
    a: u64,
    b: u64,
}

impl Fp128 {
    pub(crate) fn new() -> Self {
        // First 32 hex digits of π, split across the lanes.
        Fp128 {
            a: 0x243F_6A88_85A3_08D3,
            b: 0x1319_8A2E_0370_7344,
        }
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a.rotate_left(5) ^ u64::from(x)).wrapping_mul(0x51_7C_C1_B7_27_22_0A_95);
            self.b = (self.b.rotate_left(7) ^ u64::from(x)).wrapping_mul(0x2545_F491_4F6C_DD1D);
        }
    }

    /// Absorb a child hash whole (little-endian), without byte-splitting
    /// overhead dominating: one mixing round per 64-bit half and lane.
    pub(crate) fn write_u128(&mut self, h: u128) {
        let lo = h as u64;
        let hi = (h >> 64) as u64;
        self.a = (self.a.rotate_left(5) ^ lo).wrapping_mul(0x51_7C_C1_B7_27_22_0A_95);
        self.a = (self.a.rotate_left(5) ^ hi).wrapping_mul(0x51_7C_C1_B7_27_22_0A_95);
        self.b = (self.b.rotate_left(7) ^ lo).wrapping_mul(0x2545_F491_4F6C_DD1D);
        self.b = (self.b.rotate_left(7) ^ hi).wrapping_mul(0x2545_F491_4F6C_DD1D);
    }

    pub(crate) fn finish(&self) -> u128 {
        fn avalanche(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        (u128::from(avalanche(self.a)) << 64) | u128::from(avalanche(self.b))
    }
}

impl fmt::Write for Fp128 {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write(s.as_bytes());
        Ok(())
    }
}

/// Slot-indexed structural hashes of every node's upstream subflow — the
/// incremental-fingerprint state carried from parent to successor during
/// search.
///
/// Each node's hash digests the same information its signature substring
/// carries: the hashes of its providers (sorted for commutative binaries,
/// so mirror-image states collapse), an arity tag, and the node's lifelong
/// token (activity id or recordset priority). The state fingerprint folds
/// the target hashes in sorted order, mirroring the sorted-join of
/// multi-target signatures. Fingerprint equality therefore coincides with
/// signature equality (w.h.p.), which is the only property the visited
/// sets rely on — asserted by the equivalence property tests.
///
/// Dead slots keep stale hashes; they are never read, because transitions'
/// `affected` sets cover every re-populated slot (the same invariant delta
/// costing rests on).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeHashes {
    node: Vec<u128>,
}

impl NodeHashes {
    /// Hash of one node's upstream subflow (0 for ids never hashed).
    pub fn of(&self, id: NodeId) -> u128 {
        self.node.get(id.0 as usize).copied().unwrap_or(0)
    }
}

/// Hash every node of a state from scratch, bottom-up from the sources;
/// returns the per-node table and the state fingerprint. Infallible like
/// the string render: a malformed graph yields a garbage-but-deterministic
/// digest, and validity is enforced elsewhere.
pub fn hash_state(wf: &Workflow) -> (NodeHashes, u128) {
    let cap = wf.graph().slot_capacity();
    let mut node = vec![0u128; cap];
    // 0 = untouched, 1 = scheduled, 2 = hashed.
    let mut state = vec![0u8; cap];
    let targets = wf.targets();
    let mut stack: Vec<(NodeId, bool)> = targets.iter().map(|&t| (t, false)).collect();
    while let Some((id, ready)) = stack.pop() {
        let slot = id.0 as usize;
        if ready {
            node[slot] = node_hash(wf, id, &node);
            state[slot] = 2;
        } else {
            if state[slot] != 0 {
                continue;
            }
            state[slot] = 1;
            stack.push((id, true));
            for p in wf
                .graph()
                .providers(id)
                .unwrap_or_default()
                .iter()
                .flatten()
            {
                if state[p.0 as usize] == 0 {
                    stack.push((*p, false));
                }
            }
        }
    }
    let fp = combine_targets(&targets, &node);
    (NodeHashes { node }, fp)
}

/// Incremental twin of [`hash_state`]: reuse the parent's per-node hashes
/// and rehash only the `dirty` list — [`crate::schema_gen::downstream_of`]
/// of the transition's affected nodes on the successor graph, already in
/// topological order. Exact for the same reason delta costing is: a node's
/// hash is a pure function of its providers' hashes, and the dirty closure
/// contains every node whose providers changed.
pub fn rehash_along(wf: &Workflow, parent: &NodeHashes, dirty: &[NodeId]) -> (NodeHashes, u128) {
    let mut node = parent.node.clone();
    node.resize(wf.graph().slot_capacity(), 0);
    for &id in dirty {
        node[id.0 as usize] = node_hash(wf, id, &node);
    }
    let fp = combine_targets(&wf.targets(), &node);
    (NodeHashes { node }, fp)
}

/// One node's structural hash from its providers' hashes. Arity tags keep
/// the digest injective-in-structure the way the signature grammar is:
/// `s`ource, `u`nary and `b`inary nodes cannot collide by token reuse, and
/// commutative binaries sort their branch hashes exactly where the string
/// render sorts its branch strings.
fn node_hash(wf: &Workflow, id: NodeId, node: &[u128]) -> u128 {
    use std::fmt::Write;
    let graph = wf.graph();
    let mut fp = Fp128::new();
    let providers = graph.providers(id).unwrap_or_default();
    match providers.len() {
        0 => fp.write(b"s"),
        1 => {
            fp.write(b"u");
            if let Some(p) = providers[0] {
                fp.write_u128(node[p.0 as usize]);
            }
        }
        _ => {
            let l = providers[0].map(|p| node[p.0 as usize]).unwrap_or(0);
            let r = providers[1].map(|p| node[p.0 as usize]).unwrap_or(0);
            let commutative = match graph.node(id) {
                Ok(Node::Activity(a)) => match &a.op {
                    crate::activity::Op::Binary(b) => b.is_commutative(),
                    _ => false,
                },
                _ => false,
            };
            let (l, r) = if commutative && r < l { (r, l) } else { (l, r) };
            fp.write(b"b");
            fp.write_u128(l);
            fp.write_u128(r);
        }
    }
    fp.write(b".");
    match graph.node(id) {
        Ok(Node::Activity(a)) => {
            let _ = write!(fp, "{}", a.id);
        }
        _ => fp.write(wf.priority_token(id).as_bytes()),
    }
    fp.finish()
}

/// Fold the target hashes, sorted so multi-target states are order-free —
/// the hash-level twin of the sorted `||` join in [`Signature::of`].
fn combine_targets(targets: &[NodeId], node: &[u128]) -> u128 {
    let mut ts: Vec<u128> = targets
        .iter()
        .map(|t| node.get(t.0 as usize).copied().unwrap_or(0))
        .collect();
    ts.sort_unstable();
    let mut fp = Fp128::new();
    fp.write(b"W");
    for h in ts {
        fp.write_u128(h);
    }
    fp.finish()
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn render(wf: &Workflow, id: NodeId, memo: &mut HashMap<NodeId, String>, out: &mut String) {
    use std::fmt::Write;
    let graph = wf.graph();
    let shared = graph.consumers(id).map(|c| c.len() > 1).unwrap_or(false);
    if shared {
        if let Some(s) = memo.get(&id) {
            out.push_str(s);
            return;
        }
    }
    let start = out.len();
    let providers = graph.providers(id).unwrap_or_default();
    match providers.len() {
        0 => {}
        1 => {
            if let Some(p) = providers[0] {
                render(wf, p, memo, out);
                out.push('.');
            }
        }
        _ => {
            let mut l = String::with_capacity(32);
            let mut r = String::with_capacity(32);
            if let Some(p) = providers[0] {
                render(wf, p, memo, &mut l);
            }
            if let Some(p) = providers[1] {
                render(wf, p, memo, &mut r);
            }
            let commutative = match graph.node(id) {
                Ok(Node::Activity(a)) => match &a.op {
                    crate::activity::Op::Binary(b) => b.is_commutative(),
                    _ => false,
                },
                _ => false,
            };
            let (l, r) = if commutative && r < l { (r, l) } else { (l, r) };
            let _ = write!(out, "(({l})//({r})).");
        }
    }
    match graph.node(id) {
        Ok(Node::Activity(a)) => {
            let _ = write!(out, "{}", a.id);
        }
        _ => out.push_str(&wf.priority_token(id)),
    }
    if shared {
        memo.insert(id, out[start..].to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{BinaryOp, UnaryOp};
    use crate::workflow::WorkflowBuilder;

    fn linear() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
        let g = b.unary("NN", UnaryOp::not_null("a"), f);
        b.target("T", Schema::of(["a"]), g);
        b.build().unwrap()
    }

    #[test]
    fn linear_chain_renders_dotted() {
        assert_eq!(linear().signature().as_str(), "1.2.3.4");
    }

    #[test]
    fn commutative_branches_are_canonicalized() {
        // Build the same union twice with swapped source insertion order;
        // signatures must coincide.
        let build = |flip: bool| {
            let mut b = WorkflowBuilder::new();
            let s1 = b.source("S1", Schema::of(["a"]), 10.0);
            let s2 = b.source("S2", Schema::of(["a"]), 10.0);
            let (l, r) = if flip { (s2, s1) } else { (s1, s2) };
            let u = b.binary("U", BinaryOp::Union, l, r);
            b.target("T", Schema::of(["a"]), u);
            b.build().unwrap()
        };
        assert_eq!(build(false).signature(), build(true).signature());
    }

    #[test]
    fn difference_branch_order_matters() {
        let build = |flip: bool| {
            let mut b = WorkflowBuilder::new();
            let s1 = b.source("S1", Schema::of(["a"]), 10.0);
            let s2 = b.source("S2", Schema::of(["a"]), 10.0);
            let (l, r) = if flip { (s2, s1) } else { (s1, s2) };
            let u = b.binary("D", BinaryOp::Difference, l, r);
            b.target("T", Schema::of(["a"]), u);
            b.build().unwrap()
        };
        assert_ne!(build(false).signature(), build(true).signature());
    }

    #[test]
    fn multi_target_signatures_join_sorted() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
        b.target("T1", Schema::of(["a"]), f);
        b.target("T2", Schema::of(["a"]), s);
        let wf = b.build().unwrap();
        let sig = wf.signature().to_string();
        assert!(sig.contains("||"), "{sig}");
        // Both target chains present, lexicographically ordered.
        let parts: Vec<&str> = sig.split("||").collect();
        assert_eq!(parts.len(), 2);
        let mut sorted = parts.clone();
        sorted.sort();
        assert_eq!(parts, sorted);
    }

    #[test]
    fn shared_subflow_renders_in_both_branches() {
        // One filter read by both ports of an intersection: the memoized
        // render must repeat the shared chain, not truncate it.
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
        let j = b.binary("∩", BinaryOp::Intersection, f, f);
        b.target("T", Schema::of(["a"]), j);
        let wf = b.build().unwrap();
        let sig = wf.signature().to_string();
        assert_eq!(sig.matches("1.2").count(), 2, "{sig}");
    }

    #[test]
    fn signature_is_stable_across_clones() {
        let wf = linear();
        assert_eq!(wf.signature(), wf.clone().signature());
    }

    #[test]
    fn fingerprint_is_write_granularity_independent() {
        let mut whole = Fp128::new();
        whole.write(b"((1.3)//(2.4.5.6)).7.8.9");
        let mut pieces = Fp128::new();
        for piece in ["((1.3)", "//", "(2.4.5.6))", ".7.8.9"] {
            pieces.write(piece.as_bytes());
        }
        assert_eq!(whole.finish(), pieces.finish());
    }

    #[test]
    fn structural_fingerprint_tracks_signature_across_shapes() {
        // The contract: fingerprint equality ⟺ signature equality, across
        // the render paths (linear spine, binary, shared subflow,
        // multi-target). Fingerprints are structural hashes, not hashes of
        // the rendered string, so only the equivalence is asserted.
        let shapes: Vec<Workflow> = vec![
            linear(),
            {
                let mut b = WorkflowBuilder::new();
                let s1 = b.source("S1", Schema::of(["a"]), 10.0);
                let s2 = b.source("S2", Schema::of(["a"]), 10.0);
                let u = b.binary("U", BinaryOp::Union, s1, s2);
                let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), u);
                b.target("T", Schema::of(["a"]), f);
                b.build().unwrap()
            },
            {
                let mut b = WorkflowBuilder::new();
                let s = b.source("S", Schema::of(["a"]), 10.0);
                let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
                let j = b.binary("∩", BinaryOp::Intersection, f, f);
                b.target("T", Schema::of(["a"]), j);
                b.build().unwrap()
            },
            {
                let mut b = WorkflowBuilder::new();
                let s = b.source("S", Schema::of(["a"]), 10.0);
                let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
                b.target("T1", Schema::of(["a"]), f);
                b.target("T2", Schema::of(["a"]), s);
                b.build().unwrap()
            },
        ];
        for x in &shapes {
            // Stable across clones and recomputation.
            assert_eq!(x.fingerprint(), x.clone().fingerprint());
            for y in &shapes {
                assert_eq!(
                    x.fingerprint() == y.fingerprint(),
                    x.signature() == y.signature(),
                    "{} vs {}",
                    x.signature(),
                    y.signature()
                );
            }
        }
    }

    #[test]
    fn incremental_rehash_matches_scratch_across_a_swap() {
        use crate::transition::{Swap, Transition};
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 100.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("v", 1)), s);
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), f);
        b.target("T", Schema::of(["sk", "v"]), sk);
        let wf = b.build().unwrap();
        let (hashes, fp) = hash_state(&wf);
        assert_eq!(fp, wf.fingerprint());
        let acts = wf.activities().unwrap();
        let t = Swap::new(acts[0], acts[1]);
        let next = t.apply(&wf).unwrap();
        let dirty = crate::schema_gen::downstream_of(next.graph(), &t.affected(&wf)).unwrap();
        let (inc_hashes, inc_fp) = rehash_along(&next, &hashes, &dirty);
        let (scratch_hashes, scratch_fp) = hash_state(&next);
        assert_eq!(inc_fp, scratch_fp);
        assert_eq!(inc_hashes, scratch_hashes);
        assert_ne!(inc_fp, fp, "swap must change the fingerprint");
    }

    #[test]
    fn commutative_branches_hash_canonically() {
        let build = |flip: bool| {
            let mut b = WorkflowBuilder::new();
            let s1 = b.source("S1", Schema::of(["a"]), 10.0);
            let s2 = b.source("S2", Schema::of(["a"]), 20.0);
            // A filter on one branch only, so the flip actually reorders
            // structurally distinct subflows.
            let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s1);
            let (l, r) = if flip { (s2, f) } else { (f, s2) };
            let u = b.binary("U", BinaryOp::Union, l, r);
            b.target("T", Schema::empty(), u);
            b.build().unwrap()
        };
        assert_eq!(build(false).fingerprint(), build(true).fingerprint());
    }

    #[test]
    fn distinct_signatures_have_distinct_fingerprints() {
        let a = Signature("1.2.3.4".to_owned()).fingerprint();
        let b = Signature("1.3.2.4".to_owned()).fingerprint();
        let c = Signature("((1.3)//(2.4.5.6)).7.8.9".to_owned()).fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
