//! State signatures (§4.1).
//!
//! During search we must recognize states we have already visited. The paper
//! assigns each activity its initial topological priority as a lifelong
//! identifier and serializes the workflow structure into a string — the
//! example of Fig. 1 has signature `((1.3)//(2.4.5.6)).7.8.9`.
//!
//! Our serialization follows the same grammar:
//!
//! * a source recordset renders as its priority,
//! * a unary activity renders as `<provider>.<id>`,
//! * a binary activity renders as `(<left>//<right>).<id>`, with the two
//!   branches sorted lexicographically when the operator is commutative so
//!   that mirror-image states collapse to one signature,
//! * recordsets in mid-flow and targets render like unary activities.

use std::collections::HashMap;
use std::fmt;

use crate::graph::{Node, NodeId};
use crate::workflow::Workflow;

/// A canonical state identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(String);

impl Signature {
    /// Compute the signature of a workflow state.
    pub fn of(wf: &Workflow) -> Signature {
        // Memoize only nodes with more than one consumer (shared subflows);
        // pure tree shapes — the overwhelmingly common case in the search
        // hot loop — render without any map traffic.
        let mut memo: HashMap<NodeId, String> = HashMap::new();
        let mut targets: Vec<String> = wf
            .targets()
            .into_iter()
            .map(|t| {
                let mut out = String::with_capacity(64);
                render(wf, t, &mut memo, &mut out);
                out
            })
            .collect();
        targets.sort();
        Signature(targets.join("||"))
    }

    /// The signature string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn render(wf: &Workflow, id: NodeId, memo: &mut HashMap<NodeId, String>, out: &mut String) {
    use std::fmt::Write;
    let graph = wf.graph();
    let shared = graph.consumers(id).map(|c| c.len() > 1).unwrap_or(false);
    if shared {
        if let Some(s) = memo.get(&id) {
            out.push_str(s);
            return;
        }
    }
    let start = out.len();
    let providers = graph.providers(id).unwrap_or_default();
    match providers.len() {
        0 => {}
        1 => {
            if let Some(p) = providers[0] {
                render(wf, p, memo, out);
                out.push('.');
            }
        }
        _ => {
            let mut l = String::with_capacity(32);
            let mut r = String::with_capacity(32);
            if let Some(p) = providers[0] {
                render(wf, p, memo, &mut l);
            }
            if let Some(p) = providers[1] {
                render(wf, p, memo, &mut r);
            }
            let commutative = match graph.node(id) {
                Ok(Node::Activity(a)) => match &a.op {
                    crate::activity::Op::Binary(b) => b.is_commutative(),
                    _ => false,
                },
                _ => false,
            };
            let (l, r) = if commutative && r < l { (r, l) } else { (l, r) };
            let _ = write!(out, "(({l})//({r})).");
        }
    }
    match graph.node(id) {
        Ok(Node::Activity(a)) => {
            let _ = write!(out, "{}", a.id);
        }
        _ => out.push_str(&wf.priority_token(id)),
    }
    if shared {
        memo.insert(id, out[start..].to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{BinaryOp, UnaryOp};
    use crate::workflow::WorkflowBuilder;

    fn linear() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
        let g = b.unary("NN", UnaryOp::not_null("a"), f);
        b.target("T", Schema::of(["a"]), g);
        b.build().unwrap()
    }

    #[test]
    fn linear_chain_renders_dotted() {
        assert_eq!(linear().signature().as_str(), "1.2.3.4");
    }

    #[test]
    fn commutative_branches_are_canonicalized() {
        // Build the same union twice with swapped source insertion order;
        // signatures must coincide.
        let build = |flip: bool| {
            let mut b = WorkflowBuilder::new();
            let s1 = b.source("S1", Schema::of(["a"]), 10.0);
            let s2 = b.source("S2", Schema::of(["a"]), 10.0);
            let (l, r) = if flip { (s2, s1) } else { (s1, s2) };
            let u = b.binary("U", BinaryOp::Union, l, r);
            b.target("T", Schema::of(["a"]), u);
            b.build().unwrap()
        };
        assert_eq!(build(false).signature(), build(true).signature());
    }

    #[test]
    fn difference_branch_order_matters() {
        let build = |flip: bool| {
            let mut b = WorkflowBuilder::new();
            let s1 = b.source("S1", Schema::of(["a"]), 10.0);
            let s2 = b.source("S2", Schema::of(["a"]), 10.0);
            let (l, r) = if flip { (s2, s1) } else { (s1, s2) };
            let u = b.binary("D", BinaryOp::Difference, l, r);
            b.target("T", Schema::of(["a"]), u);
            b.build().unwrap()
        };
        assert_ne!(build(false).signature(), build(true).signature());
    }

    #[test]
    fn multi_target_signatures_join_sorted() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
        b.target("T1", Schema::of(["a"]), f);
        b.target("T2", Schema::of(["a"]), s);
        let wf = b.build().unwrap();
        let sig = wf.signature().to_string();
        assert!(sig.contains("||"), "{sig}");
        // Both target chains present, lexicographically ordered.
        let parts: Vec<&str> = sig.split("||").collect();
        assert_eq!(parts.len(), 2);
        let mut sorted = parts.clone();
        sorted.sort();
        assert_eq!(parts, sorted);
    }

    #[test]
    fn shared_subflow_renders_in_both_branches() {
        // One filter read by both ports of an intersection: the memoized
        // render must repeat the shared chain, not truncate it.
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
        let j = b.binary("∩", BinaryOp::Intersection, f, f);
        b.target("T", Schema::of(["a"]), j);
        let wf = b.build().unwrap();
        let sig = wf.signature().to_string();
        assert_eq!(sig.matches("1.2").count(), 2, "{sig}");
    }

    #[test]
    fn signature_is_stable_across_clones() {
        let wf = linear();
        assert_eq!(wf.signature(), wf.clone().signature());
    }
}
