//! State signatures (§4.1).
//!
//! During search we must recognize states we have already visited. The paper
//! assigns each activity its initial topological priority as a lifelong
//! identifier and serializes the workflow structure into a string — the
//! example of Fig. 1 has signature `((1.3)//(2.4.5.6)).7.8.9`.
//!
//! Our serialization follows the same grammar:
//!
//! * a source recordset renders as its priority,
//! * a unary activity renders as `<provider>.<id>`,
//! * a binary activity renders as `(<left>//<right>).<id>`, with the two
//!   branches sorted lexicographically when the operator is commutative so
//!   that mirror-image states collapse to one signature,
//! * recordsets in mid-flow and targets render like unary activities.

use std::collections::HashMap;
use std::fmt;

use crate::graph::{Node, NodeId};
use crate::workflow::Workflow;

/// A canonical state identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(String);

impl Signature {
    /// Compute the signature of a workflow state.
    pub fn of(wf: &Workflow) -> Signature {
        // Memoize only nodes with more than one consumer (shared subflows);
        // pure tree shapes — the overwhelmingly common case in the search
        // hot loop — render without any map traffic.
        let mut memo: HashMap<NodeId, String> = HashMap::new();
        let mut targets: Vec<String> = wf
            .targets()
            .into_iter()
            .map(|t| {
                let mut out = String::with_capacity(64);
                render(wf, t, &mut memo, &mut out);
                out
            })
            .collect();
        targets.sort();
        Signature(targets.join("||"))
    }

    /// The signature string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The 128-bit fingerprint of this signature.
    ///
    /// Search keys its visited sets on the fingerprint instead of the
    /// string: a `u128` compare replaces a heap allocation plus a
    /// hash-of-string per visited state. Two independent 64-bit lanes with
    /// distinct multipliers make an accidental collision across both lanes
    /// vanishingly unlikely (≪ 2⁻⁶⁴ for search-sized state sets); a
    /// property test asserts fingerprint equality coincides with string
    /// equality over generated workflows.
    pub fn fingerprint(&self) -> u128 {
        let mut fp = Fp128::new();
        fp.write(self.0.as_bytes());
        fp.finish()
    }
}

/// Two-lane streaming mixer producing a 128-bit fingerprint.
///
/// Each lane is an FxHash-style rotate-xor-multiply over the input bytes,
/// seeded and multiplied differently, finished with a SplitMix64-style
/// avalanche. Byte-at-a-time processing keeps the digest independent of
/// write granularity, so hashing a whole string and streaming the same
/// bytes piecewise agree exactly.
#[derive(Debug, Clone)]
pub(crate) struct Fp128 {
    a: u64,
    b: u64,
}

impl Fp128 {
    pub(crate) fn new() -> Self {
        // First 32 hex digits of π, split across the lanes.
        Fp128 {
            a: 0x243F_6A88_85A3_08D3,
            b: 0x1319_8A2E_0370_7344,
        }
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a.rotate_left(5) ^ u64::from(x)).wrapping_mul(0x51_7C_C1_B7_27_22_0A_95);
            self.b = (self.b.rotate_left(7) ^ u64::from(x)).wrapping_mul(0x2545_F491_4F6C_DD1D);
        }
    }

    pub(crate) fn finish(&self) -> u128 {
        fn avalanche(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        (u128::from(avalanche(self.a)) << 64) | u128::from(avalanche(self.b))
    }
}

impl fmt::Write for Fp128 {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write(s.as_bytes());
        Ok(())
    }
}

/// Fingerprint a workflow state directly, streaming the exact byte sequence
/// of [`Signature::of`] into the mixer. Linear spines — the bulk of every
/// signature — hash without materializing; only binary-node branches (which
/// must be rendered to compare commutative orderings) and shared subflows
/// build intermediate strings.
pub(crate) fn fingerprint_of(wf: &Workflow) -> u128 {
    use std::fmt::Write;
    let mut memo: HashMap<NodeId, String> = HashMap::new();
    let mut fp = Fp128::new();
    let targets = wf.targets();
    if targets.len() == 1 {
        render_fp(wf, targets[0], &mut memo, &mut fp);
    } else {
        // Multi-target states sort rendered target chains, so they have to
        // materialize — rare outside hand-built scenarios.
        let mut chains: Vec<String> = targets
            .into_iter()
            .map(|t| {
                let mut out = String::with_capacity(64);
                render(wf, t, &mut memo, &mut out);
                out
            })
            .collect();
        chains.sort();
        let _ = fp.write_str(&chains.join("||"));
    }
    fp.finish()
}

/// Streaming twin of [`render`]: identical byte output, but the unary spine
/// goes straight into the mixer.
fn render_fp(wf: &Workflow, id: NodeId, memo: &mut HashMap<NodeId, String>, fp: &mut Fp128) {
    use std::fmt::Write;
    let graph = wf.graph();
    let shared = graph.consumers(id).map(|c| c.len() > 1).unwrap_or(false);
    if shared {
        // Shared subflows memoize their string form; render through the
        // string path so the memo stays consistent with `render`.
        if !memo.contains_key(&id) {
            let mut out = String::with_capacity(64);
            render(wf, id, memo, &mut out);
            memo.entry(id).or_insert(out);
        }
        fp.write(memo[&id].as_bytes());
        return;
    }
    let providers = graph.providers(id).unwrap_or_default();
    match providers.len() {
        0 => {}
        1 => {
            if let Some(p) = providers[0] {
                render_fp(wf, p, memo, fp);
                fp.write(b".");
            }
        }
        _ => {
            let mut l = String::with_capacity(32);
            let mut r = String::with_capacity(32);
            if let Some(p) = providers[0] {
                render(wf, p, memo, &mut l);
            }
            if let Some(p) = providers[1] {
                render(wf, p, memo, &mut r);
            }
            let commutative = match graph.node(id) {
                Ok(Node::Activity(a)) => match &a.op {
                    crate::activity::Op::Binary(b) => b.is_commutative(),
                    _ => false,
                },
                _ => false,
            };
            let (l, r) = if commutative && r < l { (r, l) } else { (l, r) };
            let _ = write!(fp, "(({l})//({r})).");
        }
    }
    match graph.node(id) {
        Ok(Node::Activity(a)) => {
            let _ = write!(fp, "{}", a.id);
        }
        _ => fp.write(wf.priority_token(id).as_bytes()),
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn render(wf: &Workflow, id: NodeId, memo: &mut HashMap<NodeId, String>, out: &mut String) {
    use std::fmt::Write;
    let graph = wf.graph();
    let shared = graph.consumers(id).map(|c| c.len() > 1).unwrap_or(false);
    if shared {
        if let Some(s) = memo.get(&id) {
            out.push_str(s);
            return;
        }
    }
    let start = out.len();
    let providers = graph.providers(id).unwrap_or_default();
    match providers.len() {
        0 => {}
        1 => {
            if let Some(p) = providers[0] {
                render(wf, p, memo, out);
                out.push('.');
            }
        }
        _ => {
            let mut l = String::with_capacity(32);
            let mut r = String::with_capacity(32);
            if let Some(p) = providers[0] {
                render(wf, p, memo, &mut l);
            }
            if let Some(p) = providers[1] {
                render(wf, p, memo, &mut r);
            }
            let commutative = match graph.node(id) {
                Ok(Node::Activity(a)) => match &a.op {
                    crate::activity::Op::Binary(b) => b.is_commutative(),
                    _ => false,
                },
                _ => false,
            };
            let (l, r) = if commutative && r < l { (r, l) } else { (l, r) };
            let _ = write!(out, "(({l})//({r})).");
        }
    }
    match graph.node(id) {
        Ok(Node::Activity(a)) => {
            let _ = write!(out, "{}", a.id);
        }
        _ => out.push_str(&wf.priority_token(id)),
    }
    if shared {
        memo.insert(id, out[start..].to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{BinaryOp, UnaryOp};
    use crate::workflow::WorkflowBuilder;

    fn linear() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
        let g = b.unary("NN", UnaryOp::not_null("a"), f);
        b.target("T", Schema::of(["a"]), g);
        b.build().unwrap()
    }

    #[test]
    fn linear_chain_renders_dotted() {
        assert_eq!(linear().signature().as_str(), "1.2.3.4");
    }

    #[test]
    fn commutative_branches_are_canonicalized() {
        // Build the same union twice with swapped source insertion order;
        // signatures must coincide.
        let build = |flip: bool| {
            let mut b = WorkflowBuilder::new();
            let s1 = b.source("S1", Schema::of(["a"]), 10.0);
            let s2 = b.source("S2", Schema::of(["a"]), 10.0);
            let (l, r) = if flip { (s2, s1) } else { (s1, s2) };
            let u = b.binary("U", BinaryOp::Union, l, r);
            b.target("T", Schema::of(["a"]), u);
            b.build().unwrap()
        };
        assert_eq!(build(false).signature(), build(true).signature());
    }

    #[test]
    fn difference_branch_order_matters() {
        let build = |flip: bool| {
            let mut b = WorkflowBuilder::new();
            let s1 = b.source("S1", Schema::of(["a"]), 10.0);
            let s2 = b.source("S2", Schema::of(["a"]), 10.0);
            let (l, r) = if flip { (s2, s1) } else { (s1, s2) };
            let u = b.binary("D", BinaryOp::Difference, l, r);
            b.target("T", Schema::of(["a"]), u);
            b.build().unwrap()
        };
        assert_ne!(build(false).signature(), build(true).signature());
    }

    #[test]
    fn multi_target_signatures_join_sorted() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
        b.target("T1", Schema::of(["a"]), f);
        b.target("T2", Schema::of(["a"]), s);
        let wf = b.build().unwrap();
        let sig = wf.signature().to_string();
        assert!(sig.contains("||"), "{sig}");
        // Both target chains present, lexicographically ordered.
        let parts: Vec<&str> = sig.split("||").collect();
        assert_eq!(parts.len(), 2);
        let mut sorted = parts.clone();
        sorted.sort();
        assert_eq!(parts, sorted);
    }

    #[test]
    fn shared_subflow_renders_in_both_branches() {
        // One filter read by both ports of an intersection: the memoized
        // render must repeat the shared chain, not truncate it.
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
        let j = b.binary("∩", BinaryOp::Intersection, f, f);
        b.target("T", Schema::of(["a"]), j);
        let wf = b.build().unwrap();
        let sig = wf.signature().to_string();
        assert_eq!(sig.matches("1.2").count(), 2, "{sig}");
    }

    #[test]
    fn signature_is_stable_across_clones() {
        let wf = linear();
        assert_eq!(wf.signature(), wf.clone().signature());
    }

    #[test]
    fn fingerprint_is_write_granularity_independent() {
        let mut whole = Fp128::new();
        whole.write(b"((1.3)//(2.4.5.6)).7.8.9");
        let mut pieces = Fp128::new();
        for piece in ["((1.3)", "//", "(2.4.5.6))", ".7.8.9"] {
            pieces.write(piece.as_bytes());
        }
        assert_eq!(whole.finish(), pieces.finish());
    }

    #[test]
    fn streaming_fingerprint_matches_string_fingerprint() {
        // Linear spine (pure streaming path).
        let wf = linear();
        assert_eq!(wf.fingerprint(), wf.signature().fingerprint());

        // Binary node (branch materialization path).
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["a"]), 10.0);
        let s2 = b.source("S2", Schema::of(["a"]), 10.0);
        let u = b.binary("U", BinaryOp::Union, s1, s2);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), u);
        b.target("T", Schema::of(["a"]), f);
        let wf = b.build().unwrap();
        assert_eq!(wf.fingerprint(), wf.signature().fingerprint());

        // Shared subflow (memo path).
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
        let j = b.binary("∩", BinaryOp::Intersection, f, f);
        b.target("T", Schema::of(["a"]), j);
        let wf = b.build().unwrap();
        assert_eq!(wf.fingerprint(), wf.signature().fingerprint());

        // Multi-target (sorted-join path).
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), s);
        b.target("T1", Schema::of(["a"]), f);
        b.target("T2", Schema::of(["a"]), s);
        let wf = b.build().unwrap();
        assert_eq!(wf.fingerprint(), wf.signature().fingerprint());
    }

    #[test]
    fn distinct_signatures_have_distinct_fingerprints() {
        let a = Signature("1.2.3.4".to_owned()).fingerprint();
        let b = Signature("1.3.2.4".to_owned()).fingerprint();
        let c = Signature("((1.3)//(2.4.5.6)).7.8.9".to_owned()).fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
