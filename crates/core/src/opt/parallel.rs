//! A minimal scoped worker pool for the search algorithms.
//!
//! The searches are embarrassingly parallel per round: a frontier (or
//! candidate list) of independent states is expanded and priced, then the
//! results are merged by a single coordinator. [`Threads::map`] covers
//! exactly that shape — it evaluates a pure function over a slice on N
//! scoped threads and returns the results **in input order**, which is what
//! keeps the parallel searches bit-identical to their sequential runs: all
//! order-sensitive work (visited-set insertion, best-state selection)
//! happens in the coordinator, over an order-stable result vector.
//!
//! Work is distributed by an atomic cursor rather than pre-chunking:
//! expanding one state can be 100× the work of another (move counts differ
//! wildly), so static chunks would regularly leave workers idle. The cursor
//! hands out small contiguous *batches* instead of single indices — with
//! incremental state evaluation the per-item work is short enough that a
//! per-item `fetch_add` became a measurable contention point on wide
//! frontiers, while batches of a few items amortize it without giving up
//! meaningful balance (a batch is at most ~1/8th of one worker's fair
//! share).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A worker-count handle; see [`Threads::map`].
#[derive(Debug)]
pub(crate) struct Threads {
    n: usize,
    /// Batches of work claimed per worker index, across every `map` call of
    /// this pool's lifetime. Runtime telemetry only: the claim cursor races
    /// under parallelism, so the split across workers is not deterministic
    /// (the *results* of `map` still are — they come back in input order).
    batches: Vec<AtomicU64>,
}

impl Threads {
    /// Below this many items the scoped-spawn overhead outweighs any
    /// speedup; run inline instead. Delta evaluation shrank per-item work,
    /// which pushed the break-even point up from the old threshold of 4.
    const MIN_PAR_ITEMS: usize = 8;

    /// A pool of `n` workers (clamped to at least 1).
    pub(crate) fn new(n: usize) -> Self {
        let n = n.max(1);
        Threads {
            n,
            batches: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Batches claimed per worker index so far (inline maps count one batch
    /// against worker 0).
    pub(crate) fn batch_counts(&self) -> Vec<u64> {
        self.batches
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Evaluate `f` over `items`, returning results in input order.
    ///
    /// With one worker (or a tiny input) this is a plain sequential map on
    /// the calling thread — the `parallelism = 1` knob therefore exercises
    /// the *same* code path the parallel run does, minus the threads.
    pub(crate) fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send + Sync,
        F: Fn(&T) -> R + Sync,
    {
        if self.n == 1 || items.len() < Self::MIN_PAR_ITEMS {
            if !items.is_empty() {
                self.batches[0].fetch_add(1, Ordering::Relaxed);
            }
            return items.iter().map(f).collect();
        }
        let slots: Vec<OnceLock<R>> = (0..items.len()).map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.n.min(items.len());
        // Batch size: 8 claims per worker keeps the tail balanced while
        // cutting cursor traffic by ~batch×.
        let batch = (items.len() / (workers * 8)).max(1);
        std::thread::scope(|scope| {
            let cursor = &cursor;
            let slots = &slots;
            let f = &f;
            for w in 0..workers {
                let claimed = &self.batches[w];
                scope.spawn(move || loop {
                    let start = cursor.fetch_add(batch, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    claimed.fetch_add(1, Ordering::Relaxed);
                    let end = (start + batch).min(items.len());
                    for i in start..end {
                        // A slot is claimed by exactly one worker (the
                        // cursor hands out each index once), so `set`
                        // cannot collide.
                        let _ = slots[i].set(f(&items[i]));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = Threads::new(8).map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        assert_eq!(
            Threads::new(1).map(&items, f),
            Threads::new(4).map(&items, f)
        );
    }

    #[test]
    fn tiny_inputs_run_inline() {
        // Not observable directly, but must not deadlock or reorder.
        let out = Threads::new(16).map(&[1, 2, 3], |&x: &i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn batched_claims_cover_every_slot() {
        // 1000 items / 3 workers → batch > 1; every index must still be
        // claimed exactly once and land in order.
        let items: Vec<usize> = (0..1000).collect();
        let out = Threads::new(3).map(&items, |&x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn batch_counts_cover_all_claims() {
        let t = Threads::new(4);
        let items: Vec<usize> = (0..100).collect();
        let _ = t.map(&items, |&x| x);
        let counts = t.batch_counts();
        assert_eq!(counts.len(), 4);
        assert!(counts.iter().sum::<u64>() > 0);
        // The inline path counts one batch against worker 0.
        let t1 = Threads::new(1);
        let _ = t1.map(&items, |&x| x);
        assert_eq!(t1.batch_counts(), vec![1]);
        // An empty map claims nothing.
        let t0 = Threads::new(1);
        let _ = t0.map(&[] as &[usize], |&x| x);
        assert_eq!(t0.batch_counts(), vec![0]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let out = Threads::new(0).map(&[5], |&x: &i32| x);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One huge item plus many small ones: completes and stays ordered.
        let items: Vec<u32> = std::iter::once(1_000_000)
            .chain(std::iter::repeat_n(10, 63))
            .collect();
        let out = Threads::new(4).map(&items, |&n| (0..n).fold(0u64, |a, x| a ^ u64::from(x)));
        assert_eq!(out.len(), 64);
        let seq = Threads::new(1).map(&items, |&n| (0..n).fold(0u64, |a, x| a ^ u64::from(x)));
        assert_eq!(out, seq);
    }
}
