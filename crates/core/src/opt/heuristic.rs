//! Heuristic Search (HS, Fig. 7) and HS-Greedy (§4.2).
//!
//! HS prunes the exhaustive space with the paper's four heuristics:
//!
//! 1. Factorize only homologous activities (with their binary);
//! 2. Distribute only activities that can be shifted in front of a binary;
//! 3. Apply Merge constraints before anything else;
//! 4. Divide and conquer: optimize swap order *per local group* instead of
//!    globally.
//!
//! The run proceeds in the paper's phases: pre-processing (merges, find
//! homologous pairs `H`, distributable activities `D`, local groups `L`),
//! Phase I (swaps within each local group), Phase II (`ShiftFrw` +
//! Factorize over `H`), Phase III (`ShiftBkw` + Distribute over `D` on
//! every Phase-II state), Phase IV (Phase I again on every state produced),
//! then post-processing (Split everything merged). HS-Greedy replaces the
//! per-group exhaustive swap exploration with hill climbing: only swaps
//! that immediately improve the cost are taken.

use std::collections::{BTreeSet, HashSet};
use std::time::Instant;

use crate::activity::ActivityId;
use crate::cost::CostModel;
use crate::error::{CoreError, Result};
use crate::graph::NodeId;
use crate::opt::{state_total, EvalState, Optimizer, Pacer, SearchBudget, SearchOutcome, Threads};
use crate::trace::{Collector, Rejections, Span, TraceEvent, TraceSink};
use crate::transition::{Distribute, Factorize, Merge, Swap, Transition};
use crate::workflow::Workflow;

/// One evaluated candidate state, as produced by a worker thread: its
/// fingerprint, the state itself, and its (possibly failed) model cost.
/// `None` when the candidate move did not apply. Errors are deferred to the
/// coordinator so they surface exactly when the sequential code would have
/// hit them. The swap phases carry full [`EvalState`]s instead, so swaps —
/// the bulk of all generated states — are delta-priced and incrementally
/// fingerprinted against their parent. Each worker item also returns its
/// rejection-rule counter deltas, merged by the coordinator in item order.
type Eval = (Option<(u128, Workflow, Result<f64>)>, Rejections);
type DeltaEval = (Option<Result<EvalState>>, Rejections);

/// The HS algorithm (Fig. 7).
#[derive(Debug, Clone, Default)]
pub struct HeuristicSearch {
    /// Resource bounds.
    pub budget: SearchBudget,
    /// Pairs of adjacent activities to merge during pre-processing (the
    /// `merg_cons` input of Fig. 7); they are split again before the result
    /// is returned.
    pub merge_constraints: Vec<(NodeId, NodeId)>,
}

impl HeuristicSearch {
    /// HS with the default budget and no merge constraints.
    pub fn new() -> Self {
        Self::default()
    }

    /// HS with a custom budget.
    pub fn with_budget(budget: SearchBudget) -> Self {
        HeuristicSearch {
            budget,
            merge_constraints: Vec::new(),
        }
    }

    /// Add a merge constraint.
    pub fn with_merge_constraint(mut self, a1: NodeId, a2: NodeId) -> Self {
        self.merge_constraints.push((a1, a2));
        self
    }
}

impl Optimizer for HeuristicSearch {
    fn name(&self) -> &str {
        "HS"
    }

    fn run_traced(
        &self,
        wf: &Workflow,
        model: &dyn CostModel,
        sink: &dyn TraceSink,
    ) -> Result<SearchOutcome> {
        Runner::new(model, self.budget, false, sink).run(wf, &self.merge_constraints)
    }
}

/// HS-Greedy: Phase I/IV take only immediately-improving swaps.
#[derive(Debug, Clone, Default)]
pub struct HsGreedy {
    /// Resource bounds.
    pub budget: SearchBudget,
    /// Merge constraints, as for [`HeuristicSearch`].
    pub merge_constraints: Vec<(NodeId, NodeId)>,
}

impl HsGreedy {
    /// HS-Greedy with the default budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// HS-Greedy with a custom budget.
    pub fn with_budget(budget: SearchBudget) -> Self {
        HsGreedy {
            budget,
            merge_constraints: Vec::new(),
        }
    }
}

impl Optimizer for HsGreedy {
    fn name(&self) -> &str {
        "HS-Greedy"
    }

    fn run_traced(
        &self,
        wf: &Workflow,
        model: &dyn CostModel,
        sink: &dyn TraceSink,
    ) -> Result<SearchOutcome> {
        Runner::new(model, self.budget, true, sink).run(wf, &self.merge_constraints)
    }
}

struct Runner<'m> {
    model: &'m dyn CostModel,
    budget: SearchBudget,
    greedy: bool,
    started: Instant,
    pacer: Pacer,
    threads: Threads,
    seen: HashSet<u128>,
    visited_states: usize,
    budget_exhausted: bool,
    /// Per-local-group cap for the best-first swap exploration, sized from
    /// the budget and the group count so Phase I cannot starve the
    /// Factorize/Distribute phases.
    group_cap: usize,
    col: Collector,
    sink: &'m dyn TraceSink,
}

impl<'m> Runner<'m> {
    fn new(
        model: &'m dyn CostModel,
        budget: SearchBudget,
        greedy: bool,
        sink: &'m dyn TraceSink,
    ) -> Self {
        let started = Instant::now();
        Runner {
            model,
            budget,
            greedy,
            started,
            pacer: Pacer::new(started, &budget),
            threads: Threads::new(budget.threads()),
            seen: HashSet::new(),
            visited_states: 0,
            budget_exhausted: false,
            group_cap: 5040,
            col: Collector::new(if greedy { "HS-Greedy" } else { "HS" }),
            sink,
        }
    }

    fn algorithm(&self) -> &'static str {
        if self.greedy {
            "HS-Greedy"
        } else {
            "HS"
        }
    }

    /// Account one costed state against the budget: unique states count
    /// toward `max_states`, and every call ticks the throttled wall-clock
    /// watchdog. `via_delta` says how the state was priced when it was
    /// created (delta repricing vs full pricing).
    fn record_eval(&mut self, fp: u128, via_delta: bool) {
        self.col.evaluated(via_delta);
        if self.seen.contains(&fp) {
            self.col.deduplicated();
        } else if self.visited_states < self.budget.max_states {
            self.seen.insert(fp);
            self.visited_states += 1;
            if self.visited_states >= self.budget.max_states {
                self.budget_exhausted = true;
            }
        } else {
            // At the cap: the state was priced (the batch was already in
            // flight) but is not admitted, so `visited_states` can never
            // overshoot `max_states` — it surfaces as `pruned` instead.
            self.budget_exhausted = true;
        }
        if self.pacer.tick() {
            self.budget_exhausted = true;
        }
    }

    fn out_of_budget(&mut self) -> bool {
        if self.visited_states >= self.budget.max_states {
            self.budget_exhausted = true;
        }
        self.budget_exhausted
    }

    fn run(
        mut self,
        wf: &Workflow,
        merge_constraints: &[(NodeId, NodeId)],
    ) -> Result<SearchOutcome> {
        let initial_cost = state_total(self.model, wf)?;

        // Pre-processing (Fig. 7 lines 4-8): apply all MER per constraints…
        let mut s0 = wf.clone();
        for &(a1, a2) in merge_constraints {
            s0 = Merge::new(a1, a2)
                .apply(&s0)
                .map_err(|e| CoreError::Schema(format!("merge constraint failed: {e}")))?;
        }
        // …then find H, D (recorded with their activity ids so that arena
        // slot reuse in later states cannot alias them) and L.
        let h: Vec<(NodeId, NodeId, NodeId)> = s0.homologous_pairs()?;
        let h: Vec<(Anchor, Anchor, Anchor)> = h
            .iter()
            .map(|&(a1, a2, ab)| {
                Ok((
                    Anchor::of(&s0, a1)?,
                    Anchor::of(&s0, a2)?,
                    Anchor::of(&s0, ab)?,
                ))
            })
            .collect::<Result<_>>()?;
        let d: Vec<(Anchor, Anchor)> = s0
            .distributable_activities()?
            .iter()
            .map(|&(a, ab)| Ok((Anchor::of(&s0, a)?, Anchor::of(&s0, ab)?)))
            .collect::<Result<_>>()?;

        // Phase I (lines 9-13): swaps within each local group. The pacer
        // throttles clock sampling to every 1024 costed states; phase
        // boundaries re-sample unconditionally so a slow phase cannot hide
        // a blown time budget from the next one.
        let mut phase_stats: Vec<crate::opt::PhaseStat> = Vec::new();
        self.phase_started("I swaps");
        let span = Span::start("I swaps");
        let smin_state = self.phase_swaps(EvalState::full(s0.clone(), self.model)?)?;
        self.record_eval(smin_state.fp, smin_state.via_delta());
        let mut smin = smin_state.wf;
        let mut smin_cost = smin_state.total;
        if self.pacer.check_now() {
            self.budget_exhausted = true;
        }
        self.col.frontier(1);
        self.col.span(span);
        self.phase_finished("I swaps", smin_cost);
        phase_stats.push(crate::opt::PhaseStat {
            phase: "I swaps",
            best_cost: smin_cost,
            visited_states: self.visited_states,
        });

        // Phase II (lines 14-20): ShiftFrw + FAC over H. A worklist chains
        // factorizations over different binaries (one FAC may enable
        // another); signatures dedup the produced states.
        /// Cap on states produced by the FAC/DIS worklists: the useful
        /// chains are short (each activity factorizes/distributes once per
        /// lineage); past this, additional interleavings are redundant.
        const COLLECT_CAP: usize = 192;
        self.phase_started("II factorize");
        let span = Span::start("II factorize");
        let mut collected: Vec<Workflow> = vec![smin.clone()];
        let mut produced: HashSet<u128> = HashSet::new();
        produced.insert(smin.fingerprint());
        let mut worklist: Vec<Workflow> = vec![smin.clone()];
        while let Some(si) = worklist.pop() {
            if collected.len() >= COLLECT_CAP {
                break;
            }
            self.col.expanded(si.fingerprint());
            // Shift + factorize + price every H candidate on the worker
            // pool; the merge below consumes the results in enumeration
            // order, so dedup, budget accounting and the running best are
            // identical for any thread count.
            let model = self.model;
            let evals: Vec<Eval> = self.threads.map(&h, |(a1, a2, ab)| {
                let mut rej = Rejections::default();
                let out = (|| {
                    let n1 = a1.locate(&si)?;
                    let n2 = a2.locate(&si)?;
                    let nb = ab.locate(&si)?;
                    let s = shift_frw_counted(&si, n1, nb, &mut rej)?;
                    let s = shift_frw_counted(&s, n2, nb, &mut rej)?;
                    let snew = match Factorize::new(nb, n1, n2).apply(&s) {
                        Ok(s) => s,
                        Err(e) => {
                            rej.record(&e);
                            return None;
                        }
                    };
                    let c = state_total(model, &snew);
                    Some((snew.fingerprint(), snew, c))
                })();
                (out, rej)
            });
            // Rejections first, over *every* item: the workers evaluated
            // them all, so counting must not depend on where the budget
            // stops the merge below.
            for (_, rej) in &evals {
                self.col.rejections(rej);
            }
            for (eval, _) in evals {
                if self.out_of_budget() {
                    break;
                }
                let Some((fp, snew, c)) = eval else { continue };
                let c = c?;
                self.record_eval(fp, false);
                if !produced.insert(fp) {
                    continue;
                }
                if c < smin_cost {
                    smin = snew.clone();
                    smin_cost = c;
                }
                collected.push(snew.clone());
                worklist.push(snew);
            }
            if self.out_of_budget() {
                break;
            }
        }
        if self.pacer.check_now() {
            self.budget_exhausted = true;
        }
        self.col.frontier(collected.len());
        self.col.span(span);
        self.phase_finished("II factorize", smin_cost);
        phase_stats.push(crate::opt::PhaseStat {
            phase: "II factorize",
            best_cost: smin_cost,
            visited_states: self.visited_states,
        });

        // Phase III (lines 21-28): ShiftBkw + DIS over D, on each Phase-II
        // state — again worklist-chained, so several activities can be
        // distributed in sequence (DIS σ then DIS SK). Activities
        // factorized in Phase II are not in D (Heuristic 2).
        self.phase_started("III distribute");
        let span = Span::start("III distribute");
        let mut worklist: Vec<Workflow> = collected.clone();
        while let Some(si) = worklist.pop() {
            if collected.len() >= COLLECT_CAP {
                break;
            }
            self.col.expanded(si.fingerprint());
            let model = self.model;
            let evals: Vec<Eval> = self.threads.map(&d, |(a, ab)| {
                let mut rej = Rejections::default();
                let out = (|| {
                    let na = a.locate(&si)?;
                    let nb = ab.locate(&si)?;
                    let s = shift_bkw_counted(&si, na, nb, &mut rej)?;
                    let snew = match Distribute::new(nb, na).apply(&s) {
                        Ok(s) => s,
                        Err(e) => {
                            rej.record(&e);
                            return None;
                        }
                    };
                    let c = state_total(model, &snew);
                    Some((snew.fingerprint(), snew, c))
                })();
                (out, rej)
            });
            for (_, rej) in &evals {
                self.col.rejections(rej);
            }
            for (eval, _) in evals {
                if self.out_of_budget() {
                    break;
                }
                let Some((fp, snew, c)) = eval else { continue };
                let c = c?;
                self.record_eval(fp, false);
                if !produced.insert(fp) {
                    continue;
                }
                if c < smin_cost {
                    smin = snew.clone();
                    smin_cost = c;
                }
                collected.push(snew.clone());
                worklist.push(snew);
            }
            if self.out_of_budget() {
                break;
            }
        }
        if self.pacer.check_now() {
            self.budget_exhausted = true;
        }
        self.col.frontier(collected.len());
        self.col.span(span);
        self.phase_finished("III distribute", smin_cost);
        phase_stats.push(crate::opt::PhaseStat {
            phase: "III distribute",
            best_cost: smin_cost,
            visited_states: self.visited_states,
        });

        // Phase IV (lines 29-35): Phase I again on the collected states.
        // States are revisited cheapest-first and the pass is bounded to
        // the most promising ones, so the swap re-optimization budget goes
        // to candidates that can actually beat S_MIN.
        const PHASE4_CAP: usize = 6;
        self.phase_started("IV swaps");
        let span = Span::start("IV swaps");
        let model = self.model;
        let costs: Vec<Result<f64>> = self.threads.map(&collected, |s| state_total(model, s));
        let mut ranked: Vec<(f64, &Workflow)> = costs
            .into_iter()
            .zip(&collected)
            .map(|(c, s)| Ok((c?, s)))
            .collect::<Result<_>>()?;
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
        let pool = ranked.len().min(PHASE4_CAP);
        for (_, si) in ranked.into_iter().take(PHASE4_CAP) {
            if self.out_of_budget() {
                break;
            }
            let cand = self.phase_swaps(EvalState::full(si.clone(), self.model)?)?;
            self.record_eval(cand.fp, cand.via_delta());
            if cand.total < smin_cost {
                smin = cand.wf;
                smin_cost = cand.total;
            }
        }

        if self.pacer.check_now() {
            self.budget_exhausted = true;
        }
        self.col.frontier(pool);
        self.col.span(span);
        self.phase_finished("IV swaps", smin_cost);
        phase_stats.push(crate::opt::PhaseStat {
            phase: "IV swaps",
            best_cost: smin_cost,
            visited_states: self.visited_states,
        });

        // Post-processing (line 36): split everything that was merged.
        if !merge_constraints.is_empty() {
            smin = crate::transition::split_all(&smin)
                .map_err(|e| CoreError::Schema(format!("post-split failed: {e}")))?;
            smin_cost = state_total(self.model, &smin)?;
        }

        self.col.worker_batches(self.threads.batch_counts());
        self.sink.event(TraceEvent::Finished {
            algorithm: self.algorithm(),
            best_cost: smin_cost,
            visited: self.visited_states,
            budget_exhausted: self.budget_exhausted,
        });
        Ok(SearchOutcome {
            best: smin,
            best_cost: smin_cost,
            initial_cost,
            visited_states: self.visited_states,
            elapsed: self.started.elapsed(),
            budget_exhausted: self.budget_exhausted,
            phase_stats,
            stats: self.col.finish(),
        })
    }

    fn phase_started(&mut self, phase: &'static str) {
        self.sink.event(TraceEvent::PhaseStarted {
            algorithm: self.algorithm(),
            phase,
        });
    }

    fn phase_finished(&mut self, phase: &'static str, best_cost: f64) {
        self.sink.event(TraceEvent::PhaseFinished {
            algorithm: self.algorithm(),
            phase,
            best_cost,
            visited: self.visited_states,
        });
    }

    /// Phase I / Phase IV: optimize the swap order inside each local group
    /// (Heuristic 4 — divide and conquer), threading the best state from
    /// group to group. Exhaustive per-group exploration for HS, hill
    /// climbing for HS-Greedy. The state travels as an [`EvalState`], so
    /// every candidate swap is delta-priced against its parent.
    fn phase_swaps(&mut self, s0: EvalState) -> Result<EvalState> {
        let mut current = s0;
        let groups = current.wf.local_groups()?;
        // Size the per-group exploration so Phase I takes at most ~1/6 of
        // the state budget even when every group is explored to its cap.
        // The upper clamp covers a 6-activity group (6! = 720) in full;
        // longer groups rely on the hill-climb seed plus best-first
        // refinement, which in practice reaches the per-group optimum far
        // earlier than full enumeration would.
        self.group_cap = (self.budget.max_states / (6 * groups.len().max(1))).clamp(120, 720);
        for group in groups {
            if self.out_of_budget() {
                break;
            }
            let members: BTreeSet<NodeId> = group.iter().copied().collect();
            current = if self.greedy {
                self.swap_greedy_sweep(current, &members)?
            } else {
                self.swap_exhaustive(current, &members)?
            };
        }
        Ok(current)
    }

    /// Orderings of one local group reachable by legal adjacent swaps,
    /// explored best-first (cheapest state expanded next) and capped per
    /// group so one long chain of freely-commuting activities cannot eat
    /// the whole budget before the Factorize/Distribute phases run. Swap
    /// preserves node ids, so group membership is stable across the
    /// exploration.
    fn swap_exhaustive(
        &mut self,
        state: EvalState,
        members: &BTreeSet<NodeId>,
    ) -> Result<EvalState> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// Ordered (cost, state index) key for the best-first heap; the
        /// index both breaks ties deterministically and addresses the
        /// state side-table (Workflow itself has no Ord).
        #[derive(PartialEq)]
        struct Key(f64, usize);
        impl Eq for Key {}
        impl PartialOrd for Key {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Key {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
            }
        }

        let cap = self.group_cap;
        // Hill-climb first: a cheap local optimum that the best-first
        // refinement can only improve on — under any truncation HS is at
        // least as good per group as HS-Greedy.
        let climbed = self.swap_hill_climb(&state, members)?;
        let climbed_cost = climbed.total;
        let start_cost = state.total;
        self.record_eval(state.fp, state.via_delta());
        self.record_eval(climbed.fp, climbed.via_delta());
        let (mut best, mut best_cost) = if climbed_cost <= start_cost {
            (climbed.clone(), climbed_cost)
        } else {
            (state.clone(), start_cost)
        };
        let mut seen: HashSet<u128> = HashSet::new();
        seen.insert(state.fp);
        seen.insert(climbed.fp);
        let mut states: Vec<EvalState> = vec![state, climbed];
        let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
        heap.push(Reverse(Key(start_cost, 0)));
        heap.push(Reverse(Key(climbed_cost, 1)));
        let mut expanded = 0usize;
        while let Some(Reverse(Key(_, idx))) = heap.pop() {
            if expanded >= cap || self.out_of_budget() {
                break;
            }
            let s = states[idx].clone();
            expanded += 1;
            self.col.expanded(s.fp);
            // Apply and delta-price this state's group swaps on the worker
            // pool; dedup and the heap pushes stay in enumeration order.
            let moves = group_swaps(&s.wf, members)?;
            let model = self.model;
            let evals: Vec<DeltaEval> = self.threads.map(&moves, |sw| {
                let mut rej = Rejections::default();
                let out = s.step_transition(sw, model, &mut rej);
                (out, rej)
            });
            for (_, rej) in &evals {
                self.col.rejections(rej);
            }
            for (eval, _) in evals {
                // Per-item stop: without it one speculative batch could
                // admit states past `max_states` before the heap loop's
                // boundary check ran again.
                if self.out_of_budget() {
                    break;
                }
                let Some(res) = eval else { continue };
                let next = res?;
                self.record_eval(next.fp, next.via_delta());
                if !seen.insert(next.fp) {
                    continue;
                }
                if next.total < best_cost {
                    best_cost = next.total;
                    best = next.clone();
                }
                heap.push(Reverse(Key(next.total, states.len())));
                states.push(next);
            }
        }
        Ok(best)
    }

    /// HS's inner hill climb (used to seed the best-first exploration):
    /// repeatedly take the best strictly-improving swap in the group; stop
    /// at a local optimum.
    fn swap_hill_climb(
        &mut self,
        state: &EvalState,
        members: &BTreeSet<NodeId>,
    ) -> Result<EvalState> {
        let mut current = state.clone();
        self.record_eval(current.fp, current.via_delta());
        loop {
            if self.out_of_budget() {
                break;
            }
            self.col.expanded(current.fp);
            // Evaluate every candidate swap of this climb step in
            // parallel; the best-improving pick below scans in enumeration
            // order, so ties resolve identically for any thread count.
            let moves = group_swaps(&current.wf, members)?;
            let model = self.model;
            let cur = &current;
            let evals: Vec<DeltaEval> = self.threads.map(&moves, |sw| {
                let mut rej = Rejections::default();
                let out = cur.step_transition(sw, model, &mut rej);
                (out, rej)
            });
            for (_, rej) in &evals {
                self.col.rejections(rej);
            }
            let mut improved: Option<EvalState> = None;
            for (eval, _) in evals {
                // Per-item stop, as in the best-first and greedy loops.
                if self.out_of_budget() {
                    break;
                }
                let Some(res) = eval else { continue };
                let next = res?;
                self.record_eval(next.fp, next.via_delta());
                if next.total < current.total
                    && improved
                        .as_ref()
                        .map(|b| next.total < b.total)
                        .unwrap_or(true)
                {
                    improved = Some(next);
                }
            }
            match improved {
                Some(next) => current = next,
                None => break,
            }
        }
        Ok(current)
    }

    /// HS-Greedy's Phase I/IV: one sweep over the group's adjacent pairs,
    /// taking a swap whenever it immediately improves the cost ("HS swaps
    /// only those that lead to a state with less cost", §4.2). A single
    /// pass moves each activity at most a step or two — long local groups
    /// stay under-optimized, which is exactly why the paper reports
    /// HS-Greedy degrading on large workflows.
    fn swap_greedy_sweep(
        &mut self,
        state: EvalState,
        members: &BTreeSet<NodeId>,
    ) -> Result<EvalState> {
        let mut current = state;
        self.record_eval(current.fp, current.via_delta());
        // The group's pair list is taken up front, as in Fig. 7; a pair
        // consumed by an earlier swap may no longer be adjacent, in which
        // case `apply` refuses and the sweep moves on.
        //
        // The sweep itself is sequential by definition (each accepted swap
        // changes the state the next pair is judged against), so the
        // workers evaluate the remaining pairs *speculatively* against the
        // current state; the coordinator consumes them in order up to the
        // first acceptance and throws the stale tail away, which makes the
        // accepted swaps — and the budget accounting — identical to a
        // sequential sweep for any thread count.
        let moves = group_swaps(&current.wf, members)?;
        let mut start = 0;
        while start < moves.len() {
            self.col.expanded(current.fp);
            let model = self.model;
            let cur = &current;
            let evals: Vec<DeltaEval> = self.threads.map(&moves[start..], |sw| {
                let mut rej = Rejections::default();
                let out = cur.step_transition(sw, model, &mut rej);
                (out, rej)
            });
            // Count rejections across the whole speculative batch — the
            // workers evaluated every remaining pair, including the stale
            // tail the acceptance below throws away.
            for (_, rej) in &evals {
                self.col.rejections(rej);
            }
            let mut advance: Option<(EvalState, usize)> = None;
            for (off, (eval, _)) in evals.into_iter().enumerate() {
                if self.out_of_budget() {
                    break;
                }
                let Some(res) = eval else { continue };
                let next = res?;
                self.record_eval(next.fp, next.via_delta());
                if next.total < current.total {
                    advance = Some((next, start + off + 1));
                    break;
                }
            }
            match advance {
                Some((next, s)) => {
                    current = next;
                    start = s;
                }
                None => break,
            }
        }
        Ok(current)
    }
}

/// Adjacent swap candidates entirely inside one local group.
fn group_swaps(wf: &Workflow, members: &BTreeSet<NodeId>) -> Result<Vec<Swap>> {
    let g = wf.graph();
    let mut out = Vec::new();
    for &a in members {
        if !g.contains(a) {
            continue;
        }
        let consumers = g.consumers(a)?;
        if consumers.len() == 1 && members.contains(&consumers[0]) {
            out.push(Swap::new(a, consumers[0]));
        }
    }
    Ok(out)
}

/// `ShiftFrw(a, a_b)` (Fig. 7): push `a` forward through its local group by
/// successive swaps until it is the direct provider of `a_b`. `None` if
/// some swap on the way is not applicable.
pub fn shift_frw(wf: &Workflow, a: NodeId, ab: NodeId) -> Option<Workflow> {
    shift_frw_counted(wf, a, ab, &mut Rejections::default())
}

/// [`shift_frw`], with every refused swap on the way counted on `rej` by
/// its rejection rule.
fn shift_frw_counted(
    wf: &Workflow,
    a: NodeId,
    ab: NodeId,
    rej: &mut Rejections,
) -> Option<Workflow> {
    let mut cur = wf.clone();
    for _ in 0..cur.activity_count() + 1 {
        let consumers = cur.graph().consumers(a).ok()?;
        if consumers.len() != 1 {
            return None;
        }
        let c = consumers[0];
        if c == ab {
            return Some(cur);
        }
        match Swap::new(a, c).apply(&cur) {
            Ok(next) => cur = next,
            Err(e) => {
                rej.record(&e);
                return None;
            }
        }
    }
    None
}

/// `ShiftBkw(a, a_b)` (Fig. 7): pull `a` backward through its local group
/// until its provider is `a_b`. `None` if blocked.
pub fn shift_bkw(wf: &Workflow, a: NodeId, ab: NodeId) -> Option<Workflow> {
    shift_bkw_counted(wf, a, ab, &mut Rejections::default())
}

/// [`shift_bkw`], with every refused swap on the way counted on `rej`.
fn shift_bkw_counted(
    wf: &Workflow,
    a: NodeId,
    ab: NodeId,
    rej: &mut Rejections,
) -> Option<Workflow> {
    let mut cur = wf.clone();
    for _ in 0..cur.activity_count() + 1 {
        let p = cur.graph().provider(a, 0).ok()??;
        if p == ab {
            return Some(cur);
        }
        match Swap::new(p, a).apply(&cur) {
            Ok(next) => cur = next,
            Err(e) => {
                rej.record(&e);
                return None;
            }
        }
    }
    None
}

/// A node reference hardened against arena slot reuse: the node id plus the
/// activity id that slot held when the anchor was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Anchor {
    node: NodeId,
    activity: ActivityId,
}

impl Anchor {
    fn of(wf: &Workflow, node: NodeId) -> Result<Anchor> {
        Ok(Anchor {
            node,
            activity: wf.graph().activity(node)?.id.clone(),
        })
    }

    /// Find this activity in a (possibly rewired) state: fast path through
    /// the remembered slot, slow path by activity-id scan.
    fn locate(&self, wf: &Workflow) -> Option<NodeId> {
        if let Ok(a) = wf.graph().activity(self.node) {
            if a.id == self.activity {
                return Some(self.node);
            }
        }
        wf.graph()
            .iter()
            .find(|(_, n)| {
                n.as_activity()
                    .map(|a| a.id == self.activity)
                    .unwrap_or(false)
            })
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::RowCountModel;
    use crate::opt::ExhaustiveSearch;
    use crate::postcond::equivalent;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{BinaryOp, UnaryOp};
    use crate::workflow::WorkflowBuilder;

    /// SK before a selective σ: optimal plan swaps them.
    fn swap_win() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 1000.0);
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), s);
        let f = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 10)).with_selectivity(0.1),
            sk,
        );
        b.target("T", Schema::of(["sk", "v"]), f);
        b.build().unwrap()
    }

    /// Converging flows with a distributable filter after the union.
    fn dis_win() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 512.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 512.0);
        let u = b.binary("U", BinaryOp::Union, s1, s2);
        let sel = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.25),
            u,
        );
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), sel);
        b.target("T", Schema::of(["sk", "v"]), sk);
        b.build().unwrap()
    }

    #[test]
    fn hs_matches_es_on_small_workflows() {
        // Table 1, "small" row: HS quality = 100 % of the ES optimum.
        let model = RowCountModel::default();
        for wf in [swap_win(), dis_win()] {
            let es = ExhaustiveSearch::new().run(&wf, &model).unwrap();
            let hs = HeuristicSearch::new().run(&wf, &model).unwrap();
            assert!(
                (hs.best_cost - es.best_cost).abs() < 1e-6,
                "HS {} vs ES {}",
                hs.best_cost,
                es.best_cost
            );
            assert!(equivalent(&wf, &hs.best).unwrap());
        }
    }

    #[test]
    fn hs_visits_fewer_states_than_es() {
        let model = RowCountModel::default();
        let wf = dis_win();
        let es = ExhaustiveSearch::new().run(&wf, &model).unwrap();
        let hs = HeuristicSearch::new().run(&wf, &model).unwrap();
        assert!(
            hs.visited_states <= es.visited_states,
            "HS {} vs ES {}",
            hs.visited_states,
            es.visited_states
        );
    }

    #[test]
    fn greedy_is_no_better_than_hs() {
        let model = RowCountModel::default();
        let wf = dis_win();
        let hs = HeuristicSearch::new().run(&wf, &model).unwrap();
        let hg = HsGreedy::new().run(&wf, &model).unwrap();
        assert!(hg.best_cost >= hs.best_cost - 1e-9);
        assert!(equivalent(&wf, &hg.best).unwrap());
    }

    #[test]
    fn hs_distributes_the_selective_filter() {
        let model = RowCountModel::default();
        let wf = dis_win();
        let hs = HeuristicSearch::new().run(&wf, &model).unwrap();
        assert!(hs.best_cost < hs.initial_cost);
        // The best state has σ clones on both branches.
        let sig = hs.best.signature().to_string();
        assert!(sig.contains('\''), "expected distributed clones in {sig}");
    }

    #[test]
    fn merge_constraint_keeps_pair_together_and_splits_after() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 100.0);
        let add = b.unary(
            "ADD",
            UnaryOp::AddField {
                attr: "src".into(),
                value: crate::scalar::Scalar::from("S"),
            },
            s,
        );
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), add);
        let f = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.1),
            sk,
        );
        b.target("T", Schema::of(["src", "sk", "v"]), f);
        let wf = b.build().unwrap();
        let model = RowCountModel::default();
        let hs = HeuristicSearch::new()
            .with_merge_constraint(add, sk)
            .run(&wf, &model)
            .unwrap();
        // Result is fully split again…
        assert!(hs.best.activities().unwrap().iter().all(|&a| {
            !matches!(
                hs.best.graph().activity(a).unwrap().op,
                crate::activity::Op::Merged(_)
            )
        }));
        // …equivalent, and the σ was still pushed ahead of the package.
        assert!(equivalent(&wf, &hs.best).unwrap());
        assert!(hs.best_cost < hs.initial_cost);
        let first = hs.best.activities().unwrap()[0];
        assert_eq!(hs.best.graph().activity(first).unwrap().label, "σ");
    }

    #[test]
    fn shift_frw_and_bkw_roundtrip() {
        let wf = dis_win();
        // σ is the consumer of U; shifting it forward to… itself is trivial;
        // exercise bkw: move σ back to be adjacent to U (already adjacent).
        let (sel, u) = {
            let acts = wf.activities().unwrap();
            let sel = acts
                .iter()
                .copied()
                .find(|&a| wf.graph().activity(a).unwrap().label == "σ")
                .unwrap();
            let u = acts
                .iter()
                .copied()
                .find(|&a| wf.graph().activity(a).unwrap().label == "U")
                .unwrap();
            (sel, u)
        };
        let back = shift_bkw(&wf, sel, u).unwrap();
        assert_eq!(back.signature(), wf.signature());
        // SK can also be shifted back to the union (swapping past σ).
        let sk = wf
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| wf.graph().activity(a).unwrap().label == "SK")
            .unwrap();
        let shifted = shift_bkw(&wf, sk, u).unwrap();
        assert_ne!(shifted.signature(), wf.signature());
        assert!(equivalent(&wf, &shifted).unwrap());
    }

    #[test]
    fn budget_is_respected() {
        let model = RowCountModel::default();
        let wf = dis_win();
        let hs = HeuristicSearch::with_budget(SearchBudget::states(2))
            .run(&wf, &model)
            .unwrap();
        assert!(hs.budget_exhausted);
        // Still returns a valid, equivalent state.
        assert!(equivalent(&wf, &hs.best).unwrap());
    }

    #[test]
    fn phase_stats_trace_the_fig7_structure() {
        let model = RowCountModel::default();
        let wf = dis_win();
        let out = HeuristicSearch::new().run(&wf, &model).unwrap();
        let phases: Vec<&str> = out.phase_stats.iter().map(|p| p.phase).collect();
        assert_eq!(
            phases,
            vec!["I swaps", "II factorize", "III distribute", "IV swaps"]
        );
        // Costs are monotone non-increasing across phases…
        for w in out.phase_stats.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost + 1e-9);
        }
        // …and the last snapshot matches the outcome.
        assert!((out.phase_stats.last().unwrap().best_cost - out.best_cost).abs() < 1e-9);
        // ES reports no phases.
        let es = crate::opt::ExhaustiveSearch::new()
            .run(&wf, &model)
            .unwrap();
        assert!(es.phase_stats.is_empty());
    }

    #[test]
    fn hs_is_deterministic() {
        let model = RowCountModel::default();
        let wf = dis_win();
        let a = HeuristicSearch::new().run(&wf, &model).unwrap();
        let b = HeuristicSearch::new().run(&wf, &model).unwrap();
        assert_eq!(a.best.signature(), b.best.signature());
    }
}
