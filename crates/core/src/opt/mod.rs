//! State-space search algorithms (§4): Exhaustive Search (ES), Heuristic
//! Search (HS, Fig. 7), its greedy variant (HS-Greedy), and bounded-width
//! Beam search ([`BeamSearch`] — between HS and ES on the quality/time
//! trade-off).
//!
//! All four share the same skeleton: states are [`Workflow`]s identified by
//! their [`Signature`]; successor states are produced by the applicable
//! [`Move`]s; a [`crate::cost::CostModel`] ranks them; the state cost is
//! maintained **semi-incrementally** (§4.1) — only the path from the
//! activities a transition touched towards the targets is re-priced.

pub mod adaptive;
mod beam;
mod eval;
mod exhaustive;
mod heuristic;
mod memo;
mod parallel;
pub mod visited;

pub use adaptive::{
    run_adaptive, run_adaptive_traced, AdaptiveConfig, AdaptiveReport, Calibration,
    MemoryCalibration, Observation, PlanObserver, RoundReport,
};
pub use beam::BeamSearch;
pub(crate) use eval::{state_total, EvalState};
pub use exhaustive::ExhaustiveSearch;
pub use heuristic::{shift_bkw, shift_frw, HeuristicSearch, HsGreedy};
pub use memo::MoveMemo;
pub(crate) use parallel::Threads;
pub use visited::{Admit, ShardedVisited};

use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

use crate::cost::CostModel;
use crate::error::Result;
use crate::graph::NodeId;
use crate::trace::{NoopSink, SearchStats, TraceSink};
use crate::transition::{Distribute, Factorize, Swap, Transition, TransitionError};
use crate::workflow::Workflow;

/// One applicable transition, as enumerated by [`enumerate_moves`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// A swap of two adjacent unary activities.
    Swap(Swap),
    /// A factorization of homologous providers of a binary activity.
    Factorize(Factorize),
    /// A distribution of the consumer of a binary activity.
    Distribute(Distribute),
}

impl Move {
    /// Apply the underlying transition.
    pub fn apply(&self, wf: &Workflow) -> Result<Workflow, TransitionError> {
        match self {
            Move::Swap(t) => t.apply(wf),
            Move::Factorize(t) => t.apply(wf),
            Move::Distribute(t) => t.apply(wf),
        }
    }

    /// Nodes the transition touches in the pre-state (for incremental
    /// costing).
    pub fn affected(&self, wf: &Workflow) -> Vec<NodeId> {
        match self {
            Move::Swap(t) => t.affected(wf),
            Move::Factorize(t) => t.affected(wf),
            Move::Distribute(t) => t.affected(wf),
        }
    }

    /// Paper-style rendering.
    pub fn describe(&self, wf: &Workflow) -> String {
        match self {
            Move::Swap(t) => t.describe(wf),
            Move::Factorize(t) => t.describe(wf),
            Move::Distribute(t) => t.describe(wf),
        }
    }
}

/// Enumerate every transition that *may* apply to a state (cheap structural
/// pre-filter; `apply` still re-checks in full):
///
/// * `SWA` for each provider/consumer pair of unary activities,
/// * `FAC` for each homologous pair directly feeding a binary activity,
/// * `DIS` for each binary activity whose single consumer is a row-wise
///   unary activity.
pub fn enumerate_moves(wf: &Workflow) -> Result<Vec<Move>> {
    let g = wf.graph();
    let mut moves = Vec::new();
    for &a in &wf.activities()? {
        let act = g.activity(a)?;
        if act.is_unary() {
            // SWA with the (single) unary consumer.
            let consumers = g.consumers(a)?;
            if consumers.len() == 1 {
                let c = consumers[0];
                if g.activity(c).map(|x| x.is_unary()).unwrap_or(false) {
                    moves.push(Move::Swap(Swap::new(a, c)));
                }
            }
        } else {
            // FAC over direct unary providers.
            let providers = g.providers(a)?;
            if let (Some(Some(p1)), Some(Some(p2))) = (providers.first(), providers.get(1)) {
                let both_unary = g.activity(*p1).map(|x| x.is_unary()).unwrap_or(false)
                    && g.activity(*p2).map(|x| x.is_unary()).unwrap_or(false);
                if both_unary && p1 != p2 && wf.are_homologous(*p1, *p2).unwrap_or(false) {
                    moves.push(Move::Factorize(Factorize::new(a, *p1, *p2)));
                }
            }
            // DIS of the single unary consumer.
            let consumers = g.consumers(a)?;
            if consumers.len() == 1 {
                let c = consumers[0];
                if g.activity(c)
                    .map(|x| x.is_unary() && x.is_row_wise())
                    .unwrap_or(false)
                {
                    moves.push(Move::Distribute(Distribute::new(a, c)));
                }
            }
        }
    }
    Ok(moves)
}

/// Resource bounds for a search run. The paper let ES run "up to 40 hours";
/// these are the laptop-scale equivalent of that threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchBudget {
    /// Maximum number of distinct states to generate and cost.
    pub max_states: usize,
    /// Wall-clock limit.
    pub max_time: Duration,
    /// Worker threads for frontier/candidate evaluation. `None` uses
    /// [`std::thread::available_parallelism`]; `Some(1)` forces the
    /// sequential path. Any setting returns the same `best_cost` and
    /// best-state signature — parallelism only changes wall-clock time.
    pub parallelism: Option<NonZeroUsize>,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_states: 200_000,
            max_time: Duration::from_secs(60),
            parallelism: None,
        }
    }
}

impl SearchBudget {
    /// A budget bounded only by state count.
    pub fn states(max_states: usize) -> Self {
        SearchBudget {
            max_states,
            max_time: Duration::from_secs(u64::MAX / 4),
            parallelism: None,
        }
    }

    /// Set the worker-thread count. `1` forces the sequential path, and so
    /// does `0` — it is clamped rather than treated as "auto", because
    /// `NonZeroUsize::new(0)` is `None` and would silently re-enable the
    /// all-machine-cores auto-detect arm callers asked to turn off.
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = NonZeroUsize::new(n.max(1));
        self
    }

    /// Set the wall-clock cap. Servers use this to clamp client-supplied
    /// time budgets to a process-wide ceiling.
    pub fn with_max_time(mut self, max_time: Duration) -> Self {
        self.max_time = max_time;
        self
    }

    /// Resolved worker count: the explicit knob, or the machine's
    /// available parallelism.
    pub fn threads(&self) -> usize {
        match self.parallelism {
            Some(n) => n.get(),
            None => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
        }
    }

    /// Is the budget spent?
    pub fn exhausted(&self, visited: usize, started: Instant) -> bool {
        visited >= self.max_states || started.elapsed() >= self.max_time
    }
}

/// Throttled wall-clock watchdog. `Instant::now()` is a syscall on most
/// platforms and the searches used to pay for it once per generated state;
/// the pacer samples the clock only every [`Pacer::STRIDE`] ticks and
/// remembers a deadline hit, so the budget's time limit costs ~1/1024th of
/// what it did while still stopping runs within a stride of the deadline.
#[derive(Debug)]
pub(crate) struct Pacer {
    started: Instant,
    max_time: Duration,
    ticks: u32,
    time_up: bool,
}

impl Pacer {
    /// Clock-sampling stride, in ticks.
    const STRIDE: u32 = 1024;

    pub(crate) fn new(started: Instant, budget: &SearchBudget) -> Self {
        Pacer {
            started,
            max_time: budget.max_time,
            ticks: 0,
            // Sample the clock once up front: a zero (or already-spent)
            // time budget must stop the run within its first few states,
            // not a full stride of work past the deadline.
            time_up: started.elapsed() >= budget.max_time,
        }
    }

    /// Count one unit of work (a generated state); returns `true` once the
    /// wall-clock limit has been observed.
    pub(crate) fn tick(&mut self) -> bool {
        self.ticks = self.ticks.wrapping_add(1);
        if !self.time_up && self.ticks.is_multiple_of(Self::STRIDE) {
            self.time_up = self.started.elapsed() >= self.max_time;
        }
        self.time_up
    }

    /// Sample the clock now, regardless of the stride. Used at coarse
    /// boundaries (per BFS generation, per HS phase) where one syscall is
    /// negligible.
    pub(crate) fn check_now(&mut self) -> bool {
        if !self.time_up {
            self.time_up = self.started.elapsed() >= self.max_time;
        }
        self.time_up
    }
}

/// Per-frontier-state expansion result handed back by a generation-
/// synchronous worker (ES/beam): the fresh successors, the rejection
/// deltas, and counts of successors the worker itself pre-filtered as
/// duplicates against the (quiescent) sharded visited set.
#[derive(Debug)]
pub(crate) struct ExpandChunk {
    /// Successors not in the visited set when the worker probed it, in
    /// move-enumeration order.
    pub(crate) fresh: Vec<EvalState>,
    /// Rejection-rule deltas for this state's transition attempts.
    pub(crate) rej: crate::trace::Rejections,
    /// Duplicates dropped worker-side after delta repricing.
    pub(crate) dedup_delta: u64,
    /// Duplicates dropped worker-side after full pricing.
    pub(crate) dedup_full: u64,
}

/// Expand one BFS frontier across the worker pool. Workers enumerate moves
/// through the shared [`MoveMemo`], price each successor incrementally, and
/// drop successors already in `visited` without funneling them through the
/// coordinator — the set is quiescent while workers run (only the
/// coordinator inserts, between rounds), so the pre-filter's outcome is
/// deterministic at any thread count. Results come back in (frontier index,
/// move index) order.
pub(crate) fn expand_frontier(
    frontier: &[EvalState],
    threads: &Threads,
    memo: &MoveMemo,
    model: &dyn CostModel,
    visited: &ShardedVisited,
) -> Vec<Result<ExpandChunk>> {
    threads.map(frontier, |state| {
        let mut chunk = ExpandChunk {
            fresh: Vec::new(),
            rej: crate::trace::Rejections::default(),
            dedup_delta: 0,
            dedup_full: 0,
        };
        for mv in memo.moves(&state.wf)? {
            let Some(next) = state.step_move(&mv, model, &mut chunk.rej) else {
                continue;
            };
            let next = next?;
            if visited.contains(next.fp) {
                if next.via_delta() {
                    chunk.dedup_delta += 1;
                } else {
                    chunk.dedup_full += 1;
                }
            } else {
                chunk.fresh.push(next);
            }
        }
        Ok(chunk)
    })
}

/// The result of a search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best state found.
    pub best: Workflow,
    /// Its cost under the model the search ran with.
    pub best_cost: f64,
    /// Cost of the initial state.
    pub initial_cost: f64,
    /// Number of distinct states generated and costed.
    pub visited_states: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// `true` if the run stopped because the budget ran out (ES on medium
    /// and large workflows — the asterisked cells of Tables 1 and 2).
    pub budget_exhausted: bool,
    /// Per-phase progress for phase-structured algorithms (HS, HS-Greedy):
    /// the best cost and cumulative visited-state count after each of the
    /// Fig. 7 phases. Empty for ES.
    pub phase_stats: Vec<PhaseStat>,
    /// Uniform search telemetry: state accounting, rejection-rule counters,
    /// frontier sizes, evaluation-path split, memo effectiveness, phase
    /// timing. The same schema for all three algorithms; see
    /// [`crate::trace`] for which fields are deterministic.
    pub stats: SearchStats,
}

/// Snapshot of a search after one of its phases (Fig. 7 structure).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase name: `"I swaps"`, `"II factorize"`, `"III distribute"`,
    /// `"IV swaps"`.
    pub phase: &'static str,
    /// Best state cost when the phase ended.
    pub best_cost: f64,
    /// Distinct states visited so far (cumulative).
    pub visited_states: usize,
}

impl SearchOutcome {
    /// Improvement over the initial state, in percent — the measure of
    /// Table 2.
    pub fn improvement_pct(&self) -> f64 {
        if self.initial_cost <= 0.0 {
            0.0
        } else {
            100.0 * (self.initial_cost - self.best_cost) / self.initial_cost
        }
    }
}

/// A search algorithm over workflow states.
pub trait Optimizer {
    /// Algorithm name as used in the paper's tables.
    fn name(&self) -> &str;

    /// Optimize `wf` under `model` with the default (no-op) trace sink.
    /// Counters on [`SearchOutcome::stats`] are collected either way — they
    /// are plain integer adds — but no events are emitted.
    fn run(&self, wf: &Workflow, model: &dyn CostModel) -> Result<SearchOutcome> {
        self.run_traced(wf, model, &NoopSink)
    }

    /// Optimize `wf` under `model`, emitting coarse-grained
    /// [`crate::trace::TraceEvent`]s (per phase / BFS generation, never per
    /// state) to `sink`.
    fn run_traced(
        &self,
        wf: &Workflow,
        model: &dyn CostModel,
        sink: &dyn TraceSink,
    ) -> Result<SearchOutcome>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::RowCountModel;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{BinaryOp, UnaryOp};
    use crate::workflow::WorkflowBuilder;

    fn sample() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 100.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 100.0);
        let f1 = b.unary("σ1", UnaryOp::filter(Predicate::gt("v", 1)), s1);
        let f2 = b.unary("σ2", UnaryOp::filter(Predicate::gt("v", 1)), s2);
        let u = b.binary("U", BinaryOp::Union, f1, f2);
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), u);
        b.target("T", Schema::of(["sk", "v"]), sk);
        b.build().unwrap()
    }

    #[test]
    fn enumerate_finds_all_three_kinds() {
        let wf = sample();
        let moves = enumerate_moves(&wf).unwrap();
        assert!(
            moves.iter().any(|m| matches!(m, Move::Factorize(_))),
            "{moves:?}"
        );
        assert!(
            moves.iter().any(|m| matches!(m, Move::Distribute(_))),
            "{moves:?}"
        );
        // No adjacent unary pairs here, so no swaps.
        assert!(!moves.iter().any(|m| matches!(m, Move::Swap(_))));
    }

    #[test]
    fn enumerated_moves_apply_cleanly() {
        let wf = sample();
        for m in enumerate_moves(&wf).unwrap() {
            let next = m.apply(&wf).expect("enumerated move must apply");
            assert!(crate::postcond::equivalent(&wf, &next).unwrap());
        }
    }

    #[test]
    fn budget_exhaustion() {
        let b = SearchBudget::states(10);
        let now = Instant::now();
        assert!(!b.exhausted(9, now));
        assert!(b.exhausted(10, now));
    }

    #[test]
    fn zero_parallelism_clamps_to_sequential() {
        // Regression: `NonZeroUsize::new(0)` is `None`, which used to fall
        // through to the all-machine-cores auto-detect arm.
        let b = SearchBudget::default().with_parallelism(0);
        assert_eq!(b.parallelism, NonZeroUsize::new(1));
        assert_eq!(b.threads(), 1);
        assert_eq!(SearchBudget::default().with_parallelism(4).threads(), 4);
    }

    #[test]
    fn pacer_observes_a_zero_time_budget_before_the_first_stride() {
        // Regression: the pacer only sampled the clock every 1024 ticks,
        // so a `Duration::ZERO` budget burned a full stride of states past
        // its deadline.
        let budget = SearchBudget {
            max_time: Duration::ZERO,
            ..SearchBudget::default()
        };
        let mut pacer = Pacer::new(Instant::now(), &budget);
        assert!(pacer.tick(), "first tick must already see the deadline");

        // A generous budget still starts un-expired.
        let mut fresh = Pacer::new(Instant::now(), &SearchBudget::default());
        assert!(!fresh.tick());
    }

    #[test]
    fn all_algorithms_stop_promptly_on_a_zero_time_budget() {
        let wf = sample();
        let model = RowCountModel::default();
        let budget = SearchBudget {
            max_states: 100_000,
            max_time: Duration::ZERO,
            parallelism: NonZeroUsize::new(1),
        };
        let algos: [Box<dyn Optimizer>; 4] = [
            Box::new(ExhaustiveSearch::with_budget(budget)),
            Box::new(BeamSearch::with_budget(budget)),
            Box::new(HeuristicSearch::with_budget(budget)),
            Box::new(HsGreedy::with_budget(budget)),
        ];
        for algo in algos {
            let out = algo.run(&wf, &model).unwrap();
            assert!(out.budget_exhausted, "{} ignored the deadline", algo.name());
            // Within a handful of states, not a 1024-tick stride of them.
            assert!(
                out.visited_states <= 8,
                "{} visited {} states past a zero deadline",
                algo.name(),
                out.visited_states
            );
        }
    }

    #[test]
    fn visited_states_never_overshoot_the_state_budget() {
        let wf = sample();
        let model = RowCountModel::default();
        for max in [1usize, 2, 3, 7, 19] {
            let budget = SearchBudget::states(max).with_parallelism(2);
            let algos: [Box<dyn Optimizer>; 4] = [
                Box::new(ExhaustiveSearch::with_budget(budget)),
                Box::new(BeamSearch::with_budget(budget)),
                Box::new(HeuristicSearch::with_budget(budget)),
                Box::new(HsGreedy::with_budget(budget)),
            ];
            for algo in algos {
                let out = algo.run(&wf, &model).unwrap();
                assert!(
                    out.visited_states <= max,
                    "{} visited {} states under a max_states of {max}",
                    algo.name(),
                    out.visited_states
                );
            }
        }
    }

    #[test]
    fn improvement_pct() {
        let wf = sample();
        let out = SearchOutcome {
            best: wf.clone(),
            best_cost: 30.0,
            initial_cost: 100.0,
            visited_states: 1,
            elapsed: Duration::ZERO,
            budget_exhausted: false,
            phase_stats: Vec::new(),
            stats: SearchStats::new("ES"),
        };
        assert!((out.improvement_pct() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn moves_describe() {
        let wf = sample();
        let moves = enumerate_moves(&wf).unwrap();
        let descriptions: Vec<String> = moves.iter().map(|m| m.describe(&wf)).collect();
        assert!(descriptions.iter().any(|d| d.starts_with("FAC(")));
        let _ = RowCountModel::default();
    }
}
