//! Per-group transition memoization.
//!
//! Move enumeration re-derives, for every generated state, facts that a
//! rewrite elsewhere in the workflow cannot have changed: which adjacent
//! pairs of a local group can swap, and whether a binary's providers are
//! homologous / its consumer row-wise. [`MoveMemo`] caches those verdicts
//! across the states of one search run, keyed by a sub-fingerprint of the
//! local structure, so unchanged groups skip the payload re-scans (the
//! homologous check compares functionality/generated schemata — the
//! expensive part of enumeration).
//!
//! Soundness rests on two §4.1 facts. (1) SWA enumeration is shape-only
//! (unary, single consumer), so a group's swap list is determined by its
//! member *slot chain* alone — whatever activities occupy those slots, the
//! emitted `Swap(slot, slot)` moves are identical. (2) Activity ids are
//! lifelong and an id's operator payload never changes within a run, so
//! payload-dependent verdicts (homologous providers, row-wise consumer)
//! are determined by the participating ids — except for `Merged`
//! activities, whose derived schemata depend on their *position*; binaries
//! touching a merged provider bypass the cache entirely.
//!
//! The cache is shared across worker threads behind an `RwLock`; a raced
//! double-compute inserts the identical value twice, so results stay
//! deterministic for any thread count.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::activity::Op;
use crate::error::Result;
use crate::graph::{Graph, NodeId};
use crate::opt::Move;
use crate::signature::Fp128;
use crate::transition::{Distribute, Factorize, Swap};
use crate::workflow::Workflow;

/// A per-search-run cache of move-enumeration verdicts.
#[derive(Debug, Default)]
pub struct MoveMemo {
    cache: RwLock<HashMap<u128, Vec<Move>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MoveMemo {
    /// An empty cache. One per search run: the id→payload mapping the keys
    /// rely on is only stable within a run.
    pub fn new() -> Self {
        Self::default()
    }

    /// (cache hits, cache misses) so far — bypassed lookups (merged
    /// activities) count as neither.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Memoized equivalent of [`crate::opt::enumerate_moves`]: the same
    /// move *set*, with each local group's swaps emitted at the group
    /// leader's topological position (instead of per member), and each
    /// binary's FAC/DIS at the binary's position. Deterministic for a given
    /// state regardless of cache contents or thread count.
    pub fn moves(&self, wf: &Workflow) -> Result<Vec<Move>> {
        let g = wf.graph();
        let mut out = Vec::new();
        for &a in &wf.activities()? {
            let act = g.activity(a)?;
            if act.is_unary() {
                if group_predecessor(g, a)?.is_some() {
                    continue; // not a group leader; counted with its leader
                }
                let chain = walk_chain(g, a)?;
                let mut key = Fp128::new();
                key.write(b"G");
                for m in &chain {
                    key.write(&m.0.to_le_bytes());
                }
                let key = key.finish();
                if !self.extend_cached(key, &mut out) {
                    let start = out.len();
                    for w in chain.windows(2) {
                        out.push(Move::Swap(Swap::new(w[0], w[1])));
                    }
                    self.insert(key, out[start..].to_vec());
                }
            } else {
                let providers = g.providers(a)?;
                let consumers = g.consumers(a)?;
                let c = (consumers.len() == 1).then(|| consumers[0]);
                let mut cacheable = true;
                let mut key = Fp128::new();
                key.write(b"B");
                key.write(&a.0.to_le_bytes());
                for p in providers.iter().chain(c.map(Some).iter()) {
                    use std::fmt::Write;
                    match p {
                        Some(p) => {
                            key.write(&p.0.to_le_bytes());
                            match g.activity(*p) {
                                Ok(pa) => {
                                    if matches!(pa.op, Op::Merged(_)) {
                                        cacheable = false;
                                    }
                                    let _ = write!(key, ":{};", pa.id);
                                }
                                Err(_) => key.write(b":r;"),
                            }
                        }
                        None => key.write(b"-"),
                    }
                }
                let key = key.finish();
                if cacheable && self.extend_cached(key, &mut out) {
                    continue;
                }
                let start = out.len();
                binary_moves(wf, a, &providers, c, &mut out);
                if cacheable {
                    self.insert(key, out[start..].to_vec());
                }
            }
        }
        Ok(out)
    }

    fn extend_cached(&self, key: u128, out: &mut Vec<Move>) -> bool {
        let map = self.cache.read().expect("memo lock poisoned");
        match map.get(&key) {
            Some(v) => {
                out.extend_from_slice(v);
                self.hits.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    fn insert(&self, key: u128, val: Vec<Move>) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.cache
            .write()
            .expect("memo lock poisoned")
            .insert(key, val);
    }
}

/// FAC/DIS candidates of one binary — the same pre-filter
/// [`crate::opt::enumerate_moves`] applies.
fn binary_moves(
    wf: &Workflow,
    a: NodeId,
    providers: &[Option<NodeId>],
    single_consumer: Option<NodeId>,
    out: &mut Vec<Move>,
) {
    let g = wf.graph();
    if let (Some(Some(p1)), Some(Some(p2))) = (providers.first(), providers.get(1)) {
        let both_unary = g.activity(*p1).map(|x| x.is_unary()).unwrap_or(false)
            && g.activity(*p2).map(|x| x.is_unary()).unwrap_or(false);
        if both_unary && p1 != p2 && wf.are_homologous(*p1, *p2).unwrap_or(false) {
            out.push(Move::Factorize(Factorize::new(a, *p1, *p2)));
        }
    }
    if let Some(c) = single_consumer {
        if g.activity(c)
            .map(|x| x.is_unary() && x.is_row_wise())
            .unwrap_or(false)
        {
            out.push(Move::Distribute(Distribute::new(a, c)));
        }
    }
}

/// The unary group predecessor of `a`, if the pair `(p, a)` would be a SWA
/// candidate — mirrors the enumeration condition exactly.
fn group_predecessor(g: &Graph, a: NodeId) -> Result<Option<NodeId>> {
    if let Some(p) = g.provider(a, 0)? {
        if let Ok(pa) = g.activity(p) {
            if pa.is_unary() && g.consumers(p)?.len() == 1 {
                return Ok(Some(p));
            }
        }
    }
    Ok(None)
}

/// The maximal unary single-consumer chain starting at a group leader.
fn walk_chain(g: &Graph, leader: NodeId) -> Result<Vec<NodeId>> {
    let mut chain = vec![leader];
    let mut cur = leader;
    // Bounded to the arena size as a cycle guard.
    for _ in 0..=g.slot_capacity() {
        let consumers = g.consumers(cur)?;
        if consumers.len() != 1 {
            break;
        }
        let c = consumers[0];
        if !g.activity(c).map(|x| x.is_unary()).unwrap_or(false) {
            break;
        }
        chain.push(c);
        cur = c;
    }
    Ok(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::enumerate_moves;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{BinaryOp, UnaryOp};
    use crate::workflow::WorkflowBuilder;

    fn sample() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 100.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 100.0);
        let f1 = b.unary("σ1", UnaryOp::filter(Predicate::gt("v", 1)), s1);
        let f2 = b.unary("σ2", UnaryOp::filter(Predicate::gt("v", 1)), s2);
        let u = b.binary("U", BinaryOp::Union, f1, f2);
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), u);
        let nn = b.unary("NN", UnaryOp::not_null("v"), sk);
        b.target("T", Schema::of(["sk", "v"]), nn);
        b.build().unwrap()
    }

    #[test]
    fn memo_matches_enumerate_moves_as_a_set() {
        let wf = sample();
        let memo = MoveMemo::new();
        let cached = memo.moves(&wf).unwrap();
        let plain = enumerate_moves(&wf).unwrap();
        let as_set = |ms: &[Move]| {
            let mut v: Vec<String> = ms.iter().map(|m| format!("{m:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(as_set(&cached), as_set(&plain));
    }

    #[test]
    fn second_lookup_hits_every_group() {
        let wf = sample();
        let memo = MoveMemo::new();
        let first = memo.moves(&wf).unwrap();
        let (h0, m0) = memo.stats();
        assert_eq!(h0, 0);
        assert!(m0 > 0);
        let second = memo.moves(&wf).unwrap();
        let (h1, m1) = memo.stats();
        assert_eq!(first, second);
        assert_eq!(m1, m0, "no new misses on an identical state");
        assert_eq!(h1, m0, "every group and binary hit the cache");
    }

    #[test]
    fn rewrites_elsewhere_keep_sibling_groups_cached() {
        let wf = sample();
        let memo = MoveMemo::new();
        let moves = memo.moves(&wf).unwrap();
        let (_, misses_initial) = memo.stats();
        // Apply the first swap (in the SK/NN group after the union); the
        // σ1/σ2 leaders and the union's FAC/DIS context are untouched.
        let swap = moves
            .iter()
            .find(|m| matches!(m, Move::Swap(_)))
            .expect("sample has a swap");
        let next = swap.apply(&wf).unwrap();
        let _ = memo.moves(&next).unwrap();
        let (hits, misses) = memo.stats();
        assert!(
            hits > 0,
            "untouched groups must be served from cache (hits {hits}, misses {misses})"
        );
        // Only the rewritten group (and any binary whose context changed)
        // may miss.
        assert!(misses < misses_initial * 2);
    }
}
