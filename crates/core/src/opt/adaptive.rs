//! Feedback-driven re-optimization (§6 "future work" closed): calibrate →
//! re-optimize → converge.
//!
//! The paper's searches price states with *assigned* selectivities. This
//! module closes the loop against an execution engine: run the chosen
//! plan, harvest each activity's observed pass rate into a [`Calibration`]
//! keyed by u128 activity-identity fingerprints (so an observation made on
//! one state transfers to every sibling state that still contains the
//! activity — clones resolve to their template, factored products pool
//! both originators row-weighted), re-seed the workflow's estimates,
//! re-optimize, and repeat until the chosen plan's structural fingerprint
//! is stable or the round budget runs out.
//!
//! Layering: this module owns the model-side loop — observation and
//! calibration are traits ([`PlanObserver`], [`Calibration`]) so the core
//! crate never depends on the engine. The engine's `Harvester` implements
//! [`PlanObserver`] (cached re-runs over the shared prefix cache); the
//! workload crate's `CalibrationStore` implements [`Calibration`] with
//! JSON persistence and commutative/idempotent merge.
//!
//! Determinism contract (extends the search contract): same initial
//! workflow + same observer behaviour ⇒ byte-identical round trajectory —
//! per-round fingerprints, costs and deterministic counters — at any
//! search worker-thread count. Everything here iterates `BTreeMap`s and
//! topologically-ordered node lists; nothing samples clocks or entropy.

use std::collections::BTreeMap;

use crate::activity::{ActivityId, Op};
use crate::cost::CostModel;
use crate::error::{CoreError, Result};
use crate::opt::{Optimizer, SearchOutcome};
use crate::oracle::predicted_target_rows;
use crate::semantics::UnaryOp;
use crate::signature::Fp128;
use crate::trace::{NoopSink, SearchStats, TraceSink};
use crate::workflow::Workflow;

/// Floor for calibrated selectivities: an activity that passed zero rows
/// on the observed sample still gets a tiny positive estimate (zero would
/// collapse every downstream plan to cost 0 and erase the ordering the
/// search ranks by).
pub const SELECTIVITY_FLOOR: f64 = 1e-4;

/// The u128 identity fingerprint of one activity — the key calibration
/// entries live under. Digests the activity's lifelong id (the paper's
/// stable priorities), *not* its position in any particular state, so the
/// key survives every transition that keeps the activity alive and
/// transfers across sibling states of the same search.
pub fn activity_key(id: &ActivityId) -> u128 {
    activity_key_str(&id.to_string())
}

/// [`activity_key`] over the id's canonical string rendering — the form
/// execution statistics are keyed by.
pub fn activity_key_str(id: &str) -> u128 {
    let mut fp = Fp128::new();
    fp.write(b"cal:");
    fp.write(id.as_bytes());
    fp.finish()
}

/// One calibration entry: observed row traffic through an activity. The
/// ratio is stored as raw tallies, not a float, so merge semantics stay
/// exact and the evidence weight (rows seen) is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CalEntry {
    /// Rows the activity processed (sum over its input ports).
    pub rows_in: u64,
    /// Rows it emitted.
    pub rows_out: u64,
}

impl CalEntry {
    /// An entry from raw tallies.
    pub fn new(rows_in: u64, rows_out: u64) -> CalEntry {
        CalEntry { rows_in, rows_out }
    }

    /// Observed selectivity, clamped to `[SELECTIVITY_FLOOR, 1.0]`.
    /// `None` when the activity processed nothing — a 0/0 ratio carries no
    /// evidence and must fall back to the assigned prior.
    pub fn selectivity(&self) -> Option<f64> {
        if self.rows_in == 0 {
            None
        } else {
            Some((self.rows_out as f64 / self.rows_in as f64).clamp(SELECTIVITY_FLOOR, 1.0))
        }
    }

    /// Max-evidence choice between two observations of the same activity:
    /// the entry that saw more rows wins (an activity observed early in
    /// the pipeline approximates its marginal selectivity better than one
    /// observed after upstream filters thinned the flow). Commutative and
    /// idempotent — the law the store's merge test pins down.
    pub fn prefer(self, other: CalEntry) -> CalEntry {
        if (other.rows_in, other.rows_out) > (self.rows_in, self.rows_out) {
            other
        } else {
            self
        }
    }

    /// Pool two entries as one combined observation (row-weighted — the
    /// combined selectivity of a factored product's two originators).
    pub fn pool(self, other: CalEntry) -> CalEntry {
        CalEntry {
            rows_in: self.rows_in.saturating_add(other.rows_in),
            rows_out: self.rows_out.saturating_add(other.rows_out),
        }
    }
}

/// A calibration source/sink the adaptive loop reads and feeds.
///
/// Contract: `record` must keep the max-evidence entry per key
/// ([`CalEntry::prefer`]), and `record_source` the largest observed
/// cardinality — both so that repeated harvests of the same run are
/// no-ops and merges of independently-built stores commute.
pub trait Calibration {
    /// The entry stored under an activity-identity fingerprint, if any.
    fn entry(&self, key: u128) -> Option<CalEntry>;
    /// Record an observation for `key`. `activity` is the id's canonical
    /// string (kept for diagnostics/serialization, not for lookup).
    fn record(&mut self, key: u128, activity: &str, entry: CalEntry);
    /// Observed cardinality of a source recordset, if any.
    fn source_rows(&self, name: &str) -> Option<u64>;
    /// Record a source recordset's observed cardinality.
    fn record_source(&mut self, name: &str, rows: u64);
}

/// In-memory [`Calibration`] — the loop's default store when persistence
/// is not needed (the workload crate's `CalibrationStore` adds JSON
/// round-tripping and merge on top of the same semantics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryCalibration {
    entries: BTreeMap<u128, (String, CalEntry)>,
    sources: BTreeMap<String, u64>,
}

impl MemoryCalibration {
    /// An empty store.
    pub fn new() -> MemoryCalibration {
        MemoryCalibration::default()
    }

    /// Number of calibrated activities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.sources.is_empty()
    }

    /// Entries in key order: `(key, activity id string, entry)`.
    pub fn entries(&self) -> impl Iterator<Item = (u128, &str, CalEntry)> {
        self.entries.iter().map(|(k, (a, e))| (*k, a.as_str(), *e))
    }
}

impl Calibration for MemoryCalibration {
    fn entry(&self, key: u128) -> Option<CalEntry> {
        self.entries.get(&key).map(|(_, e)| *e)
    }

    fn record(&mut self, key: u128, activity: &str, entry: CalEntry) {
        self.entries
            .entry(key)
            .and_modify(|(_, e)| *e = e.prefer(entry))
            .or_insert_with(|| (activity.to_owned(), entry));
    }

    fn source_rows(&self, name: &str) -> Option<u64> {
        self.sources.get(name).copied()
    }

    fn record_source(&mut self, name: &str, rows: u64) {
        let slot = self.sources.entry(name.to_owned()).or_insert(rows);
        *slot = (*slot).max(rows);
    }
}

/// Everything one plan execution tells the loop: per-activity row traffic
/// (keyed by the activity id's canonical string, exactly like the
/// engine's `ExecStats`), source cardinalities, and the rows each target
/// recordset received.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Observation {
    /// Rows processed per activity id string.
    pub rows_processed: BTreeMap<String, u64>,
    /// Rows emitted per activity id string.
    pub rows_out: BTreeMap<String, u64>,
    /// Rows per source recordset name.
    pub source_rows: BTreeMap<String, u64>,
    /// Rows loaded per target recordset name.
    pub target_rows: BTreeMap<String, u64>,
}

/// Something that can execute a plan and report what it saw — the engine
/// side of the loop. Implementations must be deterministic: observing the
/// same plan twice must return the same numbers (modulo keys legitimately
/// absent because a shared-prefix cache short-circuited their subflow —
/// those entries were recorded identically on the run that populated the
/// cache).
pub trait PlanObserver {
    /// Execute `wf` and report the observed row traffic.
    fn observe(&mut self, wf: &Workflow) -> Result<Observation>;
}

/// Fold one observation into a calibration store.
pub fn harvest(cal: &mut dyn Calibration, obs: &Observation) {
    for (id, &rows_in) in &obs.rows_processed {
        let rows_out = obs.rows_out.get(id).copied().unwrap_or(0);
        cal.record(activity_key_str(id), id, CalEntry { rows_in, rows_out });
    }
    for (name, &rows) in &obs.source_rows {
        cal.record_source(name, rows);
    }
}

/// Is this the kind of activity whose selectivity calibration may
/// overwrite — the cardinality-changing unaries? Functions, surrogate
/// keys and binaries keep their model-assigned semantics.
pub fn is_adjustable(op: &Op) -> bool {
    matches!(
        op,
        Op::Unary(
            UnaryOp::Filter { .. }
                | UnaryOp::NotNull { .. }
                | UnaryOp::PkCheck { .. }
                | UnaryOp::Dedup { .. }
                | UnaryOp::Aggregate { .. }
        )
    )
}

/// Resolve the calibration entry for an activity id: the exact key first,
/// then structurally — a clone inherits its template's entry, a factored
/// product pools both originators (row-weighted), a merged chain pools
/// its parts. Mirrors the oracle's `stat_leaves` resolution, but against
/// the store instead of one run's statistics.
fn resolve_entry(id: &ActivityId, cal: &dyn Calibration) -> Option<CalEntry> {
    if let Some(e) = cal.entry(activity_key(id)) {
        return Some(e);
    }
    match id {
        ActivityId::Base(_) => None,
        ActivityId::Cloned(base, _) => resolve_entry(base, cal),
        ActivityId::Factored(a, b) => match (resolve_entry(a, cal), resolve_entry(b, cal)) {
            (Some(ea), Some(eb)) => Some(ea.pool(eb)),
            (one, other) => one.or(other),
        },
        ActivityId::Merged(parts) => {
            let entries: Vec<CalEntry> =
                parts.iter().filter_map(|p| resolve_entry(p, cal)).collect();
            if entries.is_empty() {
                None
            } else {
                Some(
                    entries
                        .into_iter()
                        .fold(CalEntry::default(), CalEntry::pool),
                )
            }
        }
    }
}

/// The result of re-seeding a workflow's estimates from a store.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The workflow with calibrated selectivities and source cardinalities.
    pub workflow: Workflow,
    /// Adjustable activities whose estimate was replaced by an observation.
    pub seeded: usize,
    /// Adjustable activities with no resolvable calibration — their
    /// assigned prior was kept (the explicit fallback the round report
    /// surfaces as `misses`).
    pub missing: Vec<String>,
}

/// Re-seed `wf`'s estimates from the store: every source whose observed
/// cardinality is known gets it as its row estimate; every adjustable
/// activity whose identity (or its structural ancestors') has been
/// observed gets the observed selectivity, clamped to
/// `[SELECTIVITY_FLOOR, 1.0]`. Unknown identities keep their assigned
/// prior and are reported in [`SeedOutcome::missing`] — never silently
/// treated as pass-throughs.
pub fn seed_workflow(wf: &Workflow, cal: &dyn Calibration) -> Result<SeedOutcome> {
    let mut out = wf.clone();
    let g = wf.graph();
    for src in wf.sources() {
        let name = &g.recordset(src)?.name;
        if let Some(rows) = cal.source_rows(name) {
            out = out.with_row_estimate(src, rows as f64)?;
        }
    }
    let mut seeded = 0usize;
    let mut missing = Vec::new();
    for node in wf.activities()? {
        let act = g.activity(node)?;
        if !is_adjustable(&act.op) {
            continue;
        }
        match resolve_entry(&act.id, cal).and_then(|e| e.selectivity()) {
            Some(s) => {
                out = out.with_selectivity(node, s)?;
                seeded += 1;
            }
            None => missing.push(act.id.to_string()),
        }
    }
    Ok(SeedOutcome {
        workflow: out,
        seeded,
        missing,
    })
}

/// Knobs for the adaptive loop. The search budget (including worker
/// threads) lives on the [`Optimizer`] the loop is given.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Maximum calibrate → re-optimize rounds (≥ 1). Convergence needs at
    /// least two: the fingerprint must repeat.
    pub max_rounds: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig { max_rounds: 4 }
    }
}

impl AdaptiveConfig {
    /// A loop bounded at `max_rounds` rounds.
    pub fn rounds(max_rounds: usize) -> Self {
        AdaptiveConfig { max_rounds }
    }
}

/// One round of the loop: what was chosen, what it cost under that
/// round's calibration, and how far the predictions were from what the
/// engine then observed.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// 1-based round number.
    pub round: usize,
    /// The plan this round chose (and executed).
    pub plan: Workflow,
    /// Structural fingerprint of the chosen plan — the convergence key.
    pub fingerprint: u128,
    /// The chosen plan's signature string.
    pub signature: String,
    /// Chosen plan's cost under this round's calibrated estimates.
    pub calibrated_cost: f64,
    /// Best cost the search itself reported this round.
    pub search_cost: f64,
    /// `true` when the previous round's plan was kept because the fresh
    /// search found nothing cheaper under the new calibration.
    pub kept_incumbent: bool,
    /// Adjustable activities seeded from observations this round.
    pub seeded: usize,
    /// Adjustable activities with no calibration (assigned prior kept).
    pub misses: usize,
    /// Mean relative error of predicted vs observed target cardinalities.
    pub mean_rel_error: f64,
    /// Worst relative error across targets.
    pub max_rel_error: f64,
    /// Telemetry of this round's search run.
    pub stats: SearchStats,
}

/// The loop's typed outcome: the full round trajectory plus convergence.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Search algorithm the rounds ran.
    pub algorithm: String,
    /// Cost of the uncalibrated initial workflow under the model.
    pub initial_cost: f64,
    /// Round trajectory, in execution order.
    pub rounds: Vec<RoundReport>,
    /// Did the chosen plan's fingerprint repeat before the budget ran out?
    pub converged: bool,
}

impl AdaptiveReport {
    /// Rounds actually executed.
    pub fn rounds_used(&self) -> usize {
        self.rounds.len()
    }

    /// The last round, if any ran.
    pub fn final_round(&self) -> Option<&RoundReport> {
        self.rounds.last()
    }

    /// The converged (or best-so-far) plan.
    pub fn final_plan(&self) -> Option<&Workflow> {
        self.rounds.last().map(|r| &r.plan)
    }

    /// All rounds' search telemetry absorbed into one aggregate.
    pub fn stats_total(&self) -> SearchStats {
        let mut total = SearchStats::new("adaptive");
        for r in &self.rounds {
            total.absorb(&r.stats);
        }
        total
    }

    /// Deterministic JSON projection of the trajectory: every field is
    /// byte-identical for any search worker-thread count (costs and
    /// fingerprints by the search determinism contract, counters via
    /// [`SearchStats::counters_json`]).
    pub fn to_json(&self) -> String {
        let mut rounds = String::new();
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                rounds.push_str(",\n");
            }
            let counters = r
                .stats
                .counters_json()
                .lines()
                .collect::<Vec<_>>()
                .join("\n      ");
            rounds.push_str(&format!(
                concat!(
                    "    {{\n",
                    "      \"round\": {},\n",
                    "      \"fingerprint\": \"{:032x}\",\n",
                    "      \"signature\": \"{}\",\n",
                    "      \"calibrated_cost\": {},\n",
                    "      \"search_cost\": {},\n",
                    "      \"kept_incumbent\": {},\n",
                    "      \"seeded\": {},\n",
                    "      \"misses\": {},\n",
                    "      \"mean_rel_error\": {:.6},\n",
                    "      \"max_rel_error\": {:.6},\n",
                    "      \"counters\": {}\n",
                    "    }}"
                ),
                r.round,
                r.fingerprint,
                r.signature,
                r.calibrated_cost,
                r.search_cost,
                r.kept_incumbent,
                r.seeded,
                r.misses,
                r.mean_rel_error,
                r.max_rel_error,
                counters,
            ));
        }
        format!(
            concat!(
                "{{\n",
                "  \"algorithm\": \"{}\",\n",
                "  \"initial_cost\": {},\n",
                "  \"rounds_used\": {},\n",
                "  \"converged\": {},\n",
                "  \"rounds\": [\n{}\n  ]\n",
                "}}\n"
            ),
            self.algorithm,
            self.initial_cost,
            self.rounds_used(),
            self.converged,
            rounds,
        )
    }
}

/// Predicted-vs-observed target error of one round: `(mean, max)` of
/// `|predicted − observed| / max(observed, 1)` across targets.
fn target_error(predicted: &BTreeMap<String, f64>, observed: &BTreeMap<String, u64>) -> (f64, f64) {
    if observed.is_empty() {
        return (0.0, 0.0);
    }
    let (mut sum, mut max) = (0.0f64, 0.0f64);
    for (name, &rows) in observed {
        let pred = predicted.get(name).copied().unwrap_or(0.0);
        let rel = (pred - rows as f64).abs() / (rows as f64).max(1.0);
        sum += rel;
        max = max.max(rel);
    }
    (sum / observed.len() as f64, max)
}

/// Run the adaptive loop with the default (no-op) trace sink.
pub fn run_adaptive(
    wf: &Workflow,
    model: &dyn CostModel,
    optimizer: &dyn Optimizer,
    observer: &mut dyn PlanObserver,
    cal: &mut dyn Calibration,
    cfg: AdaptiveConfig,
) -> Result<AdaptiveReport> {
    run_adaptive_traced(wf, model, optimizer, observer, cal, cfg, &NoopSink)
}

/// The calibrate → re-optimize → converge loop.
///
/// Each round: re-seed the *original* workflow's estimates from the
/// store, search it, keep the previous round's plan if the fresh search
/// found nothing cheaper under the new calibration (the incumbent rule —
/// this makes the calibrated-cost trajectory non-increasing and the
/// fingerprint sequence convergence-friendly), execute the chosen plan,
/// harvest its observed statistics, and stop as soon as the chosen
/// fingerprint repeats.
pub fn run_adaptive_traced(
    wf: &Workflow,
    model: &dyn CostModel,
    optimizer: &dyn Optimizer,
    observer: &mut dyn PlanObserver,
    cal: &mut dyn Calibration,
    cfg: AdaptiveConfig,
    sink: &dyn TraceSink,
) -> Result<AdaptiveReport> {
    if cfg.max_rounds == 0 {
        return Err(CoreError::Observation(
            "adaptive loop needs at least one round".to_owned(),
        ));
    }
    let initial_cost = model.cost(wf)?;
    let mut report = AdaptiveReport {
        algorithm: optimizer.name().to_owned(),
        initial_cost,
        rounds: Vec::new(),
        converged: false,
    };
    let mut incumbent: Option<Workflow> = None;
    let mut prev_fp: Option<u128> = None;

    for round in 1..=cfg.max_rounds {
        let seed = seed_workflow(wf, cal)?;
        let outcome: SearchOutcome = optimizer.run_traced(&seed.workflow, model, sink)?;
        let search_cost = outcome.best_cost;

        // Incumbent rule: re-estimate the previous winner under the new
        // calibration and keep it unless the fresh search strictly beat
        // it. Both sides are priced by the same full-cost path so the
        // comparison is apples-to-apples.
        let candidate_cost = model.cost(&outcome.best)?;
        let (chosen, calibrated_cost, kept) = match &incumbent {
            Some(prev) => {
                let prev_seeded = seed_workflow(prev, cal)?.workflow;
                let prev_cost = model.cost(&prev_seeded)?;
                if prev_cost <= candidate_cost {
                    (prev_seeded, prev_cost, true)
                } else {
                    (outcome.best, candidate_cost, false)
                }
            }
            None => (outcome.best, candidate_cost, false),
        };
        let fingerprint = chosen.fingerprint();

        let obs = observer.observe(&chosen)?;
        let predicted = predicted_target_rows(&chosen, model)?;
        let (mean_rel_error, max_rel_error) = target_error(&predicted, &obs.target_rows);
        harvest(cal, &obs);

        report.rounds.push(RoundReport {
            round,
            fingerprint,
            signature: chosen.signature().as_str().to_owned(),
            plan: chosen.clone(),
            calibrated_cost,
            search_cost,
            kept_incumbent: kept,
            seeded: seed.seeded,
            misses: seed.missing.len(),
            mean_rel_error,
            max_rel_error,
            stats: outcome.stats,
        });

        if prev_fp == Some(fingerprint) {
            report.converged = true;
            return Ok(report);
        }
        prev_fp = Some(fingerprint);
        incumbent = Some(chosen);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::RowCountModel;
    use crate::opt::HeuristicSearch;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::workflow::WorkflowBuilder;

    /// Two filters with inverted estimates over a 100-row source; the
    /// observer replays fixed "ground truth" statistics: σa really passes
    /// 90 %, σb really passes 10 %.
    fn misestimated() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["v"]), 1000.0);
        let fa = b.unary(
            "σa",
            UnaryOp::filter(Predicate::ge("v", 10)).with_selectivity(0.1),
            s,
        );
        let fb = b.unary(
            "σb",
            UnaryOp::filter(Predicate::ge("v", 90)).with_selectivity(0.9),
            fa,
        );
        b.target("T", Schema::of(["v"]), fb);
        b.build().expect("valid workflow")
    }

    /// A synthetic observer that derives row traffic from the plan's own
    /// topology using fixed true selectivities — a stand-in for the
    /// engine that keeps core tests engine-free.
    struct TrueSelectivities {
        source_rows: u64,
        truth: BTreeMap<String, f64>,
    }

    impl PlanObserver for TrueSelectivities {
        fn observe(&mut self, wf: &Workflow) -> Result<Observation> {
            let g = wf.graph();
            let mut obs = Observation::default();
            let mut rows: BTreeMap<crate::graph::NodeId, f64> = BTreeMap::new();
            for src in wf.sources() {
                let name = g.recordset(src)?.name.clone();
                obs.source_rows.insert(name, self.source_rows);
                rows.insert(src, self.source_rows as f64);
            }
            for id in g.topo_order()? {
                if let Ok(act) = g.activity(id) {
                    let mut inp = 0.0;
                    for p in g.providers(id)?.into_iter().flatten() {
                        inp += rows.get(&p).copied().unwrap_or(0.0);
                    }
                    let key = act.id.to_string();
                    // Resolve the *true* pass rate structurally, like the
                    // loop resolves calibration.
                    let sel = self.truth.get(&key).copied().unwrap_or(1.0);
                    let out = inp * sel;
                    obs.rows_processed.insert(key.clone(), inp.round() as u64);
                    obs.rows_out.insert(key, out.round() as u64);
                    rows.insert(id, out);
                } else if let Ok(rs) = g.recordset(id) {
                    if let Some(p) = g.provider(id, 0)? {
                        let r = rows.get(&p).copied().unwrap_or(0.0);
                        rows.insert(id, r);
                        if g.consumers(id)?.is_empty() {
                            obs.target_rows.insert(rs.name.clone(), r.round() as u64);
                        }
                    }
                }
            }
            Ok(obs)
        }
    }

    fn truth() -> TrueSelectivities {
        TrueSelectivities {
            source_rows: 100,
            truth: [("2".to_owned(), 0.9), ("3".to_owned(), 0.1)]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn activity_keys_are_stable_and_distinct() {
        let a = ActivityId::Base(3);
        let b = ActivityId::Base(4);
        assert_eq!(activity_key(&a), activity_key(&a));
        assert_ne!(activity_key(&a), activity_key(&b));
        // The key digests the canonical string, so a clone's key matches
        // neither its template nor other clones.
        let c = ActivityId::Cloned(Box::new(a.clone()), 1);
        assert_ne!(activity_key(&c), activity_key(&a));
        assert_eq!(activity_key(&c), activity_key_str("3'1"));
    }

    #[test]
    fn prefer_is_commutative_and_idempotent() {
        let a = CalEntry {
            rows_in: 100,
            rows_out: 90,
        };
        let b = CalEntry {
            rows_in: 90,
            rows_out: 10,
        };
        assert_eq!(a.prefer(b), b.prefer(a));
        assert_eq!(a.prefer(a), a);
        assert_eq!(a.prefer(b), a, "more evidence wins");
    }

    #[test]
    fn clone_resolves_to_template_entry() {
        let mut cal = MemoryCalibration::new();
        let base = ActivityId::Base(7);
        cal.record(
            activity_key(&base),
            "7",
            CalEntry {
                rows_in: 100,
                rows_out: 25,
            },
        );
        let clone = ActivityId::Cloned(Box::new(base.clone()), 2);
        let e = resolve_entry(&clone, &cal).expect("clone inherits template");
        assert_eq!(e.rows_in, 100);
        // A factored product pools both originators row-weighted.
        let factored = ActivityId::factored(&base, &ActivityId::Base(9));
        cal.record(
            activity_key(&ActivityId::Base(9)),
            "9",
            CalEntry {
                rows_in: 300,
                rows_out: 30,
            },
        );
        let f = resolve_entry(&factored, &cal).expect("factored pools");
        assert_eq!((f.rows_in, f.rows_out), (400, 55));
    }

    #[test]
    fn seed_reports_misses_instead_of_silent_passthrough() {
        let wf = misestimated();
        let cal = MemoryCalibration::new();
        let seed = seed_workflow(&wf, &cal).unwrap();
        assert_eq!(seed.seeded, 0);
        assert_eq!(seed.missing, vec!["2".to_owned(), "3".to_owned()]);
        // Priors untouched.
        assert_eq!(seed.workflow.fingerprint(), wf.fingerprint());
    }

    #[test]
    fn loop_converges_and_reorders_misestimated_filters() {
        let wf = misestimated();
        let model = RowCountModel::default();
        let hs = HeuristicSearch::new();
        let mut obs = truth();
        let mut cal = MemoryCalibration::new();
        let report = run_adaptive(
            &wf,
            &model,
            &hs,
            &mut obs,
            &mut cal,
            AdaptiveConfig::default(),
        )
        .unwrap();
        assert!(report.converged, "{:#?}", report.rounds.len());
        assert!(report.rounds_used() <= 3);
        let last = report.final_round().unwrap();
        // Converged plan puts the truly selective σb (id 3) first.
        let first = last.plan.activities().unwrap()[0];
        assert_eq!(last.plan.graph().activity(first).unwrap().label, "σb");
        // Prediction error collapses once calibration is exact.
        assert!(
            last.max_rel_error < 0.05,
            "late-round error should be small: {}",
            last.max_rel_error
        );
        assert!(report.rounds[0].mean_rel_error > last.mean_rel_error);
    }

    #[test]
    fn one_more_round_is_a_fixpoint() {
        let wf = misestimated();
        let model = RowCountModel::default();
        let hs = HeuristicSearch::new();
        let mut obs = truth();
        let mut cal = MemoryCalibration::new();
        let report = run_adaptive(
            &wf,
            &model,
            &hs,
            &mut obs,
            &mut cal,
            AdaptiveConfig::default(),
        )
        .unwrap();
        assert!(report.converged);
        let final_fp = report.final_round().unwrap().fingerprint;
        // Calibration is exact now: one extra round must choose the same
        // plan again.
        let mut obs2 = truth();
        let again = run_adaptive(
            &wf,
            &model,
            &hs,
            &mut obs2,
            &mut cal,
            AdaptiveConfig::rounds(1),
        )
        .unwrap();
        assert_eq!(again.rounds[0].fingerprint, final_fp);
    }

    #[test]
    fn report_json_is_wellformed_and_carries_rounds() {
        let wf = misestimated();
        let model = RowCountModel::default();
        let hs = HeuristicSearch::new();
        let mut obs = truth();
        let mut cal = MemoryCalibration::new();
        let report = run_adaptive(
            &wf,
            &model,
            &hs,
            &mut obs,
            &mut cal,
            AdaptiveConfig::default(),
        )
        .unwrap();
        let json = report.to_json();
        assert!(json.contains("\"converged\": true"), "{json}");
        assert!(json.contains("\"round\": 1"), "{json}");
        assert!(json.contains("\"fingerprint\""), "{json}");
        assert_eq!(
            json.matches("\"round\":").count(),
            report.rounds_used(),
            "{json}"
        );
        let total = report.stats_total();
        assert!(total.generated > 0);
    }

    #[test]
    fn zero_round_budget_is_an_error() {
        let wf = misestimated();
        let model = RowCountModel::default();
        let hs = HeuristicSearch::new();
        let mut obs = truth();
        let mut cal = MemoryCalibration::new();
        let err = run_adaptive(
            &wf,
            &model,
            &hs,
            &mut obs,
            &mut cal,
            AdaptiveConfig::rounds(0),
        );
        assert!(matches!(err, Err(CoreError::Observation(_))));
    }
}
