//! Sharded visited set for the state-space searches.
//!
//! ES and beam dedup successor states by their u128 structural fingerprint.
//! A single `HashSet<u128>` behind the coordinator was fine at 10⁴ states
//! but becomes the scaling wall the ROADMAP calls out: every worker-side
//! membership probe had to funnel through the coordinator. The
//! [`ShardedVisited`] set partitions the fingerprint *range* across a fixed
//! number of shards (the top bits of the fingerprint pick the shard), each
//! behind its own lock, so expansion workers can probe membership through
//! `&self` concurrently while the coordinator remains the only writer.
//!
//! ## Determinism contract
//!
//! The shard count is **fixed** (16), not derived from the thread count, so
//! the shard-occupancy telemetry is byte-identical at any parallelism. The
//! accept/reject decision for every fingerprint is made by the coordinator,
//! which calls [`ShardedVisited::insert`] in deterministic (frontier index,
//! move index) merge order; workers only call the read-only
//! [`ShardedVisited::contains`] between merge rounds, when the set is
//! quiescent. The accepted state set is therefore exactly the set a single
//! `HashSet` with the same cap would accept, at any thread count —
//! `tests/search_determinism.rs` and the unit tests below pin this.
//!
//! ## Budget contract
//!
//! The set owns the `max_states` cap: once `len() == cap`, every further
//! insert returns [`Admit::CapReached`] without mutating anything, so
//! `SearchOutcome::visited_states` can never overshoot the budget (the old
//! generation-boundary check allowed most of a generation past it).

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Outcome of offering a fingerprint to the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// The fingerprint was new and was admitted.
    Fresh,
    /// The fingerprint was already present; nothing changed.
    Duplicate,
    /// The set is at its `max_states` cap; nothing changed.
    CapReached,
}

/// A fingerprint-range-partitioned visited set with a hard size cap.
///
/// See the module docs for the determinism and budget contracts.
#[derive(Debug)]
pub struct ShardedVisited {
    shards: Vec<Mutex<HashSet<u128>>>,
    /// Number of admitted fingerprints across all shards. Relaxed loads are
    /// exact under the coordinator-only-writer contract.
    len: AtomicUsize,
    cap: usize,
    /// `128 - log2(shard count)`: how far to shift a fingerprint right so
    /// its top bits select the shard (range partitioning).
    shift: u32,
}

impl ShardedVisited {
    /// Fixed shard count. Deliberately independent of the worker-thread
    /// count so shard occupancy is deterministic across parallelism.
    pub const SHARDS: usize = 16;

    /// An empty set capped at `max_states` admitted fingerprints.
    pub fn new(max_states: usize) -> ShardedVisited {
        let shards = (0..Self::SHARDS).map(|_| Mutex::default()).collect();
        ShardedVisited {
            shards,
            len: AtomicUsize::new(0),
            cap: max_states,
            shift: 128 - Self::SHARDS.trailing_zeros(),
        }
    }

    fn shard_of(&self, fp: u128) -> usize {
        // The fingerprint's top bits pick the shard: contiguous fingerprint
        // ranges map to the same shard, and FNV-mixed fingerprints spread
        // uniformly across them.
        (fp >> self.shift) as usize
    }

    fn shard(&self, idx: usize) -> std::sync::MutexGuard<'_, HashSet<u128>> {
        self.shards[idx].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Offer `fp` for admission. Only the search coordinator calls this,
    /// in deterministic merge order; the cap check makes overshooting
    /// `max_states` impossible rather than merely unlikely.
    pub fn insert(&self, fp: u128) -> Admit {
        if self.len.load(Ordering::Relaxed) >= self.cap {
            return Admit::CapReached;
        }
        if self.shard(self.shard_of(fp)).insert(fp) {
            self.len.fetch_add(1, Ordering::Relaxed);
            Admit::Fresh
        } else {
            Admit::Duplicate
        }
    }

    /// Read-only membership probe. Safe to call from expansion workers
    /// concurrently with each other (the coordinator does not insert while
    /// workers run, so the answer is deterministic).
    pub fn contains(&self, fp: u128) -> bool {
        self.shard(self.shard_of(fp)).contains(&fp)
    }

    /// Admitted fingerprints across all shards.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is the set at its `max_states` cap?
    pub fn at_cap(&self) -> bool {
        self.len() >= self.cap
    }

    /// Number of shards (constant; exposed for telemetry).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// `(min, max)` shard occupancy — deterministic for a given accepted
    /// set, because the fingerprint → shard map does not depend on thread
    /// count or insertion order.
    pub fn occupancy(&self) -> (u64, u64) {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for idx in 0..self.shards.len() {
            let n = self.shard(idx).len() as u64;
            min = min.min(n);
            max = max.max(n);
        }
        (min.min(max), max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fingerprint stream (splitmix-style), so
    /// the differential tests cover all shards without external RNG deps.
    fn fp_stream(seed: u64, n: usize) -> Vec<u128> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                let hi = z ^ (z >> 31);
                (u128::from(hi) << 64) | u128::from(x)
            })
            .collect()
    }

    #[test]
    fn accepts_exactly_what_a_single_set_would() {
        // Differential baseline: a plain HashSet with the same cap logic.
        // One duplicate every 7 offers exercises the Duplicate arm.
        let mut stream = fp_stream(42, 400);
        for i in (6..stream.len()).step_by(7) {
            stream[i] = stream[i - 3];
        }
        for cap in [0, 1, 17, 100, 1000] {
            let sharded = ShardedVisited::new(cap);
            let mut single: HashSet<u128> = HashSet::new();
            for &fp in &stream {
                let expect = if single.len() >= cap {
                    Admit::CapReached
                } else if single.insert(fp) {
                    Admit::Fresh
                } else {
                    Admit::Duplicate
                };
                assert_eq!(sharded.insert(fp), expect, "cap {cap} fp {fp:x}");
                assert_eq!(sharded.contains(fp), single.contains(&fp));
            }
            assert_eq!(sharded.len(), single.len(), "cap {cap}");
            assert!(sharded.len() <= cap, "cap {cap} overshot");
        }
    }

    #[test]
    fn range_partitioning_uses_the_top_bits() {
        let v = ShardedVisited::new(1000);
        // Fingerprints differing only below the top 4 bits share a shard...
        assert_eq!(v.shard_of(0), v.shard_of(1));
        assert_eq!(v.shard_of(u128::MAX), v.shard_of(u128::MAX - 1));
        // ...and the extreme ranges land on the first and last shard.
        assert_eq!(v.shard_of(0), 0);
        assert_eq!(v.shard_of(u128::MAX), ShardedVisited::SHARDS - 1);
    }

    #[test]
    fn occupancy_is_a_function_of_the_accepted_set() {
        let fps = fp_stream(7, 256);
        let a = ShardedVisited::new(usize::MAX);
        for &fp in &fps {
            a.insert(fp);
        }
        // Same set, reversed insertion order: identical occupancy.
        let b = ShardedVisited::new(usize::MAX);
        for &fp in fps.iter().rev() {
            b.insert(fp);
        }
        assert_eq!(a.occupancy(), b.occupancy());
        assert_eq!(a.len(), 256);
        let (min, max) = a.occupancy();
        assert!(min <= max);
        assert!(max >= (256 / ShardedVisited::SHARDS) as u64);
    }

    #[test]
    fn concurrent_probes_match_sequential_answers() {
        // Workers probe `contains` while the set is quiescent; the answers
        // must match the single-threaded truth for every fingerprint.
        let fps = fp_stream(11, 512);
        let v = ShardedVisited::new(usize::MAX);
        for &fp in fps.iter().step_by(2) {
            v.insert(fp);
        }
        std::thread::scope(|scope| {
            for chunk in fps.chunks(128) {
                let (v, fps) = (&v, &fps);
                scope.spawn(move || {
                    for &fp in chunk {
                        assert_eq!(v.contains(fp), fps.iter().step_by(2).any(|&x| x == fp));
                    }
                });
            }
        });
    }

    #[test]
    fn cap_zero_admits_nothing() {
        let v = ShardedVisited::new(0);
        assert_eq!(v.insert(123), Admit::CapReached);
        assert!(v.is_empty());
        assert!(v.at_cap());
        assert_eq!(v.occupancy(), (0, 0));
        assert_eq!(v.shard_count(), ShardedVisited::SHARDS);
    }
}
