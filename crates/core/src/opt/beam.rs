//! Bounded-width Beam search.
//!
//! The paper caps ES at 40 hours and reports best-so-far on medium and
//! large workflows because the state space is exponential; the related
//! task-re-ordering literature (Kougka & Gounaris, PAPERS.md) shows that
//! bounded-width exploration recovers most of exhaustive quality at a
//! fraction of the states. [`BeamSearch`] is ES's generation-synchronous
//! BFS with one change: after each generation's merge, the frontier is
//! truncated to the `width` cheapest states. With `width = ∞` it *is* ES;
//! with `width = 1` it degenerates to steepest-descent hill climbing over
//! fingerprint-distinct states. That puts it between HS and ES on the
//! quality/time trade-off, with a knob instead of a fixed phase recipe.
//!
//! ## Determinism contract
//!
//! Truncation keeps the top `K` states under the same total order the
//! searches already use for the incumbent: cost first
//! ([`f64::total_cmp`]), state [`Signature`] as the tie-break. Distinct
//! fingerprints have distinct signatures, so the order — and therefore the
//! surviving frontier, the best state, and every deterministic counter —
//! is byte-identical at any worker-thread count.
//! `tests/search_determinism.rs` pins beam at parallelism 1/2/4, and the
//! beam-width sweep test pins `best_cost(K = ∞) == best_cost(ES)` plus
//! monotone non-increasing best cost in `K` on the smoke seeds.

use std::cell::OnceCell;
use std::sync::Arc;
use std::time::Instant;

use crate::cost::CostModel;
use crate::error::Result;
use crate::opt::{
    expand_frontier, EvalState, MoveMemo, Optimizer, Pacer, SearchBudget, SearchOutcome,
    ShardedVisited, Threads,
};
use crate::signature::Signature;
use crate::trace::{Collector, Span, TraceEvent, TraceSink};
use crate::workflow::Workflow;

/// The beam-search algorithm: ES with a per-generation top-K frontier.
#[derive(Debug, Clone)]
pub struct BeamSearch {
    /// Resource bounds, shared with the other algorithms.
    pub budget: SearchBudget,
    /// Frontier width `K`: after each generation, only the `K` cheapest
    /// states (signature tie-break) survive. Clamped to ≥ 1 by the
    /// constructors; `usize::MAX` makes the search exhaustive.
    pub width: usize,
    /// Optional cross-run move-enumeration cache; `None` builds a fresh
    /// per-run memo (the one-shot default).
    shared_memo: Option<Arc<MoveMemo>>,
}

impl BeamSearch {
    /// Default frontier width — wide enough to keep the small/medium
    /// conformance scenarios exact, narrow enough to bound large ones.
    pub const DEFAULT_WIDTH: usize = 64;

    /// Beam with the default budget and width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Beam with a custom budget and the default width.
    pub fn with_budget(budget: SearchBudget) -> Self {
        BeamSearch {
            budget,
            width: Self::DEFAULT_WIDTH,
            shared_memo: None,
        }
    }

    /// Reuse a [`MoveMemo`] across runs instead of building a fresh one.
    /// Same soundness contract as
    /// [`crate::opt::ExhaustiveSearch::with_shared_memo`]: every sharing
    /// run must operate on states of one workflow family, and the search
    /// result is unchanged — only the memo telemetry covers the shared
    /// cache's traffic during this run.
    pub fn with_shared_memo(mut self, memo: Arc<MoveMemo>) -> Self {
        self.shared_memo = Some(memo);
        self
    }

    /// Set the frontier width (clamped to ≥ 1).
    pub fn with_width(mut self, width: usize) -> Self {
        self.width = width.max(1);
        self
    }

    /// Remove the width bound: the search becomes ES (useful for the
    /// differential tests that pin beam against the exhaustive baseline).
    pub fn unbounded(mut self) -> Self {
        self.width = usize::MAX;
        self
    }

    /// Truncate a merged frontier to the `width` cheapest states under the
    /// deterministic (cost, signature) order; returns the survivors in
    /// that order and the number of states dropped. Signatures are only
    /// built for states that actually tie on cost, and at most once each.
    fn truncate(&self, frontier: Vec<EvalState>) -> (Vec<EvalState>, u64) {
        if frontier.len() <= self.width {
            return (frontier, 0);
        }
        let sigs: Vec<OnceCell<Signature>> = frontier.iter().map(|_| OnceCell::new()).collect();
        let mut order: Vec<usize> = (0..frontier.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            frontier[a]
                .total
                .total_cmp(&frontier[b].total)
                .then_with(|| {
                    let sa = sigs[a].get_or_init(|| frontier[a].wf.signature());
                    let sb = sigs[b].get_or_init(|| frontier[b].wf.signature());
                    sa.cmp(sb)
                })
        });
        let dropped = (frontier.len() - self.width) as u64;
        let mut slots: Vec<Option<EvalState>> = frontier.into_iter().map(Some).collect();
        let kept = order
            .iter()
            .take(self.width)
            .filter_map(|&i| slots[i].take())
            .collect();
        (kept, dropped)
    }
}

impl Default for BeamSearch {
    fn default() -> Self {
        BeamSearch {
            budget: SearchBudget::default(),
            width: Self::DEFAULT_WIDTH,
            shared_memo: None,
        }
    }
}

impl Optimizer for BeamSearch {
    fn name(&self) -> &str {
        "Beam"
    }

    fn run_traced(
        &self,
        wf: &Workflow,
        model: &dyn CostModel,
        sink: &dyn TraceSink,
    ) -> Result<SearchOutcome> {
        let width = self.width.max(1);
        let started = Instant::now();
        let span = Span::start("search");
        let mut col = Collector::new("Beam");
        col.beam_width(u64::try_from(width).unwrap_or(u64::MAX));
        let mut pacer = Pacer::new(started, &self.budget);
        let threads = Threads::new(self.budget.threads());
        let local_memo;
        let memo: &MoveMemo = match self.shared_memo.as_deref() {
            Some(m) => m,
            None => {
                local_memo = MoveMemo::new();
                &local_memo
            }
        };
        let (memo_h0, memo_m0) = memo.stats();
        let initial = EvalState::full(wf.clone(), model)?;
        let initial_cost = initial.total;
        col.evaluated(initial.via_delta());

        let visited = ShardedVisited::new(self.budget.max_states);
        visited.insert(initial.fp);

        // Best state tracked by (cost, signature), exactly as ES does —
        // the incumbent may well be a state a later truncation drops from
        // the frontier, so it is cloned before the cut.
        let mut best = wf.clone();
        let mut best_cost = initial_cost;
        let mut best_sig: Option<Signature> = None;

        let mut frontier: Vec<EvalState> = vec![initial];
        let mut budget_exhausted = false;
        let mut generation = 0usize;
        let mut truncated_total = 0u64;

        while !frontier.is_empty() {
            if visited.at_cap() || pacer.check_now() {
                budget_exhausted = true;
                break;
            }
            col.frontier(frontier.len());
            sink.event(TraceEvent::Generation {
                index: generation,
                frontier: frontier.len(),
                visited: visited.len(),
            });
            generation += 1;
            for state in &frontier {
                col.expanded(state.fp);
            }

            // Expansion: identical to ES — workers price successors
            // incrementally and pre-filter duplicates against the
            // quiescent sharded visited set.
            let expanded = expand_frontier(&frontier, &threads, memo, model, &visited);

            // Merge: one coordinator, deterministic (frontier index, move
            // index) order, same bookkeeping as ES. Once the budget stops
            // the merge, remaining chunks are only counted.
            let mut next_frontier: Vec<EvalState> = Vec::new();
            let mut gen_best: Option<usize> = None;
            let mut merging = true;
            for chunk in expanded {
                let chunk = match chunk {
                    Ok(c) => c,
                    Err(e) if merging => return Err(e),
                    Err(_) => continue,
                };
                col.rejections(&chunk.rej);
                for _ in 0..chunk.dedup_delta {
                    col.evaluated(true);
                    col.deduplicated();
                }
                for _ in 0..chunk.dedup_full {
                    col.evaluated(false);
                    col.deduplicated();
                }
                for next in chunk.fresh {
                    col.evaluated(next.via_delta());
                    if !merging {
                        continue;
                    }
                    if pacer.tick() {
                        budget_exhausted = true;
                        merging = false;
                        continue;
                    }
                    match visited.insert(next.fp) {
                        crate::opt::Admit::Duplicate => {
                            col.deduplicated();
                            continue;
                        }
                        crate::opt::Admit::CapReached => {
                            budget_exhausted = true;
                            merging = false;
                            continue;
                        }
                        crate::opt::Admit::Fresh => {}
                    }
                    let total = next.total;
                    let strict = total < best_cost;
                    let improves = strict || {
                        total == best_cost && {
                            let sig = next.wf.signature();
                            let wins = {
                                let cur = best_sig.get_or_insert_with(|| best.signature());
                                sig < *cur
                            };
                            if wins {
                                best_sig = Some(sig);
                            }
                            wins
                        }
                    };
                    next_frontier.push(next);
                    if improves {
                        if strict {
                            best_sig = None;
                        }
                        best_cost = total;
                        gen_best = Some(next_frontier.len() - 1);
                    }
                }
            }
            if let Some(i) = gen_best {
                best = next_frontier[i].wf.clone();
            }
            // The beam cut: keep the K cheapest survivors. Truncated
            // states stay in the visited set (they were admitted and count
            // toward the budget) but are never expanded, so they surface
            // as `pruned` in the accounting and as `truncated_states` in
            // the beam telemetry.
            let (kept, dropped) = self.truncate(next_frontier);
            truncated_total += dropped;
            frontier = kept;
            if budget_exhausted {
                break;
            }
        }

        col.truncated(truncated_total);
        let (shard_min, shard_max) = visited.occupancy();
        col.visited_shards(visited.shard_count() as u64, shard_min, shard_max);
        let (hits, misses) = memo.stats();
        col.memo(hits.saturating_sub(memo_h0), misses.saturating_sub(memo_m0));
        col.worker_batches(threads.batch_counts());
        col.span(span);
        sink.event(TraceEvent::Finished {
            algorithm: "Beam",
            best_cost,
            visited: visited.len(),
            budget_exhausted,
        });
        Ok(SearchOutcome {
            best,
            best_cost,
            initial_cost,
            visited_states: visited.len(),
            elapsed: started.elapsed(),
            budget_exhausted,
            phase_stats: Vec::new(),
            stats: col.finish(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::RowCountModel;
    use crate::opt::ExhaustiveSearch;
    use crate::postcond::equivalent;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{BinaryOp, UnaryOp};
    use crate::workflow::WorkflowBuilder;

    fn swap_win() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 1000.0);
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), s);
        let f = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 10)).with_selectivity(0.1),
            sk,
        );
        b.target("T", Schema::of(["sk", "v"]), f);
        b.build().unwrap()
    }

    fn fac_dis() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 64.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 64.0);
        let u = b.binary("U", BinaryOp::Union, s1, s2);
        let sel = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.25),
            u,
        );
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), sel);
        b.target("T", Schema::of(["sk", "v"]), sk);
        b.build().unwrap()
    }

    #[test]
    fn beam_finds_the_swap_optimum() {
        let wf = swap_win();
        let model = RowCountModel::default();
        let out = BeamSearch::new().run(&wf, &model).unwrap();
        assert!(!out.budget_exhausted);
        assert!(out.best_cost < out.initial_cost);
        let first = out.best.activities().unwrap()[0];
        assert_eq!(out.best.graph().activity(first).unwrap().label, "σ");
        assert!(equivalent(&wf, &out.best).unwrap());
        assert_eq!(out.stats.algorithm, "Beam");
        assert_eq!(out.stats.beam_width, BeamSearch::DEFAULT_WIDTH as u64);
        assert_eq!(
            out.stats.visited_shards,
            crate::opt::ShardedVisited::SHARDS as u64
        );
    }

    #[test]
    fn unbounded_beam_matches_es_exactly() {
        let model = RowCountModel::default();
        for wf in [swap_win(), fac_dis()] {
            let es = ExhaustiveSearch::new().run(&wf, &model).unwrap();
            let beam = BeamSearch::new().unbounded().run(&wf, &model).unwrap();
            assert_eq!(es.best_cost.to_bits(), beam.best_cost.to_bits());
            assert_eq!(es.best.signature(), beam.best.signature());
            assert_eq!(es.visited_states, beam.visited_states);
            assert_eq!(beam.stats.truncated_states, 0);
        }
    }

    #[test]
    fn width_one_still_improves_and_truncates() {
        let wf = fac_dis();
        let model = RowCountModel::default();
        let out = BeamSearch::new().with_width(1).run(&wf, &model).unwrap();
        assert!(out.best_cost <= out.initial_cost);
        assert!(
            out.stats.truncated_states > 0,
            "a width-1 beam on a branching space must truncate\n{}",
            out.stats.counters_json()
        );
        assert!(out.stats.reconciles(), "{}", out.stats.counters_json());
        assert!(
            out.stats.pruned >= out.stats.truncated_states,
            "truncated states must be a subset of pruned\n{}",
            out.stats.counters_json()
        );
        assert!(equivalent(&wf, &out.best).unwrap());
    }

    #[test]
    fn zero_width_is_clamped() {
        let wf = swap_win();
        let model = RowCountModel::default();
        let out = BeamSearch::new().with_width(0).run(&wf, &model).unwrap();
        assert_eq!(out.stats.beam_width, 1);
        assert!(out.best_cost <= out.initial_cost);
    }

    #[test]
    fn beam_respects_budget() {
        let wf = swap_win();
        let model = RowCountModel::default();
        let out = BeamSearch::with_budget(SearchBudget::states(1))
            .run(&wf, &model)
            .unwrap();
        assert!(out.budget_exhausted);
        assert!(out.visited_states <= 1);
    }

    #[test]
    fn beam_parallel_matches_sequential() {
        let model = RowCountModel::default();
        for wf in [swap_win(), fac_dis()] {
            let seq = BeamSearch::with_budget(SearchBudget::default().with_parallelism(1))
                .with_width(4)
                .run(&wf, &model)
                .unwrap();
            let par = BeamSearch::with_budget(SearchBudget::default().with_parallelism(4))
                .with_width(4)
                .run(&wf, &model)
                .unwrap();
            assert_eq!(seq.best_cost.to_bits(), par.best_cost.to_bits());
            assert_eq!(seq.best.signature(), par.best.signature());
            assert_eq!(seq.visited_states, par.visited_states);
            assert_eq!(
                seq.stats.counters_json(),
                par.stats.counters_json(),
                "beam counters must be thread-count invariant"
            );
        }
    }
}
