//! Incremental state evaluation: the carrier that makes state expansion
//! O(affected subgraph) instead of O(whole workflow).
//!
//! Every search state is paired with its flat per-node pricing
//! ([`CostVec`]) and per-node structural hashes ([`NodeHashes`]). Expanding
//! a state then costs one transition `apply`, one `downstream_of` walk over
//! the dirty subgraph (shared between repricing and rehashing), and a
//! handful of per-node recomputations — everything upstream and on sibling
//! branches is reused from the parent bit-for-bit, so delta-evaluated
//! totals and fingerprints are *exactly* equal to from-scratch ones (pinned
//! by the equivalence property tests).
//!
//! Models that override [`CostModel::cost`] with something richer than the
//! per-activity summation (`supports_delta() == false`, e.g. the physical
//! planner) fall back to full `cost` + scratch fingerprint per state — same
//! results as before, just without the shortcut.

use crate::cost::{CostModel, CostVec};
use crate::error::Result;
use crate::graph::NodeId;
use crate::opt::Move;
use crate::schema_gen;
use crate::signature::{self, NodeHashes};
use crate::trace::Rejections;
use crate::transition::Transition;
use crate::workflow::Workflow;

/// A search state with everything needed to expand it incrementally.
#[derive(Debug, Clone)]
pub(crate) struct EvalState {
    /// The state itself.
    pub wf: Workflow,
    /// Total state cost (delta-maintained when the model supports it).
    pub total: f64,
    /// State fingerprint (keys the visited sets).
    pub fp: u128,
    /// Per-node pricing + hashes; `None` in the full-evaluation fallback.
    detail: Option<(CostVec, NodeHashes)>,
    /// How this state was priced: `true` for the delta path (tables reused
    /// along the dirty walk), `false` for from-scratch pricing. Telemetry
    /// only — `detail` presence is what gates the *next* expansion's path.
    via_delta: bool,
}

impl EvalState {
    /// Evaluate a state from scratch.
    pub fn full(wf: Workflow, model: &dyn CostModel) -> Result<EvalState> {
        if model.supports_delta() {
            let cost = model.price(&wf)?;
            let (hashes, fp) = signature::hash_state(&wf);
            Ok(EvalState {
                total: cost.total,
                fp,
                detail: Some((cost, hashes)),
                wf,
                via_delta: false,
            })
        } else {
            let total = model.cost(&wf)?;
            let fp = wf.fingerprint();
            Ok(EvalState {
                wf,
                total,
                fp,
                detail: None,
                via_delta: false,
            })
        }
    }

    /// Was this state priced through the delta path (per-node tables reused
    /// along the dirty walk), as opposed to from-scratch pricing?
    pub fn via_delta(&self) -> bool {
        self.via_delta
    }

    /// Expand one enumerated [`Move`]; `None` when it does not apply — in
    /// which case the rejection rule is counted on `rej` rather than
    /// silently discarded.
    pub fn step_move(
        &self,
        mv: &Move,
        model: &dyn CostModel,
        rej: &mut Rejections,
    ) -> Option<Result<EvalState>> {
        match mv.apply(&self.wf) {
            Ok(next) => Some(self.step_applied(next, &mv.affected(&self.wf), model)),
            Err(e) => {
                rej.record(&e);
                None
            }
        }
    }

    /// Expand one [`Transition`]; `None` when it does not apply — the
    /// rejection rule is counted on `rej`.
    pub fn step_transition<T: Transition>(
        &self,
        t: &T,
        model: &dyn CostModel,
        rej: &mut Rejections,
    ) -> Option<Result<EvalState>> {
        match t.apply(&self.wf) {
            Ok(next) => Some(self.step_applied(next, &t.affected(&self.wf), model)),
            Err(e) => {
                rej.record(&e);
                None
            }
        }
    }

    /// Price and fingerprint an already-applied successor, reusing this
    /// state's tables along the dirty downstream path.
    fn step_applied(
        &self,
        next: Workflow,
        affected: &[NodeId],
        model: &dyn CostModel,
    ) -> Result<EvalState> {
        let Some((cost, hashes)) = &self.detail else {
            return EvalState::full(next, model);
        };
        // One dirty walk, shared by repricing and rehashing.
        let dirty = schema_gen::downstream_of(next.graph(), affected)?;
        let cost = model.reprice_along(&next, cost, &dirty)?;
        let (hashes, fp) = signature::rehash_along(&next, hashes, &dirty);
        Ok(EvalState {
            total: cost.total,
            fp,
            detail: Some((cost, hashes)),
            wf: next,
            via_delta: true,
        })
    }
}

/// Total state cost through the same summation the delta path uses:
/// slot-order `price` totals for delta-capable models, full `cost`
/// otherwise. Search phases that evaluate states from scratch rank with
/// this so their totals compare bit-exactly against delta-maintained ones.
pub(crate) fn state_total(model: &dyn CostModel, wf: &Workflow) -> Result<f64> {
    if model.supports_delta() {
        Ok(model.price(wf)?.total)
    } else {
        model.cost(wf)
    }
}
