//! Scalar values shared between the logical model (predicate constants,
//! template parameters) and the execution engine.
//!
//! The paper's correctness argument is black-box — it never inspects values —
//! but predicates carry constants (e.g. `σ(euro_cost > 100)`), and the
//! `etlopt-engine` crate needs to evaluate them over real rows, so a small
//! closed value domain lives here in the core.

use std::cmp::Ordering;
use std::fmt;

/// A scalar value: the closed domain over which ETL rows are defined.
///
/// `Float` is wrapped so the type can be `Eq`/`Hash`/`Ord` (total order with
/// NaN greatest, mirroring SQL's `NULLS LAST`-style determinism); workflow
/// states must be hashable for the visited-state set of the optimizer.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// SQL-style NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// A calendar date, days since epoch. The paper's `A2E` activity converts
    /// American to European *format*; we model dates canonically and treat
    /// format as presentation, which is exactly why the two formats may share
    /// one reference attribute name (§3.1).
    Date(i32),
}

impl Scalar {
    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Scalar::Null)
    }

    /// Numeric view (ints widen to float); `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int(i) => Some(*i as f64),
            Scalar::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` for anything that is not an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Scalar::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view; `None` for anything that is not a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Three-valued-logic comparison: `None` when either side is NULL or the
    /// types are incomparable, `Some(ordering)` otherwise. Numerics compare
    /// across `Int`/`Float`.
    pub fn compare(&self, other: &Scalar) -> Option<Ordering> {
        use Scalar::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// A total, deterministic ordering used for canonical sorting (multiset
    /// comparison in the engine, canonical signatures). NULL sorts first,
    /// then by variant, then by value; NaN sorts after every other float.
    pub fn total_cmp(&self, other: &Scalar) -> Ordering {
        fn rank(s: &Scalar) -> u8 {
            match s {
                Scalar::Null => 0,
                Scalar::Bool(_) => 1,
                Scalar::Int(_) => 2,
                Scalar::Float(_) => 3,
                Scalar::Date(_) => 4,
                Scalar::Str(_) => 5,
            }
        }
        use Scalar::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Null => write!(f, "NULL"),
            Scalar::Int(i) => write!(f, "{i}"),
            Scalar::Float(x) => write!(f, "{x}"),
            Scalar::Str(s) => write!(f, "'{s}'"),
            Scalar::Bool(b) => write!(f, "{b}"),
            Scalar::Date(d) => write!(f, "date({d})"),
        }
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::Int(v)
    }
}
impl From<i32> for Scalar {
    fn from(v: i32) -> Self {
        Scalar::Int(v as i64)
    }
}
impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::Float(v)
    }
}
impl From<&str> for Scalar {
    fn from(v: &str) -> Self {
        Scalar::Str(v.to_owned())
    }
}
impl From<String> for Scalar {
    fn from(v: String) -> Self {
        Scalar::Str(v)
    }
}
impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Scalar::Null.compare(&Scalar::Int(1)), None);
        assert_eq!(Scalar::Int(1).compare(&Scalar::Null), None);
        assert_eq!(Scalar::Null.compare(&Scalar::Null), None);
    }

    #[test]
    fn numeric_comparison_crosses_int_float() {
        assert_eq!(
            Scalar::Int(2).compare(&Scalar::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Scalar::Float(1.5).compare(&Scalar::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn strings_compare_lexicographically() {
        assert_eq!(
            Scalar::from("abc").compare(&Scalar::from("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn mixed_types_are_incomparable() {
        assert_eq!(Scalar::from("x").compare(&Scalar::Int(1)), None);
        assert_eq!(Scalar::Bool(true).compare(&Scalar::Int(1)), None);
    }

    #[test]
    fn total_cmp_is_total_and_antisymmetric() {
        let vals = [
            Scalar::Null,
            Scalar::Bool(false),
            Scalar::Int(-3),
            Scalar::Float(f64::NAN),
            Scalar::Float(0.5),
            Scalar::Date(10),
            Scalar::from("z"),
        ];
        for a in &vals {
            for b in &vals {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse(), "{a} vs {b}");
            }
            assert_eq!(a.total_cmp(a), Ordering::Equal);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Scalar::Null.to_string(), "NULL");
        assert_eq!(Scalar::from("hi").to_string(), "'hi'");
        assert_eq!(Scalar::Int(7).to_string(), "7");
    }
}
