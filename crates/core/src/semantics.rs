//! Activity semantics: the algebraic operations an activity can carry.
//!
//! Every activity wraps either a [`UnaryOp`] (one input schema) or a
//! [`BinaryOp`] (two input schemata) — or a merged chain of unary ops, see
//! [`crate::activity`]. Each operation knows how to derive the auxiliary
//! schemata of §3.2 from its parameters and its input schema:
//!
//! * [`UnaryOp::functionality`] — the *necessary* attributes,
//! * [`UnaryOp::generated`] — attributes created by the op,
//! * [`UnaryOp::projected_out`] — input attributes dropped by the op,
//! * [`UnaryOp::output`] — the full output schema,
//!
//! and classifies itself for transition applicability
//! ([`UnaryOp::is_row_wise`] drives Factorize/Distribute legality).

use std::fmt;

use crate::error::{CoreError, Result};
use crate::predicate::Predicate;
use crate::scalar::Scalar;
use crate::schema::{Attr, Schema};

/// Aggregate function of a group-by activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Sum of a numeric attribute.
    Sum,
    /// Count of rows in the group.
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Avg,
}

impl AggFunc {
    /// Function name as it appears in post-conditions, e.g. `γ-SUM`.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// One aggregate column of an [`Aggregation`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Aggregated input attribute.
    pub input: Attr,
    /// Name of the produced attribute. May equal `input` (the paper's
    /// `γ-SUM` keeps the name `€COST`).
    pub output: Attr,
}

/// A group-by aggregation: the paper's `γ` activity.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregation {
    /// Grouping attributes (kept in the output).
    pub group_by: Vec<Attr>,
    /// Aggregate columns.
    pub aggregates: Vec<AggSpec>,
}

impl Aggregation {
    /// Build an aggregation.
    pub fn new<G, A>(group_by: G, aggregates: Vec<AggSpec>) -> Self
    where
        G: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        Aggregation {
            group_by: group_by.into_iter().map(Into::into).collect(),
            aggregates,
        }
    }

    /// Single-aggregate convenience.
    pub fn sum<G, A>(group_by: G, input: impl Into<Attr>, output: impl Into<Attr>) -> Self
    where
        G: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        Aggregation::new(
            group_by,
            vec![AggSpec {
                func: AggFunc::Sum,
                input: input.into(),
                output: output.into(),
            }],
        )
    }
}

/// A function application: the paper's `f` activities (`$2€`, `A2E`, …).
///
/// Whether the input attributes survive is part of the template: `$2€`
/// replaces `dollar_cost` by `euro_cost` (inputs projected out), while a
/// checksum function might keep its inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionApp {
    /// Registered function name; the engine resolves it to executable code.
    pub function: String,
    /// Input attributes (the functionality schema).
    pub inputs: Vec<Attr>,
    /// Generated output attribute. If it equals an input attribute the
    /// function is an *in-place* transform whose output keeps the same
    /// reference name — the `A2E` date case of §3.1. **Contract:** an
    /// in-place function must be entity-preserving (a format conversion);
    /// re-using the name for a value-changing transform (e.g. a currency
    /// conversion) violates the naming principle and compromises swap
    /// condition 3, exactly as the paper warns — give such functions a
    /// fresh output name instead.
    pub output: Attr,
    /// Keep the input attributes in the output schema? Ignored (treated as
    /// `true`) for the attribute that the output overwrites in-place.
    pub keep_inputs: bool,
    /// Is the function injective on its inputs (distinct inputs give
    /// distinct outputs)? Template-level knowledge: format conversions
    /// (`A2E`), currency conversions and surrogate lookups are injective;
    /// truncations and bucketizations are not. Injectivity gates the swaps
    /// and distributions whose exactness depends on the function not
    /// collapsing values (e.g. swapping a function applied to a grouper
    /// across an aggregation, or distributing it over a bag difference).
    pub injective: bool,
}

/// A unary activity operation.
#[derive(Debug, Clone, PartialEq)]
pub enum UnaryOp {
    /// Selection `σ(predicate)`.
    Filter {
        /// Row predicate.
        predicate: Predicate,
        /// Estimated fraction of rows that pass (0, 1].
        selectivity: f64,
    },
    /// Not-null check on one attribute — the paper's `NN` activity.
    NotNull {
        /// Checked attribute.
        attr: Attr,
        /// Estimated fraction of rows that pass.
        selectivity: f64,
    },
    /// Primary-key violation check: keeps the first row per key, drops
    /// subsequent violators.
    PkCheck {
        /// Key attributes.
        key: Vec<Attr>,
        /// Estimated fraction of rows that pass.
        selectivity: f64,
    },
    /// Duplicate elimination over the whole row.
    Dedup {
        /// Estimated fraction of rows that survive.
        selectivity: f64,
    },
    /// Function application.
    Function(FunctionApp),
    /// Group-by aggregation.
    Aggregate {
        /// The aggregation spec.
        agg: Aggregation,
        /// Estimated ratio |groups| / |input rows|.
        selectivity: f64,
    },
    /// Projection-out: drop the listed attributes (`π-out`).
    ProjectOut(Vec<Attr>),
    /// Add a constant attribute (e.g. enrich rows with their SOURCE before a
    /// surrogate-key assignment — the paper's merge-constraint example).
    AddField {
        /// New attribute name.
        attr: Attr,
        /// Constant value.
        value: Scalar,
    },
    /// Surrogate-key assignment via a lookup table: consumes the production
    /// key, generates the surrogate.
    SurrogateKey {
        /// Production-key attribute (projected out).
        key: Attr,
        /// Generated surrogate attribute.
        surrogate: Attr,
        /// Name of the lookup table (engine-side).
        lookup: String,
    },
}

impl UnaryOp {
    /// `σ(predicate)` with selectivity 1.0 (tune with
    /// [`UnaryOp::with_selectivity`]).
    pub fn filter(predicate: Predicate) -> Self {
        UnaryOp::Filter {
            predicate,
            selectivity: 1.0,
        }
    }

    /// `NN(attr)` with selectivity 1.0.
    pub fn not_null(attr: impl Into<Attr>) -> Self {
        UnaryOp::NotNull {
            attr: attr.into(),
            selectivity: 1.0,
        }
    }

    /// Function application dropping its inputs (the `$2€` shape).
    pub fn function<I, A>(name: impl Into<String>, inputs: I, output: impl Into<Attr>) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        UnaryOp::Function(FunctionApp {
            function: name.into(),
            inputs: inputs.into_iter().map(Into::into).collect(),
            output: output.into(),
            keep_inputs: false,
            injective: true,
        })
    }

    /// Function application that is *not* injective (e.g. a bucketization).
    pub fn function_noninjective<I, A>(
        name: impl Into<String>,
        inputs: I,
        output: impl Into<Attr>,
    ) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        match Self::function(name, inputs, output) {
            UnaryOp::Function(mut f) => {
                f.injective = false;
                UnaryOp::Function(f)
            }
            _ => unreachable!("function() always builds a Function"),
        }
    }

    /// Aggregation with |groups|/|rows| ratio 1.0 (tune with
    /// [`UnaryOp::with_selectivity`]).
    pub fn aggregate(agg: Aggregation) -> Self {
        UnaryOp::Aggregate {
            agg,
            selectivity: 1.0,
        }
    }

    /// `π-out(attrs)`.
    pub fn project_out<I, A>(attrs: I) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        UnaryOp::ProjectOut(attrs.into_iter().map(Into::into).collect())
    }

    /// Surrogate-key assignment.
    pub fn surrogate_key(
        key: impl Into<Attr>,
        surrogate: impl Into<Attr>,
        lookup: impl Into<String>,
    ) -> Self {
        UnaryOp::SurrogateKey {
            key: key.into(),
            surrogate: surrogate.into(),
            lookup: lookup.into(),
        }
    }

    /// Override the selectivity estimate (no-op for ops whose output
    /// cardinality is structurally 1:1, like functions and projections).
    pub fn with_selectivity(mut self, s: f64) -> Self {
        assert!(
            s > 0.0 && s <= 1.0,
            "selectivity must be in (0, 1], got {s}"
        );
        match &mut self {
            UnaryOp::Filter { selectivity, .. }
            | UnaryOp::NotNull { selectivity, .. }
            | UnaryOp::PkCheck { selectivity, .. }
            | UnaryOp::Dedup { selectivity }
            | UnaryOp::Aggregate { selectivity, .. } => *selectivity = s,
            UnaryOp::Function(_)
            | UnaryOp::ProjectOut(_)
            | UnaryOp::AddField { .. }
            | UnaryOp::SurrogateKey { .. } => {}
        }
        self
    }

    /// Estimated |output| / |input| ratio.
    pub fn selectivity(&self) -> f64 {
        match self {
            UnaryOp::Filter { selectivity, .. }
            | UnaryOp::NotNull { selectivity, .. }
            | UnaryOp::PkCheck { selectivity, .. }
            | UnaryOp::Dedup { selectivity }
            | UnaryOp::Aggregate { selectivity, .. } => *selectivity,
            UnaryOp::Function(_)
            | UnaryOp::ProjectOut(_)
            | UnaryOp::AddField { .. }
            | UnaryOp::SurrogateKey { .. } => 1.0,
        }
    }

    /// The functionality (necessary) schema: attributes participating in the
    /// computation (§3.2).
    pub fn functionality(&self) -> Schema {
        match self {
            UnaryOp::Filter { predicate, .. } => predicate.referenced_attrs(),
            UnaryOp::NotNull { attr, .. } => Schema::of([attr.clone()]),
            UnaryOp::PkCheck { key, .. } => key.iter().cloned().collect(),
            UnaryOp::Dedup { .. } => Schema::empty(),
            UnaryOp::Function(f) => f.inputs.iter().cloned().collect(),
            UnaryOp::Aggregate { agg, .. } => {
                let mut s: Schema = agg.group_by.iter().cloned().collect();
                for a in &agg.aggregates {
                    s.push(a.input.clone());
                }
                s
            }
            UnaryOp::ProjectOut(attrs) => attrs.iter().cloned().collect(),
            UnaryOp::AddField { .. } => Schema::empty(),
            UnaryOp::SurrogateKey { key, .. } => Schema::of([key.clone()]),
        }
    }

    /// The generated schema: output attributes the activity *creates*
    /// (§3.2). An in-place function transform (output name equals an input
    /// name) generates nothing new — the naming principle declares both
    /// sides the same real-world entity, which is exactly what lets `γ` swap
    /// with `A2E` in the paper's running example. Aggregate outputs, in
    /// contrast, are always generated *even when they reuse the input's
    /// name*: `SUM(€COST)` is a new entity, and treating it as generated is
    /// what blocks pushing `σ(€COST)` below the aggregation (the paper's
    /// "we cannot push the selection … before the aggregation").
    pub fn generated(&self) -> Schema {
        match self {
            UnaryOp::Function(f) => {
                if f.inputs.contains(&f.output) {
                    Schema::empty()
                } else {
                    Schema::of([f.output.clone()])
                }
            }
            UnaryOp::Aggregate { agg, .. } => {
                agg.aggregates.iter().map(|a| a.output.clone()).collect()
            }
            UnaryOp::AddField { attr, .. } => Schema::of([attr.clone()]),
            UnaryOp::SurrogateKey { surrogate, .. } => Schema::of([surrogate.clone()]),
            _ => Schema::empty(),
        }
    }

    /// The projected-out schema *relative to an input schema*: input
    /// attributes that do not survive the activity (§3.2).
    pub fn projected_out(&self, input: &Schema) -> Schema {
        match self {
            UnaryOp::Function(f) => {
                if f.keep_inputs {
                    Schema::empty()
                } else {
                    f.inputs
                        .iter()
                        .filter(|a| **a != f.output)
                        .cloned()
                        .collect()
                }
            }
            UnaryOp::Aggregate { .. } => {
                let kept = self.output(input).unwrap_or_else(|_| Schema::empty());
                input.difference(&kept)
            }
            UnaryOp::ProjectOut(attrs) => attrs.iter().cloned().collect(),
            UnaryOp::SurrogateKey { key, .. } => Schema::of([key.clone()]),
            _ => Schema::empty(),
        }
    }

    /// Compute the output schema for a given input schema:
    /// `(input − projected_out) ∪ generated`, preserving input order and
    /// appending generated attributes. Fails if the functionality schema is
    /// not contained in the input (the op cannot run here — the situation
    /// swap condition 3 exists to prevent), or if a generated attribute
    /// would collide with an unrelated input attribute of the same name
    /// (which the naming principle forbids: one name, one entity).
    pub fn output(&self, input: &Schema) -> Result<Schema> {
        let fun = self.functionality();
        if !fun.is_subset_of(input) {
            return Err(CoreError::Schema(format!(
                "operation {self} needs attributes {fun} but input offers only {input}"
            )));
        }
        // Collision guards: a *fresh* output name must actually be fresh.
        let collision = match self {
            UnaryOp::Function(f) if !f.inputs.contains(&f.output) => {
                input.contains(&f.output).then(|| f.output.clone())
            }
            UnaryOp::AddField { attr, .. } => input.contains(attr).then(|| attr.clone()),
            UnaryOp::SurrogateKey { surrogate, key, .. } if surrogate != key => {
                input.contains(surrogate).then(|| surrogate.clone())
            }
            UnaryOp::Aggregate { agg, .. } => agg
                .aggregates
                .iter()
                .find(|s| s.output != s.input && agg.group_by.contains(&s.output))
                .map(|s| s.output.clone()),
            _ => None,
        };
        if let Some(attr) = collision {
            return Err(CoreError::Schema(format!(
                "operation {self} would generate `{attr}`, which already names a \
                 different attribute here (naming principle violation)"
            )));
        }
        if let UnaryOp::Aggregate { agg, .. } = self {
            // Aggregation rebuilds the schema wholesale: groupers then
            // aggregate outputs.
            let mut out: Schema = agg.group_by.iter().cloned().collect();
            for a in &agg.aggregates {
                out.push(a.output.clone());
            }
            return Ok(out);
        }
        let dropped = self.projected_out(input);
        let mut out = input.difference(&dropped);
        for a in self.generated().iter() {
            out.push(a.clone());
        }
        Ok(out)
    }

    /// Row-wise operations act on each tuple independently; they distribute
    /// over (and factorize through) union, difference and intersection.
    /// Blocking operations (`γ`, dedup, PK check) do not: e.g.
    /// `γ(A) ∪ γ(B) ≠ γ(A ∪ B)`.
    pub fn is_row_wise(&self) -> bool {
        match self {
            UnaryOp::Filter { .. }
            | UnaryOp::NotNull { .. }
            | UnaryOp::Function(_)
            | UnaryOp::ProjectOut(_)
            | UnaryOp::AddField { .. }
            | UnaryOp::SurrogateKey { .. } => true,
            UnaryOp::PkCheck { .. } | UnaryOp::Dedup { .. } | UnaryOp::Aggregate { .. } => false,
        }
    }

    /// Short operator name for display and post-conditions.
    pub fn op_name(&self) -> String {
        match self {
            UnaryOp::Filter { .. } => "σ".to_owned(),
            UnaryOp::NotNull { .. } => "NN".to_owned(),
            UnaryOp::PkCheck { .. } => "PK".to_owned(),
            UnaryOp::Dedup { .. } => "DD".to_owned(),
            UnaryOp::Function(f) => f.function.clone(),
            UnaryOp::Aggregate { agg, .. } => {
                let funcs: Vec<&str> = agg.aggregates.iter().map(|a| a.func.name()).collect();
                format!("γ-{}", funcs.join("/"))
            }
            UnaryOp::ProjectOut(_) => "π-out".to_owned(),
            UnaryOp::AddField { .. } => "ADD".to_owned(),
            UnaryOp::SurrogateKey { .. } => "SK".to_owned(),
        }
    }

    /// Structural semantic equality — "same operation in terms of algebraic
    /// expression" (homologous condition (b), §3.2). Selectivity estimates
    /// are metadata, not semantics, so they are ignored.
    pub fn same_semantics(&self, other: &UnaryOp) -> bool {
        use UnaryOp::*;
        match (self, other) {
            (Filter { predicate: p1, .. }, Filter { predicate: p2, .. }) => p1 == p2,
            (NotNull { attr: a1, .. }, NotNull { attr: a2, .. }) => a1 == a2,
            (PkCheck { key: k1, .. }, PkCheck { key: k2, .. }) => k1 == k2,
            (Dedup { .. }, Dedup { .. }) => true,
            (Function(f1), Function(f2)) => f1 == f2,
            (Aggregate { agg: g1, .. }, Aggregate { agg: g2, .. }) => g1 == g2,
            (ProjectOut(a1), ProjectOut(a2)) => a1 == a2,
            (
                AddField {
                    attr: a1,
                    value: v1,
                },
                AddField {
                    attr: a2,
                    value: v2,
                },
            ) => a1 == a2 && v1 == v2,
            (
                SurrogateKey {
                    key: k1,
                    surrogate: s1,
                    lookup: l1,
                },
                SurrogateKey {
                    key: k2,
                    surrogate: s2,
                    lookup: l2,
                },
            ) => k1 == k2 && s1 == s2 && l1 == l2,
            _ => false,
        }
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnaryOp::Filter { predicate, .. } => write!(f, "σ({predicate})"),
            UnaryOp::NotNull { attr, .. } => write!(f, "NN({attr})"),
            UnaryOp::PkCheck { key, .. } => {
                write!(f, "PK({})", join_attrs(key))
            }
            UnaryOp::Dedup { .. } => write!(f, "DD()"),
            UnaryOp::Function(fa) => {
                write!(
                    f,
                    "{}({})->{}",
                    fa.function,
                    join_attrs(&fa.inputs),
                    fa.output
                )
            }
            UnaryOp::Aggregate { agg, .. } => {
                write!(f, "{}({})", self.op_name(), join_attrs(&agg.group_by))
            }
            UnaryOp::ProjectOut(attrs) => write!(f, "π-out({})", join_attrs(attrs)),
            UnaryOp::AddField { attr, value } => write!(f, "ADD({attr}={value})"),
            UnaryOp::SurrogateKey { key, surrogate, .. } => {
                write!(f, "SK({key}->{surrogate})")
            }
        }
    }
}

fn join_attrs(attrs: &[Attr]) -> String {
    attrs
        .iter()
        .map(|a| a.name().to_owned())
        .collect::<Vec<_>>()
        .join(",")
}

/// A binary activity operation.
#[derive(Debug, Clone, PartialEq)]
pub enum BinaryOp {
    /// Bag union of two flows with identical attribute sets.
    Union,
    /// Equi-join on the listed attributes (present in both inputs).
    Join(Vec<Attr>),
    /// Bag difference `left − right`.
    Difference,
    /// Bag intersection.
    Intersection,
}

impl BinaryOp {
    /// Is the operator commutative in its inputs? Determines whether the
    /// state signature may canonicalize branch order (§4.1).
    pub fn is_commutative(&self) -> bool {
        matches!(
            self,
            BinaryOp::Union | BinaryOp::Intersection | BinaryOp::Join(_)
        )
    }

    /// Functionality schema (the attributes the operator itself inspects).
    pub fn functionality(&self) -> Schema {
        match self {
            BinaryOp::Join(on) => on.iter().cloned().collect(),
            _ => Schema::empty(),
        }
    }

    /// Output schema given both input schemata. Union/difference/
    /// intersection require set-equal schemata; join concatenates.
    pub fn output(&self, left: &Schema, right: &Schema) -> Result<Schema> {
        match self {
            BinaryOp::Union | BinaryOp::Difference | BinaryOp::Intersection => {
                if !left.same_attrs(right) {
                    return Err(CoreError::Schema(format!(
                        "{self} requires identical attribute sets, got {left} vs {right}"
                    )));
                }
                Ok(left.clone())
            }
            BinaryOp::Join(on) => {
                for a in on {
                    if !left.contains(a) || !right.contains(a) {
                        return Err(CoreError::Schema(format!(
                            "join attribute `{a}` missing from an input ({left} / {right})"
                        )));
                    }
                }
                // Join keys appear once; remaining right attrs appended.
                Ok(left.union(right))
            }
        }
    }

    /// Short operator name.
    pub fn op_name(&self) -> &'static str {
        match self {
            BinaryOp::Union => "U",
            BinaryOp::Join(_) => "JOIN",
            BinaryOp::Difference => "DIFF",
            BinaryOp::Intersection => "INTERSECT",
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryOp::Join(on) => write!(f, "JOIN({})", join_attrs(on)),
            other => f.write_str(other.op_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abcd() -> Schema {
        Schema::of(["a", "b", "c", "d"])
    }

    #[test]
    fn filter_schemata() {
        let op = UnaryOp::filter(Predicate::gt("b", 5));
        assert_eq!(op.functionality(), Schema::of(["b"]));
        assert!(op.generated().is_empty());
        assert!(op.projected_out(&abcd()).is_empty());
        assert_eq!(op.output(&abcd()).unwrap(), abcd());
    }

    #[test]
    fn output_fails_when_functionality_missing() {
        let op = UnaryOp::filter(Predicate::gt("z", 5));
        assert!(op.output(&abcd()).is_err());
    }

    #[test]
    fn function_replaces_input_attr() {
        // $2€: consumes dollar_cost, emits euro_cost.
        let op = UnaryOp::function("dollar2euro", ["dollar_cost"], "euro_cost");
        let input = Schema::of(["pkey", "dollar_cost"]);
        assert_eq!(op.functionality(), Schema::of(["dollar_cost"]));
        assert_eq!(op.generated(), Schema::of(["euro_cost"]));
        assert_eq!(op.projected_out(&input), Schema::of(["dollar_cost"]));
        assert_eq!(
            op.output(&input).unwrap(),
            Schema::of(["pkey", "euro_cost"])
        );
    }

    #[test]
    fn in_place_function_generates_nothing() {
        // A2E: American date → European date, same reference name (§3.1).
        let op = UnaryOp::function("am2eu", ["date"], "date");
        let input = Schema::of(["pkey", "date"]);
        assert!(op.generated().is_empty());
        assert!(op.projected_out(&input).is_empty());
        assert_eq!(op.output(&input).unwrap(), input);
    }

    #[test]
    fn aggregation_rebuilds_schema() {
        let op = UnaryOp::aggregate(Aggregation::sum(
            ["pkey", "source", "date"],
            "euro_cost",
            "euro_cost",
        ));
        let input = Schema::of(["pkey", "source", "date", "dept", "euro_cost"]);
        assert_eq!(
            op.output(&input).unwrap(),
            Schema::of(["pkey", "source", "date", "euro_cost"])
        );
        assert_eq!(op.projected_out(&input), Schema::of(["dept"]));
        // Aggregate outputs are always generated, even under a reused name:
        // SUM(€COST) is a new entity (blocks σ push-down past γ).
        assert_eq!(op.generated(), Schema::of(["euro_cost"]));
    }

    #[test]
    fn aggregation_with_fresh_output_generates() {
        let op = UnaryOp::aggregate(Aggregation::new(
            ["k"],
            vec![AggSpec {
                func: AggFunc::Count,
                input: Attr::new("v"),
                output: Attr::new("cnt"),
            }],
        ));
        assert_eq!(op.generated(), Schema::of(["cnt"]));
        let input = Schema::of(["k", "v"]);
        assert_eq!(op.output(&input).unwrap(), Schema::of(["k", "cnt"]));
    }

    #[test]
    fn surrogate_key_swaps_key_for_surrogate() {
        let op = UnaryOp::surrogate_key("pkey", "skey", "LOOKUP_PARTS");
        let input = Schema::of(["pkey", "cost"]);
        assert_eq!(op.output(&input).unwrap(), Schema::of(["cost", "skey"]));
        assert_eq!(op.functionality(), Schema::of(["pkey"]));
        assert_eq!(op.generated(), Schema::of(["skey"]));
        assert_eq!(op.projected_out(&input), Schema::of(["pkey"]));
    }

    #[test]
    fn project_out_drops_attrs() {
        let op = UnaryOp::project_out(["b", "d"]);
        assert_eq!(op.output(&abcd()).unwrap(), Schema::of(["a", "c"]));
    }

    #[test]
    fn add_field_appends() {
        let op = UnaryOp::AddField {
            attr: Attr::new("src"),
            value: Scalar::from("S1"),
        };
        assert_eq!(
            op.output(&Schema::of(["a"])).unwrap(),
            Schema::of(["a", "src"])
        );
        assert!(op.functionality().is_empty());
    }

    #[test]
    fn row_wise_classification() {
        assert!(UnaryOp::filter(Predicate::True).is_row_wise());
        assert!(UnaryOp::function("f", ["a"], "b").is_row_wise());
        assert!(UnaryOp::surrogate_key("k", "s", "L").is_row_wise());
        assert!(!UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")).is_row_wise());
        assert!(!UnaryOp::Dedup { selectivity: 1.0 }.is_row_wise());
        assert!(!UnaryOp::PkCheck {
            key: vec![Attr::new("k")],
            selectivity: 1.0
        }
        .is_row_wise());
    }

    #[test]
    fn selectivity_defaults_and_override() {
        let op = UnaryOp::filter(Predicate::True);
        assert_eq!(op.selectivity(), 1.0);
        let op = op.with_selectivity(0.25);
        assert_eq!(op.selectivity(), 0.25);
        // 1:1 ops ignore the override.
        let f = UnaryOp::function("f", ["a"], "b").with_selectivity(0.5);
        assert_eq!(f.selectivity(), 1.0);
    }

    #[test]
    #[should_panic(expected = "selectivity must be in (0, 1]")]
    fn zero_selectivity_rejected() {
        let _ = UnaryOp::filter(Predicate::True).with_selectivity(0.0);
    }

    #[test]
    fn same_semantics_ignores_selectivity() {
        let a = UnaryOp::filter(Predicate::gt("x", 1)).with_selectivity(0.3);
        let b = UnaryOp::filter(Predicate::gt("x", 1)).with_selectivity(0.9);
        assert!(a.same_semantics(&b));
        let c = UnaryOp::filter(Predicate::gt("x", 2));
        assert!(!a.same_semantics(&c));
    }

    #[test]
    fn union_requires_matching_schemas() {
        let l = Schema::of(["a", "b"]);
        let r = Schema::of(["b", "a"]);
        assert_eq!(BinaryOp::Union.output(&l, &r).unwrap(), l);
        let bad = Schema::of(["a", "c"]);
        assert!(BinaryOp::Union.output(&l, &bad).is_err());
    }

    #[test]
    fn join_concatenates_and_checks_keys() {
        let l = Schema::of(["k", "x"]);
        let r = Schema::of(["k", "y"]);
        let j = BinaryOp::Join(vec![Attr::new("k")]);
        assert_eq!(j.output(&l, &r).unwrap(), Schema::of(["k", "x", "y"]));
        let bad = Schema::of(["z", "y"]);
        assert!(j.output(&l, &bad).is_err());
    }

    #[test]
    fn difference_not_commutative() {
        assert!(!BinaryOp::Difference.is_commutative());
        assert!(BinaryOp::Union.is_commutative());
    }

    #[test]
    fn display_forms() {
        assert_eq!(UnaryOp::not_null("cost").to_string(), "NN(cost)");
        assert_eq!(
            UnaryOp::function("dollar2euro", ["dc"], "ec").to_string(),
            "dollar2euro(dc)->ec"
        );
        assert_eq!(BinaryOp::Union.to_string(), "U");
        assert_eq!(BinaryOp::Join(vec![Attr::new("k")]).to_string(), "JOIN(k)");
    }
}
