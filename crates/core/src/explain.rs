//! Explain an optimization: a human-readable account of how an optimized
//! state differs from the original — which activities moved toward the
//! sources, which were distributed into parallel flows, which were
//! factorized into one.
//!
//! The stable activity identifiers (§4.1) make this possible without any
//! diffing heuristics: a [`crate::activity::ActivityId::Cloned`] id *is*
//! the record of a Distribute, a
//! [`crate::activity::ActivityId::Factored`] id of a Factorize, and
//! position changes of surviving base ids are Swaps.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write;

use crate::activity::ActivityId;
use crate::error::Result;
use crate::opt::SearchOutcome;
use crate::workflow::Workflow;

/// One difference between two states.
#[derive(Debug, Clone, PartialEq)]
pub enum EditKind {
    /// The activity was cloned into the flows converging to a binary
    /// activity (a Distribute survived into the final state).
    Distributed {
        /// The original activity's identifier.
        original: ActivityId,
        /// Number of clones in the final state.
        clones: usize,
    },
    /// Two (or more) homologous activities were replaced by one (a
    /// Factorize survived).
    Factorized {
        /// The replaced activities' identifiers.
        originals: Vec<ActivityId>,
    },
    /// The activity moved earlier in the execution order (pushed toward
    /// the sources).
    MovedEarlier {
        /// The activity.
        id: ActivityId,
        /// Positions gained in the topological order.
        by: usize,
    },
    /// The activity moved later in the execution order.
    MovedLater {
        /// The activity.
        id: ActivityId,
        /// Positions lost in the topological order.
        by: usize,
    },
}

/// A difference plus display context (labels).
#[derive(Debug, Clone, PartialEq)]
pub struct Edit {
    /// What happened.
    pub kind: EditKind,
    /// The label of the activity concerned (from the optimized state where
    /// it survives, from the original otherwise).
    pub label: String,
}

impl fmt::Display for Edit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EditKind::Distributed { original, clones } => write!(
                f,
                "DIS: `{}` (id {original}) was distributed into {clones} parallel flows",
                self.label
            ),
            EditKind::Factorized { originals } => {
                let ids: Vec<String> = originals.iter().map(ActivityId::to_string).collect();
                write!(
                    f,
                    "FAC: homologous `{}` (ids {}) were factorized into one activity on the joint flow",
                    self.label,
                    ids.join(", ")
                )
            }
            EditKind::MovedEarlier { id, by } => write!(
                f,
                "SWA: `{}` (id {id}) moved {by} position(s) toward the sources",
                self.label
            ),
            EditKind::MovedLater { id, by } => write!(
                f,
                "SWA: `{}` (id {id}) moved {by} position(s) toward the targets",
                self.label
            ),
        }
    }
}

/// Compare two states of the same workflow lineage and list the surviving
/// structural edits, most significant first (structure changes before pure
/// reorderings).
pub fn explain(original: &Workflow, optimized: &Workflow) -> Result<Vec<Edit>> {
    let mut edits = Vec::new();

    // Index both states by activity id, with topological positions.
    let index = |wf: &Workflow| -> Result<BTreeMap<ActivityId, (usize, String)>> {
        let mut map = BTreeMap::new();
        for (pos, node) in wf.activities()?.into_iter().enumerate() {
            let act = wf.graph().activity(node)?;
            map.insert(act.id.clone(), (pos, act.label.clone()));
        }
        Ok(map)
    };
    let before = index(original)?;
    let after = index(optimized)?;

    // Distributions: clones grouped by their original id.
    let mut clones: BTreeMap<ActivityId, (usize, String)> = BTreeMap::new();
    for (id, (_, label)) in &after {
        if let ActivityId::Cloned(of, _) = id {
            let entry = clones.entry((**of).clone()).or_insert((0, label.clone()));
            entry.0 += 1;
        }
    }
    for (original_id, (count, label)) in clones {
        edits.push(Edit {
            kind: EditKind::Distributed {
                original: original_id,
                clones: count,
            },
            label,
        });
    }

    // Factorizations: factored ids in the optimized state.
    for (id, (_, label)) in &after {
        if let ActivityId::Factored(a, b) = id {
            edits.push(Edit {
                kind: EditKind::Factorized {
                    originals: vec![(**a).clone(), (**b).clone()],
                },
                label: label.clone(),
            });
        }
    }

    // Reorderings of surviving base activities.
    for (id, (pos_before, _)) in &before {
        if let Some((pos_after, label)) = after.get(id) {
            if pos_after < pos_before {
                edits.push(Edit {
                    kind: EditKind::MovedEarlier {
                        id: id.clone(),
                        by: pos_before - pos_after,
                    },
                    label: label.clone(),
                });
            } else if pos_after > pos_before {
                edits.push(Edit {
                    kind: EditKind::MovedLater {
                        id: id.clone(),
                        by: pos_after - pos_before,
                    },
                    label: label.clone(),
                });
            }
        }
    }
    Ok(edits)
}

/// Render an explanation as one block of text (one edit per line), or a
/// "no changes" note.
pub fn explain_text(original: &Workflow, optimized: &Workflow) -> Result<String> {
    let edits = explain(original, optimized)?;
    if edits.is_empty() {
        return Ok("no structural changes — the initial state was already optimal".to_owned());
    }
    Ok(edits
        .iter()
        .map(Edit::to_string)
        .collect::<Vec<_>>()
        .join("\n"))
}

/// Render a human-readable account of how a search *behaved* — the
/// companion of [`explain_text`], which says what the search *found*. Pulls
/// everything from [`SearchOutcome::stats`] (plus the phase snapshots), so
/// it works identically for ES, HS, HS-Greedy and Beam.
pub fn search_report(outcome: &SearchOutcome) -> String {
    let s = &outcome.stats;
    let mut out = String::with_capacity(512);
    let _ = writeln!(out, "search report — {}", s.algorithm);
    let _ = writeln!(
        out,
        "  states     : {} generated = {} deduplicated + {} expanded + {} pruned{}",
        s.generated,
        s.deduplicated,
        s.expanded,
        s.pruned,
        if s.reconciles() {
            ""
        } else {
            "  [ACCOUNTING MISMATCH]"
        }
    );
    let _ = writeln!(
        out,
        "  evaluation : {} delta-repriced, {} full-priced ({:.1}% delta)",
        s.repriced_delta,
        s.repriced_full,
        100.0 * s.delta_fraction()
    );
    if s.beam_width > 0 {
        let _ = writeln!(
            out,
            "  beam       : width {}, {} states truncated from frontiers",
            s.beam_width, s.truncated_states
        );
    }
    if s.visited_shards > 0 {
        let _ = writeln!(
            out,
            "  visited set: {} shards, occupancy {}–{}",
            s.visited_shards, s.visited_shard_min, s.visited_shard_max
        );
    }
    let (hits, misses) = (s.memo_hits, s.memo_misses);
    if hits + misses > 0 {
        let _ = writeln!(
            out,
            "  move memo  : {} hits / {} misses ({:.1}% hit rate)",
            hits,
            misses,
            100.0 * hits as f64 / (hits + misses) as f64
        );
    }
    let _ = writeln!(
        out,
        "  rejections : {} transition attempts refused",
        s.rejections.total()
    );
    for (rule, count) in s.rejections.as_pairs() {
        if count > 0 {
            let note = if rule == "functionality_violated" {
                "  (the paper's $2€ guard)"
            } else {
                ""
            };
            let _ = writeln!(out, "      {rule:<24} {count}{note}");
        }
    }
    if !s.frontier_sizes.is_empty() {
        let sizes: Vec<String> = s.frontier_sizes.iter().map(usize::to_string).collect();
        let _ = writeln!(out, "  frontiers  : {}", sizes.join(", "));
    }
    if outcome.phase_stats.is_empty() {
        for p in &s.phases {
            let _ = writeln!(
                out,
                "  phase      : {} in {:.2} ms",
                p.phase,
                p.nanos as f64 / 1e6
            );
        }
    } else {
        for p in &outcome.phase_stats {
            let nanos = s
                .phases
                .iter()
                .find(|span| span.phase == p.phase)
                .map(|span| span.nanos);
            let timing = match nanos {
                Some(n) => format!(" in {:.2} ms", n as f64 / 1e6),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  phase      : {} — best {:.1}, {} states{}",
                p.phase, p.best_cost, p.visited_states, timing
            );
        }
    }
    let _ = writeln!(
        out,
        "  outcome    : best {:.1} from {:.1} ({:.1}% improvement), {} states, {:.2} ms{}",
        outcome.best_cost,
        outcome.initial_cost,
        outcome.improvement_pct(),
        outcome.visited_states,
        outcome.elapsed.as_secs_f64() * 1e3,
        if outcome.budget_exhausted {
            ", budget exhausted"
        } else {
            ""
        }
    );
    out
}

/// Render the adaptive loop's round trajectory — the feedback companion
/// of [`search_report`]: one line per calibrate → re-optimize round, with
/// the chosen plan's calibrated cost, its predicted-vs-observed target
/// error, and the calibration coverage that round searched under.
pub fn adaptive_report(report: &crate::opt::AdaptiveReport) -> String {
    let mut out = String::with_capacity(512);
    let _ = writeln!(
        out,
        "adaptive re-optimization — {}, {} round(s), {}",
        report.algorithm,
        report.rounds_used(),
        if report.converged {
            "converged"
        } else {
            "round budget exhausted"
        }
    );
    let _ = writeln!(
        out,
        "  {:<5} {:>14} {:>10} {:>10} {:>9}  plan",
        "round", "calibrated", "err(mean)", "err(max)", "seeded"
    );
    for r in &report.rounds {
        let _ = writeln!(
            out,
            "  {:<5} {:>14.1} {:>10.4} {:>10.4} {:>6}/{:<2}  {}{}",
            r.round,
            r.calibrated_cost,
            r.mean_rel_error,
            r.max_rel_error,
            r.seeded,
            r.seeded + r.misses,
            r.signature,
            if r.kept_incumbent {
                "  [incumbent kept]"
            } else {
                ""
            }
        );
    }
    let total = report.stats_total();
    let _ = writeln!(
        out,
        "  searches   : {} states generated across rounds \
         ({} delta-repriced, {} full-priced)",
        total.generated, total.repriced_delta, total.repriced_full
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::RowCountModel;
    use crate::opt::{HeuristicSearch, Optimizer};
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{BinaryOp, UnaryOp};
    use crate::transition::{Distribute, Factorize, Swap, Transition};
    use crate::workflow::WorkflowBuilder;

    fn converging() -> (Workflow, crate::graph::NodeId, crate::graph::NodeId) {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 512.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 512.0);
        let u = b.binary("U", BinaryOp::Union, s1, s2);
        let sel = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.25),
            u,
        );
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), sel);
        b.target("T", Schema::of(["sk", "v"]), sk);
        (b.build().unwrap(), u, sel)
    }

    #[test]
    fn identical_states_have_no_edits() {
        let (wf, _, _) = converging();
        assert!(explain(&wf, &wf).unwrap().is_empty());
        assert!(explain_text(&wf, &wf)
            .unwrap()
            .contains("no structural changes"));
    }

    #[test]
    fn distribution_is_reported() {
        let (wf, u, sel) = converging();
        let dis = Distribute::new(u, sel).apply(&wf).unwrap();
        let edits = explain(&wf, &dis).unwrap();
        assert!(
            edits
                .iter()
                .any(|e| matches!(e.kind, EditKind::Distributed { clones: 2, .. })),
            "{edits:?}"
        );
        let text = explain_text(&wf, &dis).unwrap();
        assert!(text.contains("DIS:"), "{text}");
        assert!(text.contains('σ'), "{text}");
    }

    #[test]
    fn factorization_is_reported() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["v"]), 8.0);
        let s2 = b.source("S2", Schema::of(["v"]), 8.0);
        let f1 = b.unary("σ1", UnaryOp::filter(Predicate::gt("v", 1)), s1);
        let f2 = b.unary("σ2", UnaryOp::filter(Predicate::gt("v", 1)), s2);
        let u = b.binary("U", BinaryOp::Union, f1, f2);
        b.target("T", Schema::of(["v"]), u);
        let wf = b.build().unwrap();
        let fac = Factorize::new(u, f1, f2).apply(&wf).unwrap();
        let edits = explain(&wf, &fac).unwrap();
        assert!(
            edits.iter().any(
                |e| matches!(&e.kind, EditKind::Factorized { originals } if originals.len() == 2)
            ),
            "{edits:?}"
        );
    }

    #[test]
    fn swaps_are_reported_as_moves() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 100.0);
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), s);
        let sel = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 1)).with_selectivity(0.1),
            sk,
        );
        b.target("T", Schema::of(["sk", "v"]), sel);
        let wf = b.build().unwrap();
        let swapped = Swap::new(sk, sel).apply(&wf).unwrap();
        let edits = explain(&wf, &swapped).unwrap();
        assert!(edits
            .iter()
            .any(|e| matches!(e.kind, EditKind::MovedEarlier { by: 1, .. })));
        assert!(edits
            .iter()
            .any(|e| matches!(e.kind, EditKind::MovedLater { by: 1, .. })));
    }

    #[test]
    fn full_optimization_explains_cleanly() {
        let (wf, _, _) = converging();
        let out = HeuristicSearch::new()
            .run(&wf, &RowCountModel::default())
            .unwrap();
        let text = explain_text(&wf, &out.best).unwrap();
        // The known optimum distributes both σ and SK.
        assert!(text.matches("DIS:").count() >= 1, "{text}");
    }

    #[test]
    fn search_report_renders_the_stats() {
        let (wf, _, _) = converging();
        let model = RowCountModel::default();
        let out = HeuristicSearch::new().run(&wf, &model).unwrap();
        let report = search_report(&out);
        assert!(report.contains("search report — HS"), "{report}");
        assert!(report.contains("generated ="), "{report}");
        assert!(report.contains("I swaps"), "{report}");
        assert!(!report.contains("ACCOUNTING MISMATCH"), "{report}");
        // ES renders the same sections through its single phase span, plus
        // the sharded visited-set occupancy line.
        let es = crate::opt::ExhaustiveSearch::new()
            .run(&wf, &model)
            .unwrap();
        let es_report = search_report(&es);
        assert!(es_report.contains("search report — ES"), "{es_report}");
        assert!(es_report.contains("move memo"), "{es_report}");
        assert!(es_report.contains("frontiers"), "{es_report}");
        assert!(es_report.contains("visited set: 16 shards"), "{es_report}");
        assert!(!es_report.contains("beam"), "{es_report}");
        // Beam adds its width/truncation line on top.
        let beam = crate::opt::BeamSearch::new()
            .with_width(2)
            .run(&wf, &model)
            .unwrap();
        let beam_report = search_report(&beam);
        assert!(
            beam_report.contains("search report — Beam"),
            "{beam_report}"
        );
        assert!(
            beam_report.contains("beam       : width 2"),
            "{beam_report}"
        );
        assert!(
            beam_report.contains("visited set: 16 shards"),
            "{beam_report}"
        );
    }
}
