//! Activities: the processing nodes of an ETL workflow.
//!
//! An activity is the paper's quadruple `A = (Id, I, O, S)` — a unique
//! identifier, input schemata, output schema and semantics. Identifiers stem
//! from the topological priority of the *initial* workflow (§4.1) and stay
//! attached to an activity through every transition, so state signatures stay
//! comparable across the whole search. Activities created *by* transitions
//! (factorization products, distribution clones, merges) carry structured
//! ids derived from their originators, which makes Factorize∘Distribute and
//! Merge∘Split exact involutions on ids.

use std::fmt;

use crate::error::Result;
use crate::scalar::Scalar;
use crate::schema::Schema;
use crate::semantics::{BinaryOp, UnaryOp};

/// Stable activity identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ActivityId {
    /// Priority in the initial workflow's topological order.
    Base(u32),
    /// A package of activities produced by a Merge transition.
    Merged(Vec<ActivityId>),
    /// Product of factorizing two non-clone activities.
    Factored(Box<ActivityId>, Box<ActivityId>),
    /// Clone `branch` of a distributed activity.
    Cloned(Box<ActivityId>, u32),
}

impl ActivityId {
    /// Identifier for the activity that replaces homologous `a` and `b`
    /// under Factorize. Factorizing the two clones of a previously
    /// distributed activity restores the original id, so FAC∘DIS is the
    /// identity on identifiers (keeps the state space finite, §4.1).
    pub fn factored(a: &ActivityId, b: &ActivityId) -> ActivityId {
        if let (ActivityId::Cloned(oa, _), ActivityId::Cloned(ob, _)) = (a, b) {
            if oa == ob {
                return (**oa).clone();
            }
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        ActivityId::Factored(Box::new(lo.clone()), Box::new(hi.clone()))
    }

    /// Identifiers for the two clones of `a` under Distribute. Distributing
    /// a previously factored activity restores the original ids (DIS∘FAC is
    /// the identity on identifiers).
    pub fn distributed(a: &ActivityId) -> (ActivityId, ActivityId) {
        if let ActivityId::Factored(x, y) = a {
            return ((**x).clone(), (**y).clone());
        }
        (
            ActivityId::Cloned(Box::new(a.clone()), 1),
            ActivityId::Cloned(Box::new(a.clone()), 2),
        )
    }

    /// Identifier of a Merge package.
    pub fn merged(parts: &[ActivityId]) -> ActivityId {
        ActivityId::Merged(parts.to_vec())
    }
}

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActivityId::Base(n) => write!(f, "{n}"),
            ActivityId::Merged(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            ActivityId::Factored(a, b) => write!(f, "{a}&{b}"),
            ActivityId::Cloned(a, k) => write!(f, "{a}'{k}"),
        }
    }
}

/// The semantics payload of an activity node.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// One input schema.
    Unary(UnaryOp),
    /// Two input schemata.
    Binary(BinaryOp),
    /// A merged linear chain of unary operations (Merge transition, §2.2):
    /// one node, applied front-to-back, that other transitions treat as an
    /// indivisible unit.
    Merged(Vec<UnaryOp>),
}

impl Op {
    /// Number of input schemata.
    pub fn arity(&self) -> usize {
        match self {
            Op::Unary(_) | Op::Merged(_) => 1,
            Op::Binary(_) => 2,
        }
    }

    /// The unary link chain: a one-element slice for [`Op::Unary`], the full
    /// chain for [`Op::Merged`], `None` for [`Op::Binary`]. Callers that have
    /// already checked arity can `ok_or` a typed error instead of carrying an
    /// `unreachable!` arm through a second match.
    pub fn unary_chain(&self) -> Option<&[UnaryOp]> {
        match self {
            Op::Unary(op) => Some(std::slice::from_ref(op)),
            Op::Merged(chain) => Some(chain),
            Op::Binary(_) => None,
        }
    }

    /// The binary operator, `None` for unary and merged activities — the
    /// arity-2 counterpart of [`Op::unary_chain`].
    pub fn binary(&self) -> Option<&BinaryOp> {
        match self {
            Op::Binary(op) => Some(op),
            Op::Unary(_) | Op::Merged(_) => None,
        }
    }
}

/// An activity node: identifier, semantics and (cached) schemata.
///
/// The input/output schemata are *derived* state — recomputed by
/// [`crate::schema_gen`] whenever a transition rewires the graph — kept on
/// the node so applicability checks and the cost model never re-walk the
/// graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Activity {
    /// Stable identifier (see [`ActivityId`]).
    pub id: ActivityId,
    /// Human-readable label, e.g. `"$2E"`.
    pub label: String,
    /// Semantics.
    pub op: Op,
    /// Input schemata, one per port (derived).
    pub inputs: Vec<Schema>,
    /// Output schema (derived).
    pub output: Schema,
}

impl Activity {
    /// Build an activity with empty (not-yet-derived) schemata.
    pub fn new(id: ActivityId, label: impl Into<String>, op: Op) -> Self {
        let arity = op.arity();
        Activity {
            id,
            label: label.into(),
            op,
            inputs: vec![Schema::empty(); arity],
            output: Schema::empty(),
        }
    }

    /// Is this a unary activity (including merged chains)?
    pub fn is_unary(&self) -> bool {
        self.op.arity() == 1
    }

    /// Is this a binary activity?
    pub fn is_binary(&self) -> bool {
        self.op.arity() == 2
    }

    /// The functionality (necessary) schema: attributes this activity needs
    /// from its providers. For a merged chain, an attribute generated by an
    /// earlier link satisfies a later link's need, so only externally-sourced
    /// attributes count.
    pub fn functionality(&self) -> Schema {
        match &self.op {
            Op::Unary(op) => op.functionality(),
            Op::Binary(op) => op.functionality(),
            Op::Merged(chain) => {
                let mut needed = Schema::empty();
                let mut available = Schema::empty();
                for op in chain {
                    for a in op.functionality().iter() {
                        if !available.contains(a) {
                            needed.push(a.clone());
                        }
                    }
                    available = available.union(&op.generated());
                }
                needed
            }
        }
    }

    /// The generated schema: attributes this activity creates that its input
    /// did not contain. For a merged chain, intermediate attributes that a
    /// later link projects out again do not escape; this is computed against
    /// the cached input schema.
    pub fn generated(&self) -> Schema {
        match &self.op {
            Op::Unary(op) => op.generated(),
            Op::Binary(_) => Schema::empty(),
            Op::Merged(_) => {
                let input = self.inputs.first().cloned().unwrap_or_default();
                self.output.difference(&input)
            }
        }
    }

    /// The projected-out schema relative to the cached input schema.
    pub fn projected_out(&self) -> Schema {
        match &self.op {
            Op::Unary(op) => {
                let input = self.inputs.first().cloned().unwrap_or_default();
                op.projected_out(&input)
            }
            Op::Binary(_) => Schema::empty(),
            Op::Merged(_) => {
                let input = self.inputs.first().cloned().unwrap_or_default();
                input.difference(&self.output)
            }
        }
    }

    /// Compute the output schema from given input schemata (does not touch
    /// the cached ones).
    pub fn derive_output(&self, inputs: &[Schema]) -> Result<Schema> {
        match &self.op {
            Op::Unary(op) => op.output(&inputs[0]),
            Op::Binary(op) => op.output(&inputs[0], &inputs[1]),
            Op::Merged(chain) => {
                let mut s = inputs[0].clone();
                for op in chain {
                    s = op.output(&s)?;
                }
                Ok(s)
            }
        }
    }

    /// Estimated |output| / |input| ratio (product across a merged chain).
    /// Binary operators report 1.0; their cardinality is the cost model's
    /// business.
    pub fn selectivity(&self) -> f64 {
        match &self.op {
            Op::Unary(op) => op.selectivity(),
            Op::Binary(_) => 1.0,
            Op::Merged(chain) => chain.iter().map(UnaryOp::selectivity).product(),
        }
    }

    /// Are all links of this activity row-wise (tuple-at-a-time)?
    pub fn is_row_wise(&self) -> bool {
        match &self.op {
            Op::Unary(op) => op.is_row_wise(),
            Op::Binary(_) => false,
            Op::Merged(chain) => chain.iter().all(UnaryOp::is_row_wise),
        }
    }

    /// The unary operation chain of this activity: a single-element slice
    /// for a plain unary activity, the full chain for a merged one, `None`
    /// for binary activities.
    pub fn unary_links(&self) -> Option<&[UnaryOp]> {
        self.op.unary_chain()
    }

    /// Homologous-activity test (§3.2): same algebraic expression and same
    /// functionality / generated / projected-out schemata. The "converging
    /// local groups" part of the definition is checked by the caller, which
    /// knows the graph.
    pub fn same_semantics(&self, other: &Activity) -> bool {
        match (&self.op, &other.op) {
            (Op::Unary(a), Op::Unary(b)) => a.same_semantics(b),
            (Op::Binary(a), Op::Binary(b)) => a == b,
            (Op::Merged(a), Op::Merged(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.same_semantics(y))
            }
            _ => false,
        }
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.id, self.label)
    }
}

/// Convenience constructor for filter activities used across tests.
pub fn unary(id: u32, label: &str, op: UnaryOp) -> Activity {
    Activity::new(ActivityId::Base(id), label, Op::Unary(op))
}

/// Convenience constructor for binary activities used across tests.
pub fn binary(id: u32, label: &str, op: BinaryOp) -> Activity {
    Activity::new(ActivityId::Base(id), label, Op::Binary(op))
}

/// Convenience constructor for an ADD-constant activity.
pub fn add_field(id: u32, label: &str, attr: &str, value: Scalar) -> Activity {
    Activity::new(
        ActivityId::Base(id),
        label,
        Op::Unary(UnaryOp::AddField {
            attr: attr.into(),
            value,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::Attr;

    #[test]
    fn id_display() {
        assert_eq!(ActivityId::Base(7).to_string(), "7");
        assert_eq!(
            ActivityId::merged(&[ActivityId::Base(4), ActivityId::Base(5)]).to_string(),
            "4+5"
        );
        let (c1, c2) = ActivityId::distributed(&ActivityId::Base(3));
        assert_eq!(c1.to_string(), "3'1");
        assert_eq!(c2.to_string(), "3'2");
    }

    #[test]
    fn factorize_of_clones_restores_original() {
        let orig = ActivityId::Base(9);
        let (c1, c2) = ActivityId::distributed(&orig);
        assert_eq!(ActivityId::factored(&c1, &c2), orig);
        // Order must not matter.
        assert_eq!(ActivityId::factored(&c2, &c1), orig);
    }

    #[test]
    fn distribute_of_factored_restores_pair() {
        let a = ActivityId::Base(3);
        let b = ActivityId::Base(6);
        let f = ActivityId::factored(&a, &b);
        assert_eq!(f.to_string(), "3&6");
        let (x, y) = ActivityId::distributed(&f);
        assert_eq!((x, y), (a, b));
    }

    #[test]
    fn factored_id_is_order_canonical() {
        let a = ActivityId::Base(3);
        let b = ActivityId::Base(6);
        assert_eq!(ActivityId::factored(&a, &b), ActivityId::factored(&b, &a));
    }

    #[test]
    fn clones_of_different_originals_do_not_collapse() {
        let (c1, _) = ActivityId::distributed(&ActivityId::Base(1));
        let (d1, _) = ActivityId::distributed(&ActivityId::Base(2));
        let f = ActivityId::factored(&c1, &d1);
        assert!(matches!(f, ActivityId::Factored(_, _)));
    }

    #[test]
    fn merged_chain_functionality_hides_internal_attrs() {
        // chain: f(a)->x  then  σ(x > 0): x is produced internally, so the
        // merged activity only needs `a` from its provider.
        let mut act = Activity::new(
            ActivityId::merged(&[ActivityId::Base(1), ActivityId::Base(2)]),
            "f+σ",
            Op::Merged(vec![
                UnaryOp::function("f", ["a"], "x"),
                UnaryOp::filter(Predicate::gt("x", 0)),
            ]),
        );
        assert_eq!(act.functionality(), Schema::of(["a"]));
        act.inputs = vec![Schema::of(["a", "b"])];
        act.output = act.derive_output(&[Schema::of(["a", "b"])]).unwrap();
        assert_eq!(act.output, Schema::of(["b", "x"]));
        assert_eq!(act.generated(), Schema::of(["x"]));
        assert_eq!(act.projected_out(), Schema::of(["a"]));
    }

    #[test]
    fn merged_selectivity_is_product() {
        let act = Activity::new(
            ActivityId::Base(1),
            "m",
            Op::Merged(vec![
                UnaryOp::filter(Predicate::True).with_selectivity(0.5),
                UnaryOp::filter(Predicate::True).with_selectivity(0.4),
            ]),
        );
        assert!((act.selectivity() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn binary_activity_basics() {
        let act = binary(7, "U", BinaryOp::Union);
        assert!(act.is_binary());
        assert_eq!(act.op.arity(), 2);
        assert!(act.generated().is_empty());
        let out = act
            .derive_output(&[Schema::of(["a"]), Schema::of(["a"])])
            .unwrap();
        assert_eq!(out, Schema::of(["a"]));
    }

    #[test]
    fn same_semantics_requires_same_variant() {
        let f1 = unary(1, "σ", UnaryOp::filter(Predicate::gt("x", 1)));
        let f2 = unary(9, "σ'", UnaryOp::filter(Predicate::gt("x", 1)));
        assert!(f1.same_semantics(&f2));
        let u = binary(3, "U", BinaryOp::Union);
        assert!(!f1.same_semantics(&u));
    }

    #[test]
    fn join_functionality_is_key() {
        let j = binary(4, "J", BinaryOp::Join(vec![Attr::new("k")]));
        assert_eq!(j.functionality(), Schema::of(["k"]));
    }

    #[test]
    fn op_accessors_are_total_inverses_by_arity() {
        let una = Op::Unary(UnaryOp::filter(Predicate::True));
        let mer = Op::Merged(vec![
            UnaryOp::filter(Predicate::True),
            UnaryOp::filter(Predicate::True),
        ]);
        let bin = Op::Binary(BinaryOp::Union);
        assert_eq!(una.unary_chain().map(<[_]>::len), Some(1));
        assert_eq!(mer.unary_chain().map(<[_]>::len), Some(2));
        assert!(bin.unary_chain().is_none());
        assert_eq!(bin.binary(), Some(&BinaryOp::Union));
        assert!(una.binary().is_none());
        assert!(mer.binary().is_none());
    }
}
