//! Row-level predicates for selection activities.
//!
//! Predicates are pure data in the core crate (the optimizer only ever needs
//! the set of attributes a predicate mentions — its *functionality schema* —
//! plus structural equality for homologous-activity detection). The
//! `etlopt-engine` crate evaluates them over rows with SQL-style three-valued
//! logic.

use std::fmt;

use crate::scalar::Scalar;
use crate::schema::{Attr, Schema};

/// Comparison operator for atomic predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// SQL-ish rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A boolean predicate over the attributes of a single row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `attr <op> constant`.
    Cmp {
        /// Left-hand attribute.
        attr: Attr,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand constant.
        value: Scalar,
    },
    /// `attr <op> attr`.
    CmpAttr {
        /// Left-hand attribute.
        left: Attr,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand attribute.
        right: Attr,
    },
    /// `attr IS NOT NULL` — the paper's `NN` activity.
    IsNotNull(Attr),
    /// `attr IS NULL`.
    IsNull(Attr),
    /// `attr IN (v1, …, vk)` — domain/value checks.
    InList {
        /// Tested attribute.
        attr: Attr,
        /// Allowed values.
        values: Vec<Scalar>,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Constant TRUE (useful for generated workloads).
    True,
}

impl Predicate {
    /// `attr = value`.
    pub fn eq(attr: impl Into<Attr>, value: impl Into<Scalar>) -> Self {
        Predicate::Cmp {
            attr: attr.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }
    /// `attr <> value`.
    pub fn ne(attr: impl Into<Attr>, value: impl Into<Scalar>) -> Self {
        Predicate::Cmp {
            attr: attr.into(),
            op: CmpOp::Ne,
            value: value.into(),
        }
    }
    /// `attr > value`.
    pub fn gt(attr: impl Into<Attr>, value: impl Into<Scalar>) -> Self {
        Predicate::Cmp {
            attr: attr.into(),
            op: CmpOp::Gt,
            value: value.into(),
        }
    }
    /// `attr >= value`.
    pub fn ge(attr: impl Into<Attr>, value: impl Into<Scalar>) -> Self {
        Predicate::Cmp {
            attr: attr.into(),
            op: CmpOp::Ge,
            value: value.into(),
        }
    }
    /// `attr < value`.
    pub fn lt(attr: impl Into<Attr>, value: impl Into<Scalar>) -> Self {
        Predicate::Cmp {
            attr: attr.into(),
            op: CmpOp::Lt,
            value: value.into(),
        }
    }
    /// `attr <= value`.
    pub fn le(attr: impl Into<Attr>, value: impl Into<Scalar>) -> Self {
        Predicate::Cmp {
            attr: attr.into(),
            op: CmpOp::Le,
            value: value.into(),
        }
    }
    /// `attr IS NOT NULL`.
    pub fn not_null(attr: impl Into<Attr>) -> Self {
        Predicate::IsNotNull(attr.into())
    }
    /// `attr IN (values…)`.
    pub fn in_list<I, V>(attr: impl Into<Attr>, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Scalar>,
    {
        Predicate::InList {
            attr: attr.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }
    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }
    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }
    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// The attributes the predicate mentions — its functionality schema.
    pub fn referenced_attrs(&self) -> Schema {
        let mut out = Schema::empty();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs(&self, out: &mut Schema) {
        match self {
            Predicate::Cmp { attr, .. }
            | Predicate::IsNotNull(attr)
            | Predicate::IsNull(attr)
            | Predicate::InList { attr, .. } => out.push(attr.clone()),
            Predicate::CmpAttr { left, right, .. } => {
                out.push(left.clone());
                out.push(right.clone());
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            Predicate::Not(p) => p.collect_attrs(out),
            Predicate::True => {}
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { attr, op, value } => write!(f, "{attr}{}{value}", op.symbol()),
            Predicate::CmpAttr { left, op, right } => write!(f, "{left}{}{right}", op.symbol()),
            Predicate::IsNotNull(a) => write!(f, "{a} IS NOT NULL"),
            Predicate::IsNull(a) => write!(f, "{a} IS NULL"),
            Predicate::InList { attr, values } => {
                write!(f, "{attr} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT {p}"),
            Predicate::True => write!(f, "TRUE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let p = Predicate::gt("euro_cost", 100.0);
        assert_eq!(
            p,
            Predicate::Cmp {
                attr: Attr::new("euro_cost"),
                op: CmpOp::Gt,
                value: Scalar::Float(100.0)
            }
        );
    }

    #[test]
    fn referenced_attrs_walks_the_tree() {
        let p = Predicate::gt("a", 1)
            .and(Predicate::not_null("b").or(Predicate::eq("c", "x")))
            .not();
        let attrs = p.referenced_attrs();
        assert_eq!(attrs, Schema::of(["a", "b", "c"]));
    }

    #[test]
    fn referenced_attrs_dedups() {
        let p = Predicate::gt("a", 1).and(Predicate::lt("a", 10));
        assert_eq!(p.referenced_attrs(), Schema::of(["a"]));
    }

    #[test]
    fn cmp_attr_mentions_both_sides() {
        let p = Predicate::CmpAttr {
            left: Attr::new("x"),
            op: CmpOp::Le,
            right: Attr::new("y"),
        };
        assert_eq!(p.referenced_attrs(), Schema::of(["x", "y"]));
    }

    #[test]
    fn true_mentions_nothing() {
        assert!(Predicate::True.referenced_attrs().is_empty());
    }

    #[test]
    fn display_is_sql_like() {
        let p = Predicate::gt("cost", 100).and(Predicate::not_null("pkey"));
        assert_eq!(p.to_string(), "(cost>100 AND pkey IS NOT NULL)");
        let q = Predicate::in_list("dept", ["a", "b"]);
        assert_eq!(q.to_string(), "dept IN ('a','b')");
    }
}
