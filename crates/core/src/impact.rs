//! Impact analysis and attribute lineage (§6 — the paper's future work:
//! "the impact analysis of changes and failures in the workflow
//! environment").
//!
//! Two directions over the same machinery:
//!
//! * **Forward impact** — given a change at a node (an attribute dropped or
//!   renamed at a source, an activity failing), which downstream activities
//!   and which warehouse targets are affected?
//! * **Backward lineage** — given a target attribute, which source
//!   attributes feed it, through which function applications and
//!   aggregations? (The companion problem of Cui & Widom's lineage tracing,
//!   ref. [5] of the paper.)
//!
//! Both respect the schema semantics of §3.2: a function *consumes* its
//! functionality schema and *produces* its generated schema, so lineage
//! flows through `$2€` from `dollar_cost` to `euro_cost`; attributes that
//! merely pass through an activity are transparent to it.

use std::collections::BTreeSet;

use crate::activity::Op;
use crate::error::Result;
use crate::graph::{Node, NodeId};
use crate::schema::Attr;
use crate::semantics::UnaryOp;
use crate::workflow::Workflow;

/// A hypothetical change to analyze.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    /// An attribute disappears from a source recordset (schema drift).
    DropAttribute {
        /// The source recordset.
        source: NodeId,
        /// The vanished attribute.
        attr: Attr,
    },
    /// An attribute is renamed at a source recordset.
    RenameAttribute {
        /// The source recordset.
        source: NodeId,
        /// Old reference name.
        from: Attr,
        /// New reference name.
        to: Attr,
    },
    /// An activity fails at run time (its whole output is unavailable).
    ActivityFailure {
        /// The failing activity.
        node: NodeId,
    },
}

/// The result of an impact analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ImpactReport {
    /// Activities whose input is (transitively) touched by the change.
    pub affected_activities: Vec<NodeId>,
    /// Activities that would actually *break*: their functionality schema
    /// is no longer satisfied under the change.
    pub broken_activities: Vec<NodeId>,
    /// Target recordsets whose loaded data is touched.
    pub affected_targets: Vec<NodeId>,
}

impl ImpactReport {
    /// Nothing is affected.
    pub fn is_clean(&self) -> bool {
        self.affected_activities.is_empty()
            && self.broken_activities.is_empty()
            && self.affected_targets.is_empty()
    }
}

/// How one activity relates to one of its input attributes.
fn consumes(op_links: &[UnaryOp], attr: &Attr) -> bool {
    op_links.iter().any(|op| op.functionality().contains(attr))
}

/// The attributes an activity derives *from* `attr` (identity if it passes
/// through, the generated attribute(s) if `attr` is in the functionality
/// schema of a producing link, nothing if it is projected out).
fn propagate_through(activity_op: &Op, input_has: &Attr) -> Vec<Attr> {
    let links: Vec<UnaryOp> = match activity_op {
        Op::Unary(op) => vec![op.clone()],
        Op::Merged(chain) => chain.clone(),
        Op::Binary(_) => return vec![input_has.clone()], // unions/joins pass attributes through
    };
    let mut current: BTreeSet<Attr> = BTreeSet::new();
    current.insert(input_has.clone());
    for op in &links {
        let mut next: BTreeSet<Attr> = BTreeSet::new();
        for a in &current {
            let consumed = op.functionality().contains(a);
            if consumed {
                // Tainted outputs: everything this op generates…
                for g in op.generated().iter() {
                    next.insert(g.clone());
                }
                // …and, for in-place transforms and groupers, the attribute
                // itself survives under its own name.
                let survives = match op {
                    UnaryOp::Aggregate { agg, .. } => agg.group_by.contains(a),
                    UnaryOp::Function(f) => f.keep_inputs || f.output == *a,
                    UnaryOp::SurrogateKey { key, .. } => key != a,
                    _ => true,
                };
                if survives {
                    next.insert(a.clone());
                }
            } else {
                // Pass-through, unless explicitly dropped.
                let dropped = match op {
                    UnaryOp::ProjectOut(attrs) => attrs.contains(a),
                    UnaryOp::Aggregate { agg, .. } => {
                        !agg.group_by.contains(a) && !agg.aggregates.iter().any(|s| s.output == *a)
                    }
                    _ => false,
                };
                if !dropped {
                    next.insert(a.clone());
                }
            }
        }
        current = next;
    }
    current.into_iter().collect()
}

/// Forward impact of a change.
pub fn analyze(wf: &Workflow, change: &Change) -> Result<ImpactReport> {
    match change {
        Change::DropAttribute { source, attr } => attribute_impact(wf, *source, attr, true),
        Change::RenameAttribute { source, from, .. } => {
            // A rename breaks exactly what a drop breaks (consumers look the
            // attribute up by its reference name); it merely also suggests
            // the fix (re-map the naming registry).
            attribute_impact(wf, *source, from, true)
        }
        Change::ActivityFailure { node } => {
            let down = crate::schema_gen::downstream_of(wf.graph(), &[*node])?;
            let mut report = ImpactReport::default();
            for id in down {
                if id == *node {
                    continue;
                }
                match wf.graph().node(id)? {
                    Node::Activity(_) => report.affected_activities.push(id),
                    Node::Recordset(_) => {
                        if wf.graph().consumers(id)?.is_empty() {
                            report.affected_targets.push(id);
                        }
                    }
                }
            }
            Ok(report)
        }
    }
}

/// Attribute-level forward taint walk.
fn attribute_impact(
    wf: &Workflow,
    source: NodeId,
    attr: &Attr,
    breaks: bool,
) -> Result<ImpactReport> {
    let graph = wf.graph();
    let mut report = ImpactReport::default();
    // tainted[node] = set of attribute names at that node's output that
    // derive from the changed attribute.
    let order = graph.topo_order()?;
    let mut tainted: Vec<Vec<Attr>> = vec![Vec::new(); graph_cap(&order)];
    if graph.contains(source) {
        tainted[source.0 as usize] = vec![attr.clone()];
    }
    for &id in &order {
        if id == source {
            continue;
        }
        // Union of providers' tainted sets.
        let mut incoming: BTreeSet<Attr> = BTreeSet::new();
        for p in graph.providers(id)?.into_iter().flatten() {
            for a in &tainted[p.0 as usize] {
                incoming.insert(a.clone());
            }
        }
        if incoming.is_empty() {
            continue;
        }
        match graph.node(id)? {
            Node::Recordset(_) => {
                tainted[id.0 as usize] = incoming.into_iter().collect();
                if graph.consumers(id)?.is_empty() {
                    report.affected_targets.push(id);
                }
            }
            Node::Activity(act) => {
                report.affected_activities.push(id);
                let links: Vec<UnaryOp> = match &act.op {
                    Op::Unary(op) => vec![op.clone()],
                    Op::Merged(chain) => chain.clone(),
                    Op::Binary(_) => Vec::new(),
                };
                if breaks && incoming.iter().any(|a| consumes(&links, a)) {
                    report.broken_activities.push(id);
                }
                let mut out: BTreeSet<Attr> = BTreeSet::new();
                for a in &incoming {
                    for derived in propagate_through(&act.op, a) {
                        // Only attributes that actually exist in the output
                        // schema can carry taint further.
                        if act.output.contains(&derived) {
                            out.insert(derived);
                        }
                    }
                }
                tainted[id.0 as usize] = out.into_iter().collect();
            }
        }
    }
    Ok(report)
}

fn graph_cap(order: &[NodeId]) -> usize {
    order.iter().map(|id| id.0 as usize + 1).max().unwrap_or(0)
}

/// One step of a lineage path: this attribute at this node.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LineageStep {
    /// The node.
    pub node: NodeId,
    /// The attribute name at that node.
    pub attr: Attr,
}

/// Backward lineage: which source attributes (at which source recordsets)
/// feed `attr` as observed at `node`? Walks providers backwards, inverting
/// function applications (output → inputs), surrogate keys (surrogate →
/// production key) and aggregations (aggregate output → aggregated input).
pub fn lineage(wf: &Workflow, node: NodeId, attr: &Attr) -> Result<Vec<LineageStep>> {
    let graph = wf.graph();
    let mut sources = BTreeSet::new();
    let mut frontier: Vec<LineageStep> = vec![LineageStep {
        node,
        attr: attr.clone(),
    }];
    let mut seen: BTreeSet<LineageStep> = frontier.iter().cloned().collect();
    while let Some(step) = frontier.pop() {
        let providers: Vec<NodeId> = graph.providers(step.node)?.into_iter().flatten().collect();
        if providers.is_empty() {
            // A true source: record it if the attribute exists here.
            if graph.node(step.node)?.output_schema().contains(&step.attr) {
                sources.insert(step);
            }
            continue;
        }
        // What did this node's op derive the attribute from?
        let upstream_names: Vec<Attr> = match graph.node(step.node)? {
            Node::Recordset(_) => vec![step.attr.clone()],
            Node::Activity(act) => {
                let links: Vec<UnaryOp> = match &act.op {
                    Op::Unary(op) => vec![op.clone()],
                    Op::Merged(chain) => chain.clone(),
                    Op::Binary(_) => vec![],
                };
                // Walk the chain backwards.
                let mut names = vec![step.attr.clone()];
                for op in links.iter().rev() {
                    let mut prev = Vec::new();
                    for n in &names {
                        match op {
                            UnaryOp::Function(f) if f.output == *n => {
                                prev.extend(f.inputs.iter().cloned());
                                if f.keep_inputs {
                                    prev.push(n.clone());
                                }
                            }
                            UnaryOp::SurrogateKey { key, surrogate, .. } if surrogate == n => {
                                prev.push(key.clone());
                            }
                            UnaryOp::Aggregate { agg, .. } => {
                                let mut mapped = false;
                                for s in &agg.aggregates {
                                    if s.output == *n {
                                        prev.push(s.input.clone());
                                        mapped = true;
                                    }
                                }
                                if !mapped {
                                    prev.push(n.clone());
                                }
                            }
                            _ => prev.push(n.clone()),
                        }
                    }
                    names = prev;
                }
                names
            }
        };
        for p in providers {
            let p_schema = graph.node(p)?.output_schema();
            for n in &upstream_names {
                if p_schema.contains(n) {
                    let next = LineageStep {
                        node: p,
                        attr: n.clone(),
                    };
                    if seen.insert(next.clone()) {
                        frontier.push(next);
                    }
                }
            }
        }
    }
    Ok(sources.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{Aggregation, BinaryOp};
    use crate::workflow::WorkflowBuilder;

    /// S1(pkey, dollar_cost) ─ $2€ ─┐
    ///                              U ─ σ(euro_cost) ─ DW
    /// S2(pkey, euro_cost) ─ NN ────┘
    fn sample() -> (Workflow, NodeId, NodeId, NodeId, NodeId) {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["pkey", "dollar_cost"]), 10.0);
        let s2 = b.source("S2", Schema::of(["pkey", "euro_cost"]), 10.0);
        let d2e = b.unary(
            "$2E",
            UnaryOp::function("dollar2euro", ["dollar_cost"], "euro_cost"),
            s1,
        );
        let nn = b.unary("NN", UnaryOp::not_null("euro_cost"), s2);
        let u = b.binary("U", BinaryOp::Union, d2e, nn);
        let sel = b.unary("σ", UnaryOp::filter(Predicate::gt("euro_cost", 100.0)), u);
        let dw = b.target("DW", Schema::of(["pkey", "euro_cost"]), sel);
        (b.build().unwrap(), s1, s2, d2e, dw)
    }

    #[test]
    fn dropping_consumed_attribute_breaks_downstream() {
        let (wf, s1, _, d2e, dw) = sample();
        let report = analyze(
            &wf,
            &Change::DropAttribute {
                source: s1,
                attr: "dollar_cost".into(),
            },
        )
        .unwrap();
        assert!(report.broken_activities.contains(&d2e), "{report:?}");
        assert!(report.affected_targets.contains(&dw));
    }

    #[test]
    fn taint_flows_through_function_rename() {
        // dollar_cost is consumed by $2€, whose output euro_cost feeds σ:
        // the filter must appear in the affected (and broken) set.
        let (wf, s1, _, d2e, _) = sample();
        let report = analyze(
            &wf,
            &Change::DropAttribute {
                source: s1,
                attr: "dollar_cost".into(),
            },
        )
        .unwrap();
        let sigma = wf
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| wf.graph().activity(a).unwrap().label == "σ")
            .unwrap();
        assert!(report.affected_activities.contains(&sigma));
        assert!(report.broken_activities.contains(&d2e));
    }

    #[test]
    fn dropping_unrelated_attribute_affects_only_pass_through() {
        let (wf, s1, _, _, dw) = sample();
        // pkey is consumed by nothing; dropping it affects the flow (the
        // target loses a column) but breaks no activity.
        let report = analyze(
            &wf,
            &Change::DropAttribute {
                source: s1,
                attr: "pkey".into(),
            },
        )
        .unwrap();
        assert!(report.broken_activities.is_empty(), "{report:?}");
        assert!(report.affected_targets.contains(&dw));
    }

    #[test]
    fn change_on_one_branch_does_not_break_the_other() {
        let (wf, s1, _, _, _) = sample();
        let report = analyze(
            &wf,
            &Change::DropAttribute {
                source: s1,
                attr: "dollar_cost".into(),
            },
        )
        .unwrap();
        let nn = wf
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| wf.graph().activity(a).unwrap().label == "NN")
            .unwrap();
        assert!(!report.affected_activities.contains(&nn));
        assert!(!report.broken_activities.contains(&nn));
    }

    #[test]
    fn activity_failure_impacts_everything_downstream() {
        let (wf, _, _, d2e, dw) = sample();
        let report = analyze(&wf, &Change::ActivityFailure { node: d2e }).unwrap();
        assert!(report.affected_targets.contains(&dw));
        // The failing node itself is not listed.
        assert!(!report.affected_activities.contains(&d2e));
        // NN (other branch) is unaffected.
        let nn = wf
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| wf.graph().activity(a).unwrap().label == "NN")
            .unwrap();
        assert!(!report.affected_activities.contains(&nn));
    }

    #[test]
    fn rename_reports_like_drop() {
        let (wf, s1, _, d2e, _) = sample();
        let drop = analyze(
            &wf,
            &Change::DropAttribute {
                source: s1,
                attr: "dollar_cost".into(),
            },
        )
        .unwrap();
        let rename = analyze(
            &wf,
            &Change::RenameAttribute {
                source: s1,
                from: "dollar_cost".into(),
                to: "usd".into(),
            },
        )
        .unwrap();
        assert_eq!(drop, rename);
        assert!(rename.broken_activities.contains(&d2e));
    }

    #[test]
    fn lineage_traces_through_function_to_both_sources() {
        let (wf, s1, s2, _, dw) = sample();
        let steps = lineage(&wf, dw, &"euro_cost".into()).unwrap();
        let nodes: Vec<NodeId> = steps.iter().map(|s| s.node).collect();
        assert!(nodes.contains(&s1), "{steps:?}");
        assert!(nodes.contains(&s2), "{steps:?}");
        // At S1 the attribute is dollar_cost; at S2 it is euro_cost.
        assert!(steps
            .iter()
            .any(|s| s.node == s1 && s.attr == Attr::new("dollar_cost")));
        assert!(steps
            .iter()
            .any(|s| s.node == s2 && s.attr == Attr::new("euro_cost")));
    }

    #[test]
    fn lineage_through_aggregation_and_surrogate_key() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["pkey", "v"]), 10.0);
        let agg = b.unary(
            "γ",
            UnaryOp::aggregate(Aggregation::sum(["pkey"], "v", "total")),
            s,
        );
        let sk = b.unary("SK", UnaryOp::surrogate_key("pkey", "sk", "DIM"), agg);
        let t = b.target("T", Schema::of(["sk", "total"]), sk);
        let wf = b.build().unwrap();
        // total <- v at the source.
        let steps = lineage(&wf, t, &"total".into()).unwrap();
        assert!(
            steps
                .iter()
                .any(|x| x.node == s && x.attr == Attr::new("v")),
            "{steps:?}"
        );
        // sk <- pkey at the source.
        let steps = lineage(&wf, t, &"sk".into()).unwrap();
        assert!(
            steps
                .iter()
                .any(|x| x.node == s && x.attr == Attr::new("pkey")),
            "{steps:?}"
        );
    }

    #[test]
    fn lineage_of_pass_through_attr_is_direct() {
        let (wf, s1, s2, _, dw) = sample();
        let steps = lineage(&wf, dw, &"pkey".into()).unwrap();
        assert_eq!(steps.len(), 2);
        assert!(steps.iter().all(|s| s.attr == Attr::new("pkey")));
        let nodes: Vec<NodeId> = steps.iter().map(|s| s.node).collect();
        assert!(nodes.contains(&s1) && nodes.contains(&s2));
    }

    #[test]
    fn impact_is_invariant_under_optimization() {
        // The set of *broken targets* of a source change must be the same
        // before and after optimization — transitions preserve semantics.
        use crate::cost::RowCountModel;
        use crate::opt::{HeuristicSearch, Optimizer};
        let (wf, s1, _, _, _) = sample();
        let best = HeuristicSearch::new()
            .run(&wf, &RowCountModel::default())
            .unwrap()
            .best;
        let before = analyze(
            &wf,
            &Change::DropAttribute {
                source: s1,
                attr: "dollar_cost".into(),
            },
        )
        .unwrap();
        let after = analyze(
            &best,
            &Change::DropAttribute {
                source: s1,
                attr: "dollar_cost".into(),
            },
        )
        .unwrap();
        assert_eq!(before.affected_targets, after.affected_targets);
    }

    #[test]
    fn clean_report() {
        let report = ImpactReport::default();
        assert!(report.is_clean());
    }
}
