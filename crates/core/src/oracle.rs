//! Engine-agnostic half of the differential conformance oracle.
//!
//! Theorem 2 guarantees that transition chains produce *equivalent*
//! workflows; the post-condition calculus ([`crate::postcond`]) proves this
//! formally. The conformance harness (crate `etlopt-conformance`) closes the
//! loop by executing optimizer-produced states on the real engine. This
//! module holds the pieces of that harness that do not need the engine:
//!
//! * [`predicted_processed_rows`] — per-activity processed-row predictions
//!   under a cost model, keyed exactly like the engine's `ExecStats` so the
//!   two sides can be joined;
//! * [`cross_validate`] — tolerance-based comparison of predicted vs
//!   observed row counts;
//! * [`ddmin`] — a delta-debugging minimizer that shrinks a failing
//!   transition chain to a (1-)minimal sub-chain that still fails.

use std::collections::BTreeMap;

use crate::activity::Op;
use crate::cost::CostModel;
use crate::error::{CoreError, Result};
use crate::graph::{Node, NodeId};
use crate::predicate::Predicate;
use crate::schema::Attr;
use crate::semantics::UnaryOp;
use crate::workflow::Workflow;

/// Rows each activity is predicted to *process* (the sum of the estimated
/// rows arriving on each of its input ports), keyed by the activity's
/// stable id token — the same key the engine's `ExecStats::rows_processed`
/// uses, so predictions and observations join directly.
///
/// The estimates come from the model's [`CostModel::report`] row
/// propagation, i.e. the numbers the row-count cost model actually prices
/// states with.
pub fn predicted_processed_rows(
    wf: &Workflow,
    model: &dyn CostModel,
) -> Result<BTreeMap<String, f64>> {
    let report = model.report(wf)?;
    let graph = wf.graph();
    let mut out = BTreeMap::new();
    for id in wf.activities()? {
        let act = graph.activity(id)?;
        let mut processed = 0.0;
        for p in graph.providers(id)?.into_iter().flatten() {
            processed += report.rows.get(&p).copied().unwrap_or(0.0);
        }
        out.insert(act.id.to_string(), processed);
    }
    Ok(out)
}

/// Predicted rows loaded into each target recordset, keyed by target name
/// (joining with the engine's per-target tables).
pub fn predicted_target_rows(
    wf: &Workflow,
    model: &dyn CostModel,
) -> Result<BTreeMap<String, f64>> {
    let report = model.report(wf)?;
    let graph = wf.graph();
    let mut out = BTreeMap::new();
    for t in wf.targets() {
        if let Node::Recordset(rs) = graph.node(t)? {
            out.insert(rs.name.clone(), report.rows.get(&t).copied().unwrap_or(0.0));
        }
    }
    Ok(out)
}

/// Acceptable deviation between a predicted and an observed row count. A
/// pair agrees when `|predicted − observed| ≤ max(absolute, relative ·
/// observed)` — the absolute slack absorbs rounding on tiny flows, the
/// relative slack absorbs estimation noise on large ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative slack against the observed count.
    pub relative: f64,
    /// Absolute slack in rows.
    pub absolute: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            relative: 0.05,
            absolute: 2.0,
        }
    }
}

impl Tolerance {
    /// A tolerance with the given relative and absolute slack.
    pub fn new(relative: f64, absolute: f64) -> Self {
        Tolerance { relative, absolute }
    }

    /// Do the two counts agree under this tolerance?
    pub fn agrees(&self, predicted: f64, observed: f64) -> bool {
        (predicted - observed).abs() <= self.absolute.max(self.relative * observed)
    }
}

/// One predicted-vs-observed disagreement found by [`cross_validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct RowCountMismatch {
    /// The joined key (activity id token or target name).
    pub key: String,
    /// The cost model's prediction.
    pub predicted: f64,
    /// What the engine observed.
    pub observed: f64,
}

impl std::fmt::Display for RowCountMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: predicted {:.1} rows, observed {:.0}",
            self.key, self.predicted, self.observed
        )
    }
}

/// Join predicted and observed row counts on their keys and return every
/// pair that disagrees under `tol`. A key present on only one side is
/// compared against zero, so phantom or missing activities surface as
/// mismatches too. `skip` filters keys exempt from validation (e.g.
/// activities downstream of a non-union binary, whose cardinality is a
/// genuine estimate rather than a propagated certainty).
pub fn cross_validate(
    predicted: &BTreeMap<String, f64>,
    observed: &BTreeMap<String, u64>,
    tol: Tolerance,
    mut skip: impl FnMut(&str) -> bool,
) -> Vec<RowCountMismatch> {
    let mut out = Vec::new();
    let keys: std::collections::BTreeSet<&String> =
        predicted.keys().chain(observed.keys()).collect();
    for key in keys {
        if skip(key) {
            continue;
        }
        let p = predicted.get(key).copied().unwrap_or(0.0);
        let o = observed.get(key).copied().unwrap_or(0) as f64;
        if !tol.agrees(p, o) {
            out.push(RowCountMismatch {
                key: key.clone(),
                predicted: p,
                observed: o,
            });
        }
    }
    out
}

/// A place where the paper's `$2€` pushdown error (Fig. 5) can be
/// injected: a function activity generating attribute *b* from *a*, whose
/// single consumer is a selection over *b*. [`Swap::check`] rejects this
/// pair (functionality violation); [`apply_faulty_pushdown`] commits it
/// anyway, producing a *valid, executable, semantically wrong* workflow
/// the conformance oracle must catch.
///
/// [`Swap::check`]: crate::transition::Swap
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultySite {
    /// The generating function activity.
    pub function: NodeId,
    /// The selection referencing the generated attribute.
    pub filter: NodeId,
}

/// Enumerate every [`FaultySite`] in `wf`, in topological order.
pub fn faulty_pushdown_sites(wf: &Workflow) -> Result<Vec<FaultySite>> {
    let g = wf.graph();
    let mut out = Vec::new();
    for &f in &wf.activities()? {
        let act = g.activity(f)?;
        let Op::Unary(UnaryOp::Function(app)) = &act.op else {
            continue;
        };
        // Only genuine generations (fresh output name, single source
        // attribute) — in-place transforms have nothing to mis-rename.
        if app.inputs.len() != 1 || app.output == app.inputs[0] {
            continue;
        }
        let consumers = g.consumers(f)?;
        if consumers.len() != 1 {
            continue;
        }
        let s = consumers[0];
        let Ok(cons) = g.activity(s) else { continue };
        let Op::Unary(UnaryOp::Filter { predicate, .. }) = &cons.op else {
            continue;
        };
        let referenced = predicate.referenced_attrs();
        if !referenced.contains(&app.output) {
            continue;
        }
        // The rewritten predicate must be evaluable above the function:
        // every attribute except the rewritten one has to exist in the
        // function's input schema (and so does the rewrite target).
        let input_schema = &act.inputs[0];
        let evaluable = referenced
            .iter()
            .filter(|a| **a != app.output)
            .all(|a| input_schema.contains(a))
            && input_schema.contains(&app.inputs[0]);
        if evaluable {
            out.push(FaultySite {
                function: f,
                filter: s,
            });
        }
    }
    Ok(out)
}

/// Recursively rename every mention of `from` to `to` in a predicate.
fn rename_attr(p: &mut Predicate, from: &Attr, to: &Attr) {
    let fix = |a: &mut Attr| {
        if a == from {
            *a = to.clone();
        }
    };
    match p {
        Predicate::Cmp { attr, .. } | Predicate::InList { attr, .. } => fix(attr),
        Predicate::CmpAttr { left, right, .. } => {
            fix(left);
            fix(right);
        }
        Predicate::IsNotNull(a) | Predicate::IsNull(a) => fix(a),
        Predicate::And(l, r) | Predicate::Or(l, r) => {
            rename_attr(l, from, to);
            rename_attr(r, from, to);
        }
        Predicate::Not(inner) => rename_attr(inner, from, to),
        Predicate::True => {}
    }
}

/// Commit the naive pushdown at `site`: rewrite the selection's predicate
/// from the function's output attribute back to its input attribute and
/// move the selection *above* the function — exactly the error the paper's
/// `$2€` example warns about. The result regenerates cleanly and executes,
/// but selects the wrong rows whenever the function is not the identity on
/// the predicate's decision boundary.
pub fn apply_faulty_pushdown(wf: &Workflow, site: FaultySite) -> Result<Workflow> {
    let (f, s) = (site.function, site.filter);
    // Shape guards first, with typed diagnostics: a site whose nodes are
    // not a (function, filter) pair can never become valid, so it deserves
    // better than the generic stale-site error below. `activity` itself
    // rejects recordset ids and ids from another arena.
    let (from, to) = match &wf.graph.activity(f)?.op {
        Op::Unary(UnaryOp::Function(app)) => (app.output.clone(), app.inputs[0].clone()),
        _ => {
            return Err(CoreError::InvalidFaultSite {
                node: f,
                detail: "site.function is not an attribute-generating function activity".into(),
            })
        }
    };
    if !matches!(&wf.graph.activity(s)?.op, Op::Unary(UnaryOp::Filter { .. })) {
        return Err(CoreError::InvalidFaultSite {
            node: s,
            detail: "site.filter is not a filter activity".into(),
        });
    }
    // Re-validate the full site shape (single consumer, generated attribute
    // referenced, evaluable rewrite) on *this* workflow: sites go stale
    // once a transition rewires the graph around them.
    if !faulty_pushdown_sites(wf)?.contains(&site) {
        return Err(CoreError::InvalidFaultSite {
            node: f,
            detail: "site does not match this workflow (stale after a rewrite?)".into(),
        });
    }

    let mut out = wf.clone();
    let prov = out
        .graph
        .provider(f, 0)?
        .ok_or(CoreError::MissingProvider { node: f, port: 0 })?;
    // Splice: prov → σ → f → (σ's former consumers).
    out.graph.redirect_consumers(s, f)?;
    out.graph.disconnect(s, 0)?;
    out.graph.disconnect(f, 0)?;
    out.graph.connect(prov, s, 0)?;
    out.graph.connect(s, f, 0)?;

    let act = out.graph.activity_mut(s)?;
    match &mut act.op {
        Op::Unary(UnaryOp::Filter { predicate, .. }) => rename_attr(predicate, &from, &to),
        // Guarded above; keep a typed error rather than silently skipping
        // the rewrite and returning a workflow that was never spliced.
        _ => {
            return Err(CoreError::InvalidFaultSite {
                node: s,
                detail: "filter site changed shape during the splice".into(),
            })
        }
    }
    out.regenerate_schemata()?;
    Ok(out)
}

/// Zeller's `ddmin`: shrink `items` to a 1-minimal subsequence for which
/// `fails` still returns `true`. The caller guarantees `fails(items)`;
/// the result preserves the relative order of the surviving items and no
/// single further element can be removed without the failure vanishing.
///
/// The predicate is re-run O(n²) times in the worst case; conformance
/// chains are short (≤ a few dozen transitions), so this is cheap next to
/// the engine executions inside the predicate.
pub fn ddmin<T: Clone, F: FnMut(&[T]) -> bool>(items: &[T], mut fails: F) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if current.is_empty() {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;

        // Try each chunk alone, then each complement.
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let subset: Vec<T> = current[start..end].to_vec();
            if subset.len() < current.len() && fails(&subset) {
                current = subset;
                granularity = 2;
                reduced = true;
                break;
            }
            let complement: Vec<T> = current[..start]
                .iter()
                .chain(current[end..].iter())
                .cloned()
                .collect();
            if !complement.is_empty() && complement.len() < current.len() && fails(&complement) {
                current = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }

        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::RowCountModel;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::UnaryOp;
    use crate::workflow::WorkflowBuilder;

    #[test]
    fn predicted_rows_follow_selectivity_propagation() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["v"]), 100.0);
        let f = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 1)).with_selectivity(0.5),
            s,
        );
        let nn = b.unary("NN", UnaryOp::not_null("v").with_selectivity(0.9), f);
        b.target("T", Schema::of(["v"]), nn);
        let wf = b.build().unwrap();
        let model = RowCountModel::default();
        let rows = predicted_processed_rows(&wf, &model).unwrap();
        // σ is activity 2, NN is 3 (source is 1, target last).
        assert!((rows["2"] - 100.0).abs() < 1e-9);
        assert!((rows["3"] - 50.0).abs() < 1e-9);
        let targets = predicted_target_rows(&wf, &model).unwrap();
        assert!((targets["T"] - 45.0).abs() < 1e-9);
    }

    #[test]
    fn tolerance_blends_absolute_and_relative() {
        let t = Tolerance::new(0.1, 2.0);
        assert!(t.agrees(0.0, 1.0)); // tiny flows: absolute slack
        assert!(t.agrees(105.0, 100.0)); // big flows: relative slack
        assert!(!t.agrees(120.0, 100.0));
    }

    #[test]
    fn cross_validate_reports_disagreements_and_phantoms() {
        let predicted: BTreeMap<String, f64> = [("a".into(), 100.0), ("b".into(), 10.0)]
            .into_iter()
            .collect();
        let observed: BTreeMap<String, u64> =
            [("a".into(), 100), ("c".into(), 50)].into_iter().collect();
        let bad = cross_validate(&predicted, &observed, Tolerance::default(), |_| false);
        let keys: Vec<&str> = bad.iter().map(|m| m.key.as_str()).collect();
        // "a" agrees; "b" predicted-but-unobserved; "c" observed-but-unpredicted.
        assert_eq!(keys, vec!["b", "c"]);
    }

    #[test]
    fn cross_validate_honors_skip() {
        let predicted: BTreeMap<String, f64> = [("a".into(), 100.0)].into_iter().collect();
        let observed: BTreeMap<String, u64> = [("a".into(), 1)].into_iter().collect();
        let bad = cross_validate(&predicted, &observed, Tolerance::default(), |k| k == "a");
        assert!(bad.is_empty());
    }

    #[test]
    fn ddmin_shrinks_to_the_failing_core() {
        // Failure iff both 3 and 7 are present.
        let items: Vec<u32> = (0..20).collect();
        let min = ddmin(&items, |s| s.contains(&3) && s.contains(&7));
        assert_eq!(min, vec![3, 7]);
    }

    #[test]
    fn ddmin_single_culprit_and_order_preservation() {
        let items = vec![5, 9, 1, 9, 2];
        let min = ddmin(&items, |s| s.contains(&1));
        assert_eq!(min, vec![1]);
        // Order of a multi-element core is preserved.
        let min = ddmin(&items, |s| {
            s.iter()
                .position(|&x| x == 9)
                .is_some_and(|i| s[i + 1..].contains(&2))
        });
        assert_eq!(min, vec![9, 2]);
    }

    fn dollars_then_euro_filter() -> Workflow {
        // S --($2€: cost → cost_eur)--> σ(cost_eur > 100) --> T
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "cost"]), 100.0);
        let f = b.unary(
            "$2E",
            UnaryOp::function("dollar2euro", ["cost"], "cost_eur"),
            s,
        );
        let sel = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("cost_eur", 100)).with_selectivity(0.5),
            f,
        );
        b.target("T", Schema::of(["k", "cost_eur"]), sel);
        b.build().unwrap()
    }

    #[test]
    fn faulty_site_found_and_matches_swap_rejection() {
        let wf = dollars_then_euro_filter();
        let sites = faulty_pushdown_sites(&wf).unwrap();
        assert_eq!(sites.len(), 1, "{sites:?}");
        // The legitimate transition machinery refuses this very swap.
        let site = sites[0];
        let swap = crate::transition::Swap::new(site.function, site.filter);
        use crate::transition::Transition;
        assert!(matches!(
            swap.apply(&wf),
            Err(crate::transition::TransitionError::FunctionalityViolated { .. })
        ));
    }

    #[test]
    fn faulty_pushdown_commits_the_error_but_stays_executable() {
        let wf = dollars_then_euro_filter();
        let site = faulty_pushdown_sites(&wf).unwrap()[0];
        let bad = apply_faulty_pushdown(&wf, site).unwrap();
        // Structurally sound: validates, same target schema, NOT equivalent.
        bad.validate().unwrap();
        let t = bad.targets()[0];
        assert_eq!(
            bad.graph().recordset(t).unwrap().schema,
            wf.graph().recordset(wf.targets()[0]).unwrap().schema,
        );
        assert!(!crate::postcond::equivalent(&wf, &bad).unwrap());
        // The filter now sits directly on the source and tests `cost`.
        let g = bad.graph();
        let filter = g.activity(site.filter).unwrap();
        let Op::Unary(UnaryOp::Filter { predicate, .. }) = &filter.op else {
            panic!(
                "pushdown must leave the σ node a filter, found {:?}",
                filter.op
            );
        };
        assert!(predicate
            .referenced_attrs()
            .contains(&crate::schema::Attr::new("cost")));
        assert_eq!(g.provider(site.function, 0).unwrap(), Some(site.filter));
    }

    #[test]
    fn faulty_pushdown_rejects_malformed_sites_with_typed_errors() {
        let wf = dollars_then_euro_filter();
        let real = faulty_pushdown_sites(&wf).unwrap()[0];
        // "Filter" slot actually holds the function node.
        let err = apply_faulty_pushdown(
            &wf,
            FaultySite {
                function: real.function,
                filter: real.function,
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidFaultSite { node, .. } if node == real.function),
            "{err}"
        );
        // "Function" slot actually holds the filter node.
        let err = apply_faulty_pushdown(
            &wf,
            FaultySite {
                function: real.filter,
                filter: real.filter,
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidFaultSite { node, .. } if node == real.filter),
            "{err}"
        );
        // Well-typed but stale: valid node kinds that no longer form a site.
        let moved = apply_faulty_pushdown(&wf, real).unwrap();
        let err = apply_faulty_pushdown(&moved, real).unwrap_err();
        assert!(matches!(err, CoreError::InvalidFaultSite { .. }), "{err}");
        // A recordset id in either slot reports the graph-level error.
        let src = wf.sources()[0];
        let bogus = FaultySite {
            function: src,
            filter: real.filter,
        };
        assert!(apply_faulty_pushdown(&wf, bogus).is_err());
    }

    #[test]
    fn no_faulty_sites_without_generated_predicates() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["v"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("v", 1)), s);
        b.target("T", Schema::of(["v"]), f);
        let wf = b.build().unwrap();
        assert!(faulty_pushdown_sites(&wf).unwrap().is_empty());
        // And a stale site errors instead of corrupting the workflow.
        let bogus = FaultySite {
            function: wf.activities().unwrap()[0],
            filter: wf.activities().unwrap()[0],
        };
        assert!(apply_faulty_pushdown(&wf, bogus).is_err());
    }

    #[test]
    fn ddmin_on_empty_and_fully_needed_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(ddmin(&empty, |_| true).is_empty());
        // Every element needed: nothing can be removed.
        let items = vec![1, 2, 3];
        let min = ddmin(&items, |s| s.len() == 3);
        assert_eq!(min, vec![1, 2, 3]);
    }
}
