//! The workflow graph: a directed acyclic graph of activities and
//! recordsets connected by data-provider edges (§2.1).
//!
//! Implemented as a slot arena so that node ids stay stable while
//! transitions add and remove nodes, and so that cloning a whole state (the
//! basic move of state-space search) is a flat memcpy-ish `Vec` clone with
//! shared `Arc` attribute names underneath.
//!
//! Edges are stored on the consumer side as *ports*: an activity with two
//! input schemata has two ports, each fed by exactly one provider (the
//! paper's one-provider-per-input-schema rule; fan-in is expressed with
//! UNION activities). Consumer lists are kept denormalized on the provider
//! for O(1) "who reads me" queries during applicability checks.

use std::fmt;

use crate::activity::Activity;
use crate::error::{CoreError, Result};
use crate::recordset::Recordset;
use crate::schema::Schema;

/// Index of a node in the graph arena. Stable across transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A node: either an activity or a recordset.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Processing node.
    Activity(Activity),
    /// Data-store node.
    Recordset(Recordset),
}

impl Node {
    /// The node's output schema: an activity's output, a recordset's schema.
    pub fn output_schema(&self) -> &Schema {
        match self {
            Node::Activity(a) => &a.output,
            Node::Recordset(r) => &r.schema,
        }
    }

    /// Number of input ports (activities: arity; recordsets: one optional
    /// writer port).
    pub fn arity(&self) -> usize {
        match self {
            Node::Activity(a) => a.op.arity(),
            Node::Recordset(_) => 1,
        }
    }

    /// View as activity.
    pub fn as_activity(&self) -> Option<&Activity> {
        match self {
            Node::Activity(a) => Some(a),
            Node::Recordset(_) => None,
        }
    }

    /// View as recordset.
    pub fn as_recordset(&self) -> Option<&Recordset> {
        match self {
            Node::Recordset(r) => Some(r),
            Node::Activity(_) => None,
        }
    }

    /// Display label.
    pub fn label(&self) -> &str {
        match self {
            Node::Activity(a) => &a.label,
            Node::Recordset(r) => &r.name,
        }
    }
}

/// Provider ports, stored inline — every node has at most two input ports
/// (unary/binary activities, one writer port for recordsets), so a `Copy`
/// array beats a heap `Vec` in the clone-per-generated-state hot loop.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ports {
    len: u8,
    slots: [Option<NodeId>; 2],
}

impl Ports {
    fn new(arity: usize) -> Self {
        assert!(arity <= 2, "node arity beyond 2 is unsupported");
        Ports {
            len: arity as u8,
            slots: [None, None],
        }
    }

    fn len(&self) -> usize {
        self.len as usize
    }

    fn as_slice(&self) -> &[Option<NodeId>] {
        &self.slots[..self.len as usize]
    }

    fn set(&mut self, port: usize, value: Option<NodeId>) {
        self.slots[..self.len as usize][port] = value;
    }

    fn take(&mut self, port: usize) -> Option<NodeId> {
        self.slots[..self.len as usize][port].take()
    }
}

/// Consumer list with inline capacity for the common ≤ 2 fan-out; spills to
/// the heap beyond that. Keeps `Slot::clone` allocation-free for typical
/// workflow shapes.
#[derive(Debug, Clone)]
enum Consumers {
    Inline(u8, [NodeId; 2]),
    Heap(Vec<NodeId>),
}

impl Consumers {
    /// Placeholder for unused inline cells; never observable through
    /// `as_slice`.
    const NONE: NodeId = NodeId(u32::MAX);

    fn new() -> Self {
        Consumers::Inline(0, [Self::NONE; 2])
    }

    fn as_slice(&self) -> &[NodeId] {
        match self {
            Consumers::Inline(len, items) => &items[..*len as usize],
            Consumers::Heap(v) => v,
        }
    }

    fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn push(&mut self, id: NodeId) {
        match self {
            Consumers::Inline(len, items) if (*len as usize) < items.len() => {
                items[*len as usize] = id;
                *len += 1;
            }
            Consumers::Inline(len, items) => {
                let mut v = Vec::with_capacity(*len as usize + 2);
                v.extend_from_slice(&items[..*len as usize]);
                v.push(id);
                *self = Consumers::Heap(v);
            }
            Consumers::Heap(v) => v.push(id),
        }
    }

    /// Remove the first occurrence of `id`, if present.
    fn remove_first(&mut self, id: NodeId) {
        match self {
            Consumers::Inline(len, items) => {
                let n = *len as usize;
                if let Some(pos) = items[..n].iter().position(|x| *x == id) {
                    items.copy_within(pos + 1..n, pos);
                    items[n - 1] = Self::NONE;
                    *len -= 1;
                }
            }
            Consumers::Heap(v) => {
                if let Some(pos) = v.iter().position(|x| *x == id) {
                    v.remove(pos);
                }
            }
        }
    }
}

impl PartialEq for Consumers {
    // Logical equality: a once-spilled list that shrank back equals the
    // inline list with the same elements.
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Slot {
    /// The node payload, shared copy-on-write across cloned states:
    /// cloning a whole workflow (the basic move of state-space search) is
    /// a refcount bump per node; mutation goes through [`Arc::make_mut`]
    /// and clones only the touched node.
    node: std::sync::Arc<Node>,
    /// Provider per input port; `None` = not yet connected (sources keep
    /// their single port empty forever).
    preds: Ports,
    /// Consumers (denormalized; may repeat a node that reads us on both of
    /// its ports).
    succs: Consumers,
}

/// The workflow DAG.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Graph {
    slots: Vec<Option<Slot>>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of arena slots (live **or** freed). Slot-indexed side tables
    /// (row counts, per-node hashes) size themselves by this, so a `NodeId`
    /// of any live node is always in bounds.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live activity nodes.
    pub fn activity_count(&self) -> usize {
        self.iter()
            .filter(|(_, n)| matches!(n, Node::Activity(_)))
            .count()
    }

    /// Add an activity node.
    pub fn add_activity(&mut self, a: Activity) -> NodeId {
        self.add_node(Node::Activity(a))
    }

    /// Add a recordset node.
    pub fn add_recordset(&mut self, r: Recordset) -> NodeId {
        self.add_node(Node::Recordset(r))
    }

    fn add_node(&mut self, node: Node) -> NodeId {
        let arity = node.arity();
        let slot = Slot {
            node: std::sync::Arc::new(node),
            preds: Ports::new(arity),
            succs: Consumers::new(),
        };
        // Reuse a free slot if any, else append.
        if let Some(idx) = self.slots.iter().position(|s| s.is_none()) {
            self.slots[idx] = Some(slot);
            NodeId(idx as u32)
        } else {
            self.slots.push(Some(slot));
            NodeId(self.slots.len() as u32 - 1)
        }
    }

    fn slot(&self, id: NodeId) -> Result<&Slot> {
        self.slots
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or(CoreError::UnknownNode(id))
    }

    fn slot_mut(&mut self, id: NodeId) -> Result<&mut Slot> {
        self.slots
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(CoreError::UnknownNode(id))
    }

    /// Does `id` refer to a live node?
    pub fn contains(&self, id: NodeId) -> bool {
        self.slot(id).is_ok()
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        Ok(&self.slot(id)?.node)
    }

    /// Mutable node access (copy-on-write: a node shared with cloned
    /// states is detached here).
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node> {
        Ok(std::sync::Arc::make_mut(&mut self.slot_mut(id)?.node))
    }

    /// The shared handle of the node payload. Test hook for the
    /// structural-sharing contract: after a transition, untouched nodes
    /// must still be `Arc::ptr_eq` with the originating state.
    #[cfg(test)]
    pub(crate) fn node_arc(&self, id: NodeId) -> Result<&std::sync::Arc<Node>> {
        Ok(&self.slot(id)?.node)
    }

    /// The activity at `id`, or an error if it is a recordset / missing.
    pub fn activity(&self, id: NodeId) -> Result<&Activity> {
        self.node(id)?
            .as_activity()
            .ok_or(CoreError::UnknownNode(id))
    }

    /// Mutable activity access.
    pub fn activity_mut(&mut self, id: NodeId) -> Result<&mut Activity> {
        match self.node_mut(id)? {
            Node::Activity(a) => Ok(a),
            Node::Recordset(_) => Err(CoreError::UnknownNode(id)),
        }
    }

    /// The recordset at `id`, or an error.
    pub fn recordset(&self, id: NodeId) -> Result<&Recordset> {
        self.node(id)?
            .as_recordset()
            .ok_or(CoreError::UnknownNode(id))
    }

    /// Connect `from` to input `port` of `to`. Fails if the port is already
    /// fed (one provider per input schema, §2.1).
    pub fn connect(&mut self, from: NodeId, to: NodeId, port: usize) -> Result<()> {
        // Validate both endpoints first.
        self.slot(from)?;
        let to_slot = self.slot(to)?;
        if port >= to_slot.preds.len() {
            return Err(CoreError::MissingProvider { node: to, port });
        }
        if to_slot.preds.as_slice()[port].is_some() {
            return Err(CoreError::DuplicateProvider { node: to, port });
        }
        self.slot_mut(to)?.preds.set(port, Some(from));
        self.slot_mut(from)?.succs.push(to);
        Ok(())
    }

    /// Disconnect input `port` of `to`; returns the former provider.
    pub fn disconnect(&mut self, to: NodeId, port: usize) -> Result<Option<NodeId>> {
        let prev = {
            let slot = self.slot_mut(to)?;
            if port >= slot.preds.len() {
                return Err(CoreError::MissingProvider { node: to, port });
            }
            slot.preds.take(port)
        };
        if let Some(from) = prev {
            self.slot_mut(from)?.succs.remove_first(to);
        }
        Ok(prev)
    }

    /// Remove a fully disconnected node.
    pub fn remove(&mut self, id: NodeId) -> Result<Node> {
        {
            let slot = self.slot(id)?;
            if slot.preds.as_slice().iter().any(Option::is_some) || !slot.succs.is_empty() {
                return Err(CoreError::DanglingOutput(id));
            }
        }
        let slot = self.slots[id.0 as usize].take().expect("checked above");
        Ok(std::sync::Arc::try_unwrap(slot.node).unwrap_or_else(|arc| (*arc).clone()))
    }

    /// Provider of input `port` of `id`.
    pub fn provider(&self, id: NodeId, port: usize) -> Result<Option<NodeId>> {
        let slot = self.slot(id)?;
        slot.preds
            .as_slice()
            .get(port)
            .copied()
            .ok_or(CoreError::MissingProvider { node: id, port })
    }

    /// All providers of `id`, one entry per port.
    pub fn providers(&self, id: NodeId) -> Result<Vec<Option<NodeId>>> {
        Ok(self.slot(id)?.preds.as_slice().to_vec())
    }

    /// All consumers of `id` (one entry per consuming port).
    pub fn consumers(&self, id: NodeId) -> Result<&[NodeId]> {
        Ok(self.slot(id)?.succs.as_slice())
    }

    /// Which input port of `consumer` is fed by `provider`? Returns the
    /// first matching port.
    pub fn port_of(&self, provider: NodeId, consumer: NodeId) -> Result<Option<usize>> {
        let slot = self.slot(consumer)?;
        Ok(slot
            .preds
            .as_slice()
            .iter()
            .position(|p| *p == Some(provider)))
    }

    /// Iterate over live nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref()
                .map(|slot| (NodeId(i as u32), slot.node.as_ref()))
        })
    }

    /// All live node ids in arena order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.iter().map(|(id, _)| id).collect()
    }

    /// Kahn topological order over live nodes; fails on cycles. Ties are
    /// broken by arena index (min-heap) so the order is deterministic.
    /// Runs in O(E log V) — this is the hot loop of state-space search
    /// (schema regeneration, costing and validation all walk topologically).
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        // Indegree indexed directly by arena slot; dead slots stay 0/unused.
        let mut indegree: Vec<usize> = vec![0; self.slots.len()];
        let mut live = 0usize;
        let mut ready: BinaryHeap<Reverse<NodeId>> = BinaryHeap::new();
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            live += 1;
            let d = slot.preds.as_slice().iter().filter(|p| p.is_some()).count();
            indegree[i] = d;
            if d == 0 {
                ready.push(Reverse(NodeId(i as u32)));
            }
        }
        let mut order = Vec::with_capacity(live);
        while let Some(Reverse(next)) = ready.pop() {
            order.push(next);
            for &succ in self.slot(next)?.succs.as_slice() {
                // A consumer may read us on two ports: decrement per edge.
                let d = &mut indegree[succ.0 as usize];
                *d -= 1;
                if *d == 0 {
                    ready.push(Reverse(succ));
                }
            }
        }
        if order.len() != live {
            let stuck = self
                .node_ids()
                .into_iter()
                .find(|id| !order.contains(id))
                .unwrap_or(NodeId(0));
            return Err(CoreError::CyclicGraph { node: stuck });
        }
        Ok(order)
    }

    /// Nodes with no providers (graph sources).
    pub fn source_ids(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(id, _)| {
                self.slot(*id)
                    .map(|s| s.preds.as_slice().iter().all(Option::is_none))
                    .unwrap_or(false)
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Nodes with no consumers (graph sinks).
    pub fn sink_ids(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(id, _)| self.slot(*id).map(|s| s.succs.is_empty()).unwrap_or(false))
            .map(|(id, _)| id)
            .collect()
    }

    /// Redirect every consumer of `old` to read from `new` instead,
    /// preserving ports. Used by transitions when substituting nodes.
    pub fn redirect_consumers(&mut self, old: NodeId, new: NodeId) -> Result<()> {
        let consumers: Vec<NodeId> = self.consumers(old)?.to_vec();
        for c in consumers {
            while let Some(port) = self.port_of(old, c)? {
                self.disconnect(c, port)?;
                self.connect(new, c, port)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{binary, unary};
    use crate::predicate::Predicate;
    use crate::semantics::{BinaryOp, UnaryOp};

    fn filter(id: u32) -> Activity {
        unary(id, "σ", UnaryOp::filter(Predicate::True))
    }

    fn rs(name: &str) -> Recordset {
        Recordset::table(name, Schema::of(["a"]))
    }

    #[test]
    fn add_connect_and_query() {
        let mut g = Graph::new();
        let s = g.add_recordset(rs("S"));
        let a = g.add_activity(filter(1));
        let t = g.add_recordset(rs("T"));
        g.connect(s, a, 0).unwrap();
        g.connect(a, t, 0).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.provider(a, 0).unwrap(), Some(s));
        assert_eq!(g.consumers(a).unwrap(), &[t]);
        assert_eq!(g.source_ids(), vec![s]);
        assert_eq!(g.sink_ids(), vec![t]);
    }

    #[test]
    fn one_provider_per_port() {
        let mut g = Graph::new();
        let s1 = g.add_recordset(rs("S1"));
        let s2 = g.add_recordset(rs("S2"));
        let a = g.add_activity(filter(1));
        g.connect(s1, a, 0).unwrap();
        let err = g.connect(s2, a, 0).unwrap_err();
        assert!(matches!(err, CoreError::DuplicateProvider { .. }));
    }

    #[test]
    fn binary_activity_has_two_ports() {
        let mut g = Graph::new();
        let s1 = g.add_recordset(rs("S1"));
        let s2 = g.add_recordset(rs("S2"));
        let u = g.add_activity(binary(3, "U", BinaryOp::Union));
        g.connect(s1, u, 0).unwrap();
        g.connect(s2, u, 1).unwrap();
        assert_eq!(g.providers(u).unwrap(), vec![Some(s1), Some(s2)]);
        assert_eq!(g.port_of(s2, u).unwrap(), Some(1));
    }

    #[test]
    fn connect_out_of_range_port_fails() {
        let mut g = Graph::new();
        let s = g.add_recordset(rs("S"));
        let a = g.add_activity(filter(1));
        assert!(g.connect(s, a, 1).is_err());
    }

    #[test]
    fn disconnect_and_remove() {
        let mut g = Graph::new();
        let s = g.add_recordset(rs("S"));
        let a = g.add_activity(filter(1));
        g.connect(s, a, 0).unwrap();
        // Cannot remove a connected node.
        assert!(g.remove(a).is_err());
        assert_eq!(g.disconnect(a, 0).unwrap(), Some(s));
        assert!(g.consumers(s).unwrap().is_empty());
        g.remove(a).unwrap();
        assert_eq!(g.len(), 1);
        assert!(!g.contains(a));
    }

    #[test]
    fn slot_reuse_after_removal() {
        let mut g = Graph::new();
        let a = g.add_activity(filter(1));
        g.remove(a).unwrap();
        let b = g.add_activity(filter(2));
        assert_eq!(a, b, "freed slot should be reused");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn topo_order_is_deterministic_and_respects_edges() {
        let mut g = Graph::new();
        let s1 = g.add_recordset(rs("S1"));
        let s2 = g.add_recordset(rs("S2"));
        let f1 = g.add_activity(filter(1));
        let u = g.add_activity(binary(2, "U", BinaryOp::Union));
        let t = g.add_recordset(rs("T"));
        g.connect(s1, f1, 0).unwrap();
        g.connect(f1, u, 0).unwrap();
        g.connect(s2, u, 1).unwrap();
        g.connect(u, t, 0).unwrap();
        let order = g.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(s1) < pos(f1));
        assert!(pos(f1) < pos(u));
        assert!(pos(s2) < pos(u));
        assert!(pos(u) < pos(t));
        assert_eq!(order, g.topo_order().unwrap());
    }

    #[test]
    fn cycle_detected() {
        let mut g = Graph::new();
        let a = g.add_activity(filter(1));
        let b = g.add_activity(filter(2));
        g.connect(a, b, 0).unwrap();
        g.connect(b, a, 0).unwrap();
        assert!(matches!(
            g.topo_order().unwrap_err(),
            CoreError::CyclicGraph { .. }
        ));
    }

    #[test]
    fn redirect_consumers_moves_all_edges() {
        let mut g = Graph::new();
        let old = g.add_recordset(rs("OLD"));
        let new = g.add_recordset(rs("NEW"));
        let a = g.add_activity(filter(1));
        let b = g.add_activity(filter(2));
        g.connect(old, a, 0).unwrap();
        g.connect(old, b, 0).unwrap();
        g.redirect_consumers(old, new).unwrap();
        assert!(g.consumers(old).unwrap().is_empty());
        assert_eq!(g.provider(a, 0).unwrap(), Some(new));
        assert_eq!(g.provider(b, 0).unwrap(), Some(new));
        let mut cons = g.consumers(new).unwrap().to_vec();
        cons.sort();
        assert_eq!(cons, vec![a, b]);
    }

    #[test]
    fn same_provider_on_both_ports() {
        // Self-join shape: one recordset feeding both ports of a binary op.
        let mut g = Graph::new();
        let s = g.add_recordset(rs("S"));
        let j = g.add_activity(binary(1, "∩", BinaryOp::Intersection));
        g.connect(s, j, 0).unwrap();
        g.connect(s, j, 1).unwrap();
        assert_eq!(g.consumers(s).unwrap(), &[j, j]);
        let order = g.topo_order().unwrap();
        assert_eq!(order, vec![s, j]);
    }

    #[test]
    fn unknown_node_errors() {
        let g = Graph::new();
        assert!(matches!(
            g.node(NodeId(5)).unwrap_err(),
            CoreError::UnknownNode(_)
        ));
    }
}
