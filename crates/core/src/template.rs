//! Activity template library (§3.2, building on ref. [18] — ARKTOS II).
//!
//! Workflows are not assembled from ad-hoc code but from **templates** with
//! predefined semantics and a parameter *signature*: materializing a
//! `Not Null` template means supplying the attribute to check. The template
//! level is also where the auxiliary schemata are dictated — which
//! parameters form the functionality schema, what is generated, what is
//! projected out — all of which [`crate::semantics`] derives mechanically
//! from the instantiated operation.
//!
//! The library is extensible ("for any other, new activity … explicit
//! semantics can also be given"): register a custom template with
//! [`TemplateLibrary::register`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::activity::Op;
use crate::error::{CoreError, Result};
use crate::predicate::{CmpOp, Predicate};
use crate::scalar::Scalar;
use crate::schema::Attr;
use crate::semantics::{AggFunc, AggSpec, Aggregation, BinaryOp, UnaryOp};

/// An argument supplied when materializing a template.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// A single attribute.
    Attr(Attr),
    /// A list of attributes.
    Attrs(Vec<Attr>),
    /// A constant value.
    Value(Scalar),
    /// A bare name (function name, lookup-table name, …).
    Name(String),
}

impl Arg {
    fn as_attr(&self) -> Result<&Attr> {
        match self {
            Arg::Attr(a) => Ok(a),
            other => Err(CoreError::Schema(format!(
                "expected attribute, got {other:?}"
            ))),
        }
    }
    fn as_attrs(&self) -> Result<Vec<Attr>> {
        match self {
            Arg::Attrs(v) => Ok(v.clone()),
            Arg::Attr(a) => Ok(vec![a.clone()]),
            other => Err(CoreError::Schema(format!(
                "expected attribute list, got {other:?}"
            ))),
        }
    }
    fn as_value(&self) -> Result<&Scalar> {
        match self {
            Arg::Value(v) => Ok(v),
            other => Err(CoreError::Schema(format!("expected value, got {other:?}"))),
        }
    }
    fn as_name(&self) -> Result<&str> {
        match self {
            Arg::Name(n) => Ok(n),
            other => Err(CoreError::Schema(format!("expected name, got {other:?}"))),
        }
    }
}

/// Named arguments for a template instantiation.
pub type Args = BTreeMap<&'static str, Arg>;

/// Helper to assemble [`Args`] fluently.
#[derive(Debug, Default, Clone)]
pub struct ArgsBuilder(BTreeMap<&'static str, Arg>);

impl ArgsBuilder {
    /// Empty argument set.
    pub fn new() -> Self {
        Self::default()
    }
    /// Bind an attribute parameter.
    pub fn attr(mut self, key: &'static str, a: impl Into<Attr>) -> Self {
        self.0.insert(key, Arg::Attr(a.into()));
        self
    }
    /// Bind an attribute-list parameter.
    pub fn attrs<I, A>(mut self, key: &'static str, attrs: I) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        self.0
            .insert(key, Arg::Attrs(attrs.into_iter().map(Into::into).collect()));
        self
    }
    /// Bind a constant-value parameter.
    pub fn value(mut self, key: &'static str, v: impl Into<Scalar>) -> Self {
        self.0.insert(key, Arg::Value(v.into()));
        self
    }
    /// Bind a name parameter.
    pub fn name(mut self, key: &'static str, n: impl Into<String>) -> Self {
        self.0.insert(key, Arg::Name(n.into()));
        self
    }
    /// Finish.
    pub fn build(self) -> Args {
        self.0
    }
}

type Materializer = Arc<dyn Fn(&Args) -> Result<Op> + Send + Sync>;

/// A template: signature (parameter names) plus a materializer producing
/// activity semantics.
#[derive(Clone)]
pub struct Template {
    /// Template name, e.g. `"not_null"`.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Required parameter names.
    pub params: Vec<&'static str>,
    materialize: Materializer,
}

impl Template {
    /// Materialize the template with the given arguments.
    pub fn instantiate(&self, args: &Args) -> Result<Op> {
        for p in &self.params {
            if !args.contains_key(p) {
                return Err(CoreError::Schema(format!(
                    "template `{}` requires parameter `{p}`",
                    self.name
                )));
            }
        }
        (self.materialize)(args)
    }
}

impl fmt::Debug for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Template")
            .field("name", &self.name)
            .field("params", &self.params)
            .finish()
    }
}

/// The template library: the built-in ETL vocabulary plus user extensions.
#[derive(Debug, Clone)]
pub struct TemplateLibrary {
    templates: BTreeMap<String, Template>,
}

impl Default for TemplateLibrary {
    fn default() -> Self {
        Self::builtin()
    }
}

impl TemplateLibrary {
    /// The built-in library covering the paper's activity vocabulary.
    pub fn builtin() -> Self {
        let mut lib = TemplateLibrary {
            templates: BTreeMap::new(),
        };
        lib.register_fn(
            "not_null",
            "reject rows whose attribute is NULL",
            vec!["attr"],
            |args| {
                Ok(Op::Unary(UnaryOp::not_null(
                    args["attr"].as_attr()?.clone(),
                )))
            },
        );
        lib.register_fn(
            "selection",
            "keep rows where attr <op> value",
            vec!["attr", "op", "value"],
            |args| {
                let op = match args["op"].as_name()? {
                    "=" => CmpOp::Eq,
                    "<>" | "!=" => CmpOp::Ne,
                    "<" => CmpOp::Lt,
                    "<=" => CmpOp::Le,
                    ">" => CmpOp::Gt,
                    ">=" => CmpOp::Ge,
                    other => {
                        return Err(CoreError::Schema(format!("unknown comparison `{other}`")))
                    }
                };
                Ok(Op::Unary(UnaryOp::filter(Predicate::Cmp {
                    attr: args["attr"].as_attr()?.clone(),
                    op,
                    value: args["value"].as_value()?.clone(),
                })))
            },
        );
        lib.register_fn(
            "domain_check",
            "keep rows whose attribute is in the allowed value list",
            vec!["attr"],
            |args| {
                let values = match args.get("values") {
                    Some(Arg::Value(v)) => vec![v.clone()],
                    _ => Vec::new(),
                };
                Ok(Op::Unary(UnaryOp::filter(Predicate::InList {
                    attr: args["attr"].as_attr()?.clone(),
                    values,
                })))
            },
        );
        lib.register_fn(
            "pk_check",
            "drop rows violating primary-key uniqueness",
            vec!["key"],
            |args| {
                Ok(Op::Unary(UnaryOp::PkCheck {
                    key: args["key"].as_attrs()?,
                    selectivity: 1.0,
                }))
            },
        );
        lib.register_fn("dedup", "eliminate duplicate rows", vec![], |_| {
            Ok(Op::Unary(UnaryOp::Dedup { selectivity: 1.0 }))
        });
        lib.register_fn(
            "function",
            "apply a registered scalar function",
            vec!["fn", "inputs", "output"],
            |args| {
                Ok(Op::Unary(UnaryOp::function(
                    args["fn"].as_name()?,
                    args["inputs"].as_attrs()?,
                    args["output"].as_attr()?.clone(),
                )))
            },
        );
        lib.register_fn(
            "aggregation",
            "group-by aggregation",
            vec!["group_by", "func", "input", "output"],
            |args| {
                let func = match args["func"].as_name()? {
                    "sum" => AggFunc::Sum,
                    "count" => AggFunc::Count,
                    "min" => AggFunc::Min,
                    "max" => AggFunc::Max,
                    "avg" => AggFunc::Avg,
                    other => return Err(CoreError::Schema(format!("unknown aggregate `{other}`"))),
                };
                Ok(Op::Unary(UnaryOp::aggregate(Aggregation::new(
                    args["group_by"].as_attrs()?,
                    vec![AggSpec {
                        func,
                        input: args["input"].as_attr()?.clone(),
                        output: args["output"].as_attr()?.clone(),
                    }],
                ))))
            },
        );
        lib.register_fn(
            "project_out",
            "drop the listed attributes",
            vec!["attrs"],
            |args| Ok(Op::Unary(UnaryOp::project_out(args["attrs"].as_attrs()?))),
        );
        lib.register_fn(
            "add_field",
            "append a constant attribute",
            vec!["attr", "value"],
            |args| {
                Ok(Op::Unary(UnaryOp::AddField {
                    attr: args["attr"].as_attr()?.clone(),
                    value: args["value"].as_value()?.clone(),
                }))
            },
        );
        lib.register_fn(
            "surrogate_key",
            "replace the production key with a surrogate via a lookup table",
            vec!["key", "surrogate", "lookup"],
            |args| {
                Ok(Op::Unary(UnaryOp::surrogate_key(
                    args["key"].as_attr()?.clone(),
                    args["surrogate"].as_attr()?.clone(),
                    args["lookup"].as_name()?,
                )))
            },
        );
        lib.register_fn("union", "bag union of two flows", vec![], |_| {
            Ok(Op::Binary(BinaryOp::Union))
        });
        lib.register_fn(
            "join",
            "equi-join on the key attributes",
            vec!["on"],
            |args| Ok(Op::Binary(BinaryOp::Join(args["on"].as_attrs()?))),
        );
        lib.register_fn("difference", "bag difference", vec![], |_| {
            Ok(Op::Binary(BinaryOp::Difference))
        });
        lib.register_fn("intersection", "bag intersection", vec![], |_| {
            Ok(Op::Binary(BinaryOp::Intersection))
        });
        lib
    }

    fn register_fn(
        &mut self,
        name: &str,
        description: &str,
        params: Vec<&'static str>,
        f: impl Fn(&Args) -> Result<Op> + Send + Sync + 'static,
    ) {
        self.templates.insert(
            name.to_owned(),
            Template {
                name: name.to_owned(),
                description: description.to_owned(),
                params,
                materialize: Arc::new(f),
            },
        );
    }

    /// Register (or replace) a custom template.
    pub fn register(&mut self, template: Template) {
        self.templates.insert(template.name.clone(), template);
    }

    /// Build a custom template from its parts.
    pub fn custom(
        name: &str,
        description: &str,
        params: Vec<&'static str>,
        f: impl Fn(&Args) -> Result<Op> + Send + Sync + 'static,
    ) -> Template {
        Template {
            name: name.to_owned(),
            description: description.to_owned(),
            params,
            materialize: Arc::new(f),
        }
    }

    /// Look up a template by name.
    pub fn get(&self, name: &str) -> Option<&Template> {
        self.templates.get(name)
    }

    /// Materialize `name` with `args` in one call.
    pub fn instantiate(&self, name: &str, args: &Args) -> Result<Op> {
        self.get(name)
            .ok_or_else(|| CoreError::Schema(format!("unknown template `{name}`")))?
            .instantiate(args)
    }

    /// Iterate over all registered templates.
    pub fn iter(&self) -> impl Iterator<Item = &Template> + '_ {
        self.templates.values()
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Is the library empty?
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> TemplateLibrary {
        TemplateLibrary::builtin()
    }

    #[test]
    fn builtin_covers_paper_vocabulary() {
        let l = lib();
        for name in [
            "not_null",
            "selection",
            "pk_check",
            "dedup",
            "function",
            "aggregation",
            "project_out",
            "add_field",
            "surrogate_key",
            "union",
            "join",
            "difference",
            "intersection",
        ] {
            assert!(l.get(name).is_some(), "missing builtin `{name}`");
        }
        assert!(l.len() >= 13);
    }

    #[test]
    fn not_null_materializes() {
        let op = lib()
            .instantiate("not_null", &ArgsBuilder::new().attr("attr", "cost").build())
            .unwrap();
        assert_eq!(op, Op::Unary(UnaryOp::not_null("cost")));
    }

    #[test]
    fn selection_materializes_each_operator() {
        let l = lib();
        for (sym, _op) in [("=", CmpOp::Eq), ("<", CmpOp::Lt), (">=", CmpOp::Ge)] {
            let args = ArgsBuilder::new()
                .attr("attr", "v")
                .name("op", sym)
                .value("value", 5)
                .build();
            assert!(l.instantiate("selection", &args).is_ok(), "op {sym}");
        }
        let bad = ArgsBuilder::new()
            .attr("attr", "v")
            .name("op", "~~")
            .value("value", 5)
            .build();
        assert!(l.instantiate("selection", &bad).is_err());
    }

    #[test]
    fn missing_parameter_is_reported() {
        let err = lib()
            .instantiate("not_null", &ArgsBuilder::new().build())
            .unwrap_err();
        assert!(err.to_string().contains("requires parameter `attr`"));
    }

    #[test]
    fn unknown_template_is_reported() {
        assert!(lib()
            .instantiate("frobnicate", &ArgsBuilder::new().build())
            .is_err());
    }

    #[test]
    fn aggregation_materializes() {
        let args = ArgsBuilder::new()
            .attrs("group_by", ["k", "d"])
            .name("func", "sum")
            .attr("input", "v")
            .attr("output", "v")
            .build();
        let op = lib().instantiate("aggregation", &args).unwrap();
        match op {
            Op::Unary(UnaryOp::Aggregate { agg, .. }) => {
                assert_eq!(agg.group_by.len(), 2);
                assert_eq!(agg.aggregates[0].func, AggFunc::Sum);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn custom_template_registration() {
        let mut l = lib();
        l.register(TemplateLibrary::custom(
            "phone_normalize",
            "normalize phone numbers",
            vec!["attr"],
            |args| {
                let a = args["attr"].as_attr()?.clone();
                Ok(Op::Unary(UnaryOp::function(
                    "phone_normalize",
                    [a.clone()],
                    a,
                )))
            },
        ));
        let op = l
            .instantiate(
                "phone_normalize",
                &ArgsBuilder::new().attr("attr", "phone").build(),
            )
            .unwrap();
        match op {
            Op::Unary(UnaryOp::Function(f)) => assert_eq!(f.function, "phone_normalize"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attr_arg_coerces_to_single_element_list() {
        let args = ArgsBuilder::new().attr("key", "k").build();
        let op = lib().instantiate("pk_check", &args).unwrap();
        assert_eq!(
            op,
            Op::Unary(UnaryOp::PkCheck {
                key: vec![Attr::new("k")],
                selectivity: 1.0
            })
        );
    }
}
