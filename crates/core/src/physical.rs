//! Physical optimization (§6 — the paper's future work: "the physical
//! optimization of ETL workflows, i.e., taking physical operators and
//! access methods into consideration").
//!
//! The logical layer decides *which* activities run *in what order*; this
//! module decides *how* each one executes:
//!
//! * blocking operators (aggregation, dedup, PK check) choose between a
//!   **hash** implementation (linear, needs working memory for the groups)
//!   and a **sort-based** one (`n·log₂n`, but free when the input already
//!   arrives sorted on the needed key — and its output *is* sorted);
//! * surrogate keys choose between an in-memory **hash lookup** and a
//!   **sorted lookup** against the dimension table;
//! * joins/differences/intersections choose **hash** vs **sort-merge**.
//!
//! Sort orders are propagated through order-preserving operators
//! (System-R-style *interesting orders*): a sort paid for once can make a
//! downstream blocking operator free, so the planner keeps a Pareto
//! frontier of `(order, cost)` alternatives per node and commits only at
//! the targets. [`PhysicalCostModel`] exposes the planned total through the
//! [`CostModel`] trait, so the logical search algorithms can optimize
//! directly against physical costs.

use std::collections::BTreeMap;

use crate::activity::{Activity, Op};
use crate::cost::CostModel;
use crate::error::{CoreError, Result};
use crate::graph::{Node, NodeId};
use crate::schema::Attr;
use crate::semantics::{BinaryOp, UnaryOp};
use crate::workflow::Workflow;

/// Physical implementation choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysImpl {
    /// Row-at-a-time scan (all row-wise operators).
    Scan,
    /// Hash-based grouping/dedup/PK check (linear, memory-bound).
    HashGroup,
    /// Sort-based grouping/dedup/PK check (free if pre-sorted; sorts its
    /// output).
    SortGroup,
    /// Surrogate key via an in-memory hash of the lookup table.
    HashLookup,
    /// Surrogate key via binary search in the sorted lookup table.
    SortedLookup,
    /// Hash join / difference / intersection.
    HashBinary,
    /// Sort-merge join / difference / intersection.
    SortMergeBinary,
    /// Bag-union concatenation.
    Concat,
}

impl PhysImpl {
    /// Display tag.
    pub fn tag(self) -> &'static str {
        match self {
            PhysImpl::Scan => "scan",
            PhysImpl::HashGroup => "hash-group",
            PhysImpl::SortGroup => "sort-group",
            PhysImpl::HashLookup => "hash-lookup",
            PhysImpl::SortedLookup => "sorted-lookup",
            PhysImpl::HashBinary => "hash",
            PhysImpl::SortMergeBinary => "sort-merge",
            PhysImpl::Concat => "concat",
        }
    }
}

/// Planner configuration.
#[derive(Debug, Clone, Copy)]
pub struct PhysicalConfig {
    /// Rows that fit in working memory; hash implementations whose build
    /// side exceeds this are unavailable.
    pub memory_rows: f64,
    /// Estimated cardinality of surrogate-key lookup tables.
    pub lookup_rows: f64,
}

impl Default for PhysicalConfig {
    fn default() -> Self {
        PhysicalConfig {
            memory_rows: 10_000.0,
            lookup_rows: 50_000.0,
        }
    }
}

/// A sort order: the attribute prefix the data is sorted on (`None` =
/// unordered).
type SortOrder = Option<Vec<Attr>>;

/// Back-reference for plan reconstruction: the provider alternatives this
/// alternative was built from, plus the implementation chosen here.
type BackRef = (Vec<(NodeId, usize)>, PhysImpl);

/// One planned alternative at a node (the chosen implementation lives in
/// the back-reference table so the plan can be reconstructed).
#[derive(Debug, Clone)]
struct Alt {
    /// Cumulative cost of everything up to and including this node.
    cost: f64,
    /// Output order.
    order: SortOrder,
}

/// The final plan: one implementation per activity, plus the total cost.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// Implementation per activity node.
    pub choices: BTreeMap<NodeId, PhysImpl>,
    /// Total physical cost.
    pub total_cost: f64,
}

fn nlogn(n: f64) -> f64 {
    if n <= 1.0 {
        n
    } else {
        n * n.log2()
    }
}

/// Does `have` satisfy sortedness on `want` (prefix match)?
fn satisfies(have: &SortOrder, want: &[Attr]) -> bool {
    match have {
        None => false,
        Some(h) => h.len() >= want.len() && h[..want.len()] == *want,
    }
}

/// Does an op preserve its input's sort order?
fn preserves_order(op: &UnaryOp, order: &SortOrder) -> bool {
    let Some(attrs) = order else { return false };
    match op {
        // Filters drop rows but keep relative order.
        UnaryOp::Filter { .. } | UnaryOp::NotNull { .. } => true,
        // Order survives unless the op rewrites/removes an ordering attr.
        UnaryOp::Function(f) => attrs
            .iter()
            .all(|a| !f.inputs.contains(a) || (*a == f.output && f.injective)),
        UnaryOp::ProjectOut(dropped) => attrs.iter().all(|a| !dropped.contains(a)),
        UnaryOp::AddField { .. } => true,
        UnaryOp::SurrogateKey { key, .. } => attrs.iter().all(|a| a != key),
        // Blocking ops define their own output order; handled separately.
        UnaryOp::Aggregate { .. } | UnaryOp::Dedup { .. } | UnaryOp::PkCheck { .. } => false,
    }
}

/// The grouping key a blocking op needs (whole-row dedup keys on the input
/// schema).
fn blocking_key(op: &UnaryOp, act: &Activity) -> Vec<Attr> {
    match op {
        UnaryOp::Aggregate { agg, .. } => agg.group_by.clone(),
        UnaryOp::PkCheck { key, .. } => key.clone(),
        UnaryOp::Dedup { .. } => act
            .inputs
            .first()
            .map(|s| s.attrs().to_vec())
            .unwrap_or_default(),
        _ => Vec::new(),
    }
}

/// Plan one workflow: per-node Pareto frontier over (order, cost).
pub fn plan(wf: &Workflow, cfg: &PhysicalConfig) -> Result<PhysicalPlan> {
    let graph = wf.graph();
    let order = graph.topo_order()?;
    // Frontier per node. Kept tiny: unordered best + best per distinct
    // sort order.
    let mut frontiers: BTreeMap<NodeId, Vec<Alt>> = BTreeMap::new();
    // Remember, per node and per alternative index, which provider
    // alternative and choice produced it — enough to reconstruct choices.
    let mut back: BTreeMap<NodeId, Vec<BackRef>> = BTreeMap::new();
    let rows = wf.row_counts()?;

    for &id in &order {
        let mut alts: Vec<Alt> = Vec::new();
        let mut backrefs: Vec<BackRef> = Vec::new();
        match graph.node(id)? {
            Node::Recordset(_) => match graph.provider(id, 0)? {
                None => {
                    alts.push(Alt {
                        cost: 0.0,
                        order: None,
                    });
                    backrefs.push((Vec::new(), PhysImpl::Concat));
                }
                Some(p) => {
                    for (pi, palt) in frontiers[&p].iter().enumerate() {
                        alts.push(Alt {
                            cost: palt.cost,
                            order: palt.order.clone(),
                        });
                        backrefs.push((vec![(p, pi)], PhysImpl::Concat));
                    }
                }
            },
            Node::Activity(act) => {
                let n_in: Vec<f64> = graph
                    .providers(id)?
                    .iter()
                    .map(|p| p.map(|p| rows[&p]).unwrap_or(0.0))
                    .collect();
                match &act.op {
                    op @ (Op::Unary(_) | Op::Merged(_)) => {
                        // `unary_chain` is total on these two variants; the
                        // error arm is unreachable but typed, not a panic.
                        let op_list = op.unary_chain().ok_or_else(|| {
                            CoreError::Schema(format!("activity {id} is not unary"))
                        })?;
                        let p = graph.provider(id, 0)?.expect("validated workflow");
                        for (pi, palt) in frontiers[&p].iter().enumerate() {
                            // Price the chain link by link against this
                            // provider alternative.
                            let mut n = n_in[0];
                            let mut cost = palt.cost;
                            let mut cur_order = palt.order.clone();
                            let mut choice = PhysImpl::Scan;
                            let mut feasible = true;
                            for link in op_list {
                                if link.is_row_wise() {
                                    cost += n;
                                    if !preserves_order(link, &cur_order) {
                                        cur_order = None;
                                    }
                                } else {
                                    let key = blocking_key(link, act);
                                    let groups = n * link.selectivity();
                                    let hash_ok = groups <= cfg.memory_rows;
                                    let presorted = satisfies(&cur_order, &key);
                                    // Pick per-link: sorted input → free
                                    // sort-group; else the cheaper feasible.
                                    let (c, imp, out_order) = if presorted {
                                        (n, PhysImpl::SortGroup, Some(key.clone()))
                                    } else if hash_ok {
                                        (n, PhysImpl::HashGroup, None)
                                    } else {
                                        (nlogn(n), PhysImpl::SortGroup, Some(key.clone()))
                                    };
                                    cost += c;
                                    choice = imp;
                                    cur_order = out_order;
                                }
                                if let UnaryOp::SurrogateKey { .. } = link {
                                    // Already priced as row-wise scan above;
                                    // add the lookup access refinement.
                                    let hash_ok = cfg.lookup_rows <= cfg.memory_rows;
                                    if hash_ok {
                                        choice = PhysImpl::HashLookup;
                                    } else {
                                        // Binary search per row.
                                        cost += n * (cfg.lookup_rows.max(2.0)).log2() - n;
                                        choice = PhysImpl::SortedLookup;
                                    }
                                }
                                n *= link.selectivity();
                                if n.is_nan() {
                                    feasible = false;
                                    break;
                                }
                            }
                            if feasible {
                                alts.push(Alt {
                                    cost,
                                    order: cur_order,
                                });
                                backrefs.push((vec![(p, pi)], choice));
                            }
                        }
                    }
                    Op::Binary(bop) => {
                        let p0 = graph.provider(id, 0)?.expect("validated");
                        let p1 = graph.provider(id, 1)?.expect("validated");
                        for (i0, a0) in frontiers[&p0].iter().enumerate() {
                            for (i1, a1) in frontiers[&p1].iter().enumerate() {
                                let base = a0.cost + a1.cost;
                                match bop {
                                    BinaryOp::Union => {
                                        alts.push(Alt {
                                            cost: base,
                                            order: None,
                                        });
                                        backrefs.push((vec![(p0, i0), (p1, i1)], PhysImpl::Concat));
                                    }
                                    BinaryOp::Join(on) => {
                                        self_binary_alts(
                                            cfg,
                                            on,
                                            base,
                                            a0,
                                            a1,
                                            n_in[0],
                                            n_in[1],
                                            &mut alts,
                                            &mut backrefs,
                                            p0,
                                            i0,
                                            p1,
                                            i1,
                                        );
                                    }
                                    BinaryOp::Difference | BinaryOp::Intersection => {
                                        // Keyed on the whole row.
                                        let key = act
                                            .inputs
                                            .first()
                                            .map(|s| s.attrs().to_vec())
                                            .unwrap_or_default();
                                        self_binary_alts(
                                            cfg,
                                            &key,
                                            base,
                                            a0,
                                            a1,
                                            n_in[0],
                                            n_in[1],
                                            &mut alts,
                                            &mut backrefs,
                                            p0,
                                            i0,
                                            p1,
                                            i1,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Pareto prune: keep the cheapest alternative per distinct order,
        // and drop ordered alternatives dominated by a cheaper unordered
        // one only if their order never helps (we keep them — frontier
        // stays small in practice; cap at 8).
        alts_prune(&mut alts, &mut backrefs);
        frontiers.insert(id, alts);
        back.insert(id, backrefs);
    }

    // Commit: cheapest alternative at every target, then walk back.
    let mut choices = BTreeMap::new();
    // With several targets the max cumulative cost is reported (shared
    // upstream work would be double-counted by a sum); the evaluation
    // workloads are single-target.
    let mut total_cost: f64 = 0.0;
    let mut pending: Vec<(NodeId, usize)> = Vec::new();
    for t in wf.targets() {
        let alts = &frontiers[&t];
        let (best_idx, best) = alts
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
            .expect("every node has an alternative");
        total_cost = total_cost.max(best.cost);
        pending.push((t, best_idx));
    }
    while let Some((node, idx)) = pending.pop() {
        let (providers, choice) = back[&node][idx].clone();
        if graph.activity(node).is_ok() {
            choices.insert(node, choice);
        }
        for pref in providers {
            pending.push(pref);
        }
    }
    Ok(PhysicalPlan {
        choices,
        total_cost,
    })
}

#[allow(clippy::too_many_arguments)]
fn self_binary_alts(
    cfg: &PhysicalConfig,
    key: &[Attr],
    base: f64,
    a0: &Alt,
    a1: &Alt,
    n0: f64,
    n1: f64,
    alts: &mut Vec<Alt>,
    backrefs: &mut Vec<BackRef>,
    p0: NodeId,
    i0: usize,
    p1: NodeId,
    i1: usize,
) {
    // Hash: build the smaller side if it fits.
    if n0.min(n1) <= cfg.memory_rows {
        alts.push(Alt {
            cost: base + n0 + n1,
            order: None,
        });
        backrefs.push((vec![(p0, i0), (p1, i1)], PhysImpl::HashBinary));
    }
    // Sort-merge: each unsorted side pays its sort; output sorted on key.
    let sort0 = if satisfies(&a0.order, key) {
        n0
    } else {
        nlogn(n0)
    };
    let sort1 = if satisfies(&a1.order, key) {
        n1
    } else {
        nlogn(n1)
    };
    alts.push(Alt {
        cost: base + sort0 + sort1,
        order: Some(key.to_vec()),
    });
    backrefs.push((vec![(p0, i0), (p1, i1)], PhysImpl::SortMergeBinary));
}

fn alts_prune(alts: &mut Vec<Alt>, backrefs: &mut Vec<BackRef>) {
    // Keep the cheapest per distinct order; cap the frontier.
    let mut keep: Vec<usize> = Vec::new();
    for (i, a) in alts.iter().enumerate() {
        let better_exists = alts.iter().enumerate().any(|(j, b)| {
            j != i && b.order == a.order && (b.cost < a.cost || (b.cost == a.cost && j < i))
        });
        if !better_exists {
            keep.push(i);
        }
    }
    keep.sort_by(|&a, &b| alts[a].cost.total_cmp(&alts[b].cost));
    keep.truncate(8);
    let mut new_alts = Vec::with_capacity(keep.len());
    let mut new_back = Vec::with_capacity(keep.len());
    for &i in &keep {
        new_alts.push(alts[i].clone());
        new_back.push(backrefs[i].clone());
    }
    *alts = new_alts;
    *backrefs = new_back;
}

/// A [`CostModel`] whose state cost is the total of the best physical plan
/// — letting the logical search algorithms optimize directly against
/// physical costs.
///
/// Note: `cost` runs the full planner, so the state cost is **not** a sum
/// of per-activity terms — `supports_delta` is `false` and every search
/// algorithm ranks states of this model through the full `cost` (no
/// delta-repricing shortcut). The per-activity `activity_cost` (used by the
/// generic `report`/`report_incremental` paths) prices each activity with a
/// context-free fallback that ignores order propagation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhysicalCostModel {
    /// Planner configuration.
    pub config: PhysicalConfig,
}

impl CostModel for PhysicalCostModel {
    fn name(&self) -> &str {
        "physical"
    }

    fn activity_cost(&self, activity: &Activity, input_rows: &[f64]) -> f64 {
        // Context-free fallback (used by the generic report paths): price
        // the activity under its cheapest context-free implementation.
        match &activity.op {
            Op::Unary(op) => {
                // Row-wise ops scan; blocking ops hash when the groups fit.
                let hashable = input_rows[0] * op.selectivity() <= self.config.memory_rows;
                if op.is_row_wise() || hashable {
                    input_rows[0]
                } else {
                    nlogn(input_rows[0])
                }
            }
            Op::Merged(chain) => {
                let mut n = input_rows[0];
                let mut total = 0.0;
                for op in chain {
                    total += if op.is_row_wise() || n * op.selectivity() <= self.config.memory_rows
                    {
                        n
                    } else {
                        nlogn(n)
                    };
                    n *= op.selectivity();
                }
                total
            }
            Op::Binary(BinaryOp::Union) => 0.0,
            Op::Binary(_) => {
                let (l, r) = (input_rows[0], input_rows[1]);
                if l.min(r) <= self.config.memory_rows {
                    l + r
                } else {
                    nlogn(l) + nlogn(r)
                }
            }
        }
    }

    fn cost(&self, wf: &Workflow) -> Result<f64> {
        Ok(plan(wf, &self.config)?.total_cost)
    }

    fn supports_delta(&self) -> bool {
        // The planner's total is order-sensitive (sort orders propagate
        // across activities), so it cannot be maintained as a sum of
        // per-node terms; searches must fall back to full `cost`.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{HeuristicSearch, Optimizer};
    use crate::postcond::equivalent;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::Aggregation;
    use crate::workflow::WorkflowBuilder;

    fn agg_chain(rows: f64) -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), rows);
        let g = b.unary(
            "γ",
            UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")).with_selectivity(0.5),
            s,
        );
        b.target("T", Schema::of(["k", "v"]), g);
        b.build().unwrap()
    }

    #[test]
    fn hash_group_when_it_fits() {
        let wf = agg_chain(1000.0);
        let cfg = PhysicalConfig {
            memory_rows: 10_000.0,
            ..Default::default()
        };
        let p = plan(&wf, &cfg).unwrap();
        let g = wf.activities().unwrap()[0];
        assert_eq!(p.choices[&g], PhysImpl::HashGroup);
        assert!((p.total_cost - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn sort_group_when_memory_is_tight() {
        let wf = agg_chain(1000.0);
        let cfg = PhysicalConfig {
            memory_rows: 10.0,
            ..Default::default()
        };
        let p = plan(&wf, &cfg).unwrap();
        let g = wf.activities().unwrap()[0];
        assert_eq!(p.choices[&g], PhysImpl::SortGroup);
        assert!(p.total_cost > 1000.0);
    }

    #[test]
    fn sorted_input_makes_second_aggregation_free() {
        // γ(k,d) then γ(k): sort-based first aggregation leaves the data
        // sorted on (k,d), whose prefix (k) serves the second one.
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "d", "v"]), 100_000.0);
        let g1 = b.unary(
            "γ1",
            UnaryOp::aggregate(Aggregation::sum(["k", "d"], "v", "v")).with_selectivity(0.9),
            s,
        );
        let g2 = b.unary(
            "γ2",
            UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")).with_selectivity(0.5),
            g1,
        );
        b.target("T", Schema::of(["k", "v"]), g2);
        let wf = b.build().unwrap();
        // Memory too small for hashing either aggregation.
        let cfg = PhysicalConfig {
            memory_rows: 100.0,
            ..Default::default()
        };
        let p = plan(&wf, &cfg).unwrap();
        let acts = wf.activities().unwrap();
        assert_eq!(p.choices[&acts[0]], PhysImpl::SortGroup);
        assert_eq!(p.choices[&acts[1]], PhysImpl::SortGroup);
        // Total: sort(100k) + scan(90k) — not two sorts.
        let n: f64 = 100_000.0;
        let expected = n * n.log2() + 0.9 * n;
        assert!(
            (p.total_cost - expected).abs() < 1.0,
            "{} vs {}",
            p.total_cost,
            expected
        );
    }

    #[test]
    fn filters_preserve_sortedness_between_blocking_ops() {
        // γ(k) → σ → DD: the filter keeps the sort order, so a whole-row
        // dedup…  (whole-row keys differ from (k); use PK check on k).
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 50_000.0);
        let g = b.unary(
            "γ",
            UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")).with_selectivity(0.8),
            s,
        );
        let f = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.5),
            g,
        );
        let pk = b.unary(
            "PK",
            UnaryOp::PkCheck {
                key: vec!["k".into()],
                selectivity: 1.0,
            },
            f,
        );
        b.target("T", Schema::of(["k", "v"]), pk);
        let wf = b.build().unwrap();
        let cfg = PhysicalConfig {
            memory_rows: 1.0,
            ..Default::default()
        };
        let p = plan(&wf, &cfg).unwrap();
        let acts = wf.activities().unwrap();
        // PK check rides the order produced by the sort-based aggregation.
        assert_eq!(p.choices[&acts[2]], PhysImpl::SortGroup);
        let n: f64 = 50_000.0;
        let expected = nlogn(n) + 0.8 * n + 0.4 * n; // sort-γ + σ + free-sorted PK
        assert!(
            (p.total_cost - expected).abs() < 1.0,
            "{} vs {}",
            p.total_cost,
            expected
        );
    }

    #[test]
    fn binary_ops_pick_hash_when_one_side_fits() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("BIG", Schema::of(["k", "x"]), 100_000.0);
        let s2 = b.source("SMALL", Schema::of(["k", "y"]), 100.0);
        let j = b.binary("J", BinaryOp::Join(vec!["k".into()]), s1, s2);
        b.target("T", Schema::of(["k", "x", "y"]), j);
        let wf = b.build().unwrap();
        let p = plan(&wf, &PhysicalConfig::default()).unwrap();
        let jn = wf.activities().unwrap()[0];
        assert_eq!(p.choices[&jn], PhysImpl::HashBinary);
        // And sort-merge when nothing fits.
        let tight = PhysicalConfig {
            memory_rows: 10.0,
            ..Default::default()
        };
        let p = plan(&wf, &tight).unwrap();
        assert_eq!(p.choices[&jn], PhysImpl::SortMergeBinary);
    }

    #[test]
    fn surrogate_key_lookup_strategies() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 1000.0);
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "DIM"), s);
        b.target("T", Schema::of(["sk", "v"]), sk);
        let wf = b.build().unwrap();
        let roomy = PhysicalConfig {
            memory_rows: 1e6,
            lookup_rows: 1000.0,
        };
        let p = plan(&wf, &roomy).unwrap();
        let skn = wf.activities().unwrap()[0];
        assert_eq!(p.choices[&skn], PhysImpl::HashLookup);
        let tight = PhysicalConfig {
            memory_rows: 10.0,
            lookup_rows: 1e6,
        };
        let p = plan(&wf, &tight).unwrap();
        assert_eq!(p.choices[&skn], PhysImpl::SortedLookup);
        assert!(p.total_cost > 1000.0, "binary search per row costs extra");
    }

    #[test]
    fn logical_search_runs_on_physical_costs() {
        // The paper's future-work pitch, realized: HS over physical costs.
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 50_000.0);
        let g = b.unary(
            "γ",
            UnaryOp::aggregate(Aggregation::sum(["k", "v"], "v", "total")).with_selectivity(0.9),
            s,
        );
        let f = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("k", 10)).with_selectivity(0.1),
            g,
        );
        b.target("T", Schema::of(["k", "v", "total"]), f);
        let wf = b.build().unwrap();
        let model = PhysicalCostModel {
            config: PhysicalConfig {
                memory_rows: 100.0,
                ..Default::default()
            },
        };
        let out = HeuristicSearch::new().run(&wf, &model).unwrap();
        // σ(k) over a grouper can cross γ: pushing it down shrinks the sort.
        assert!(out.best_cost < out.initial_cost);
        assert!(equivalent(&wf, &out.best).unwrap());
    }

    #[test]
    fn physical_model_never_exceeds_naive_sort_everything() {
        use crate::cost::RowCountModel;
        for seed in 0..5u64 {
            let mut rng = crate::rng::Rng::seed_from_u64(seed);
            let rows = rng.gen_range(100.0..100_000.0);
            let wf = agg_chain(rows);
            let phys = PhysicalCostModel::default().cost(&wf).unwrap();
            let naive = RowCountModel::default().cost(&wf).unwrap();
            assert!(
                phys <= naive + 1e-6,
                "physical {phys} should never beat-lose to sort-everything {naive}"
            );
        }
    }
}
