//! Recordsets: data stores that provide or consume flat record schemata.
//!
//! The paper deals with "the two most popular types of recordsets, namely
//! relational tables and record files" (§2.1). A recordset has exactly one
//! schema. Source recordsets additionally carry a cardinality estimate used
//! by the cost model to seed row-count propagation.

use std::fmt;

use crate::schema::Schema;

/// Physical flavor of a recordset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordsetKind {
    /// A relational table.
    Table,
    /// A flat record file.
    File,
}

impl RecordsetKind {
    /// Display tag.
    pub fn tag(self) -> &'static str {
        match self {
            RecordsetKind::Table => "table",
            RecordsetKind::File => "file",
        }
    }
}

/// A recordset node in the workflow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Recordset {
    /// Name, e.g. `"PARTS1"`.
    pub name: String,
    /// The single schema of the recordset (reference attribute names).
    pub schema: Schema,
    /// Table or file.
    pub kind: RecordsetKind,
    /// Estimated cardinality. Meaningful for sources (seeds the cost
    /// model); ignored for intermediate and target recordsets, whose
    /// cardinality is derived from the flow.
    pub row_estimate: f64,
}

impl Recordset {
    /// A relational table.
    pub fn table(name: impl Into<String>, schema: Schema) -> Self {
        Recordset {
            name: name.into(),
            schema,
            kind: RecordsetKind::Table,
            row_estimate: 0.0,
        }
    }

    /// A record file.
    pub fn file(name: impl Into<String>, schema: Schema) -> Self {
        Recordset {
            name: name.into(),
            schema,
            kind: RecordsetKind::File,
            row_estimate: 0.0,
        }
    }

    /// Attach a cardinality estimate (sources only).
    pub fn with_rows(mut self, rows: f64) -> Self {
        assert!(rows >= 0.0, "row estimate must be non-negative");
        self.row_estimate = rows;
        self
    }
}

impl fmt::Display for Recordset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}) {}", self.name, self.kind.tag(), self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = Recordset::table("PARTS1", Schema::of(["pkey", "cost"])).with_rows(1000.0);
        assert_eq!(t.kind, RecordsetKind::Table);
        assert_eq!(t.row_estimate, 1000.0);
        let f = Recordset::file("extract.dat", Schema::of(["a"]));
        assert_eq!(f.kind, RecordsetKind::File);
        assert_eq!(f.row_estimate, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rows_rejected() {
        let _ = Recordset::table("T", Schema::empty()).with_rows(-1.0);
    }

    #[test]
    fn display() {
        let t = Recordset::table("DW", Schema::of(["pkey"]));
        assert_eq!(t.to_string(), "DW (table) [pkey]");
    }
}
