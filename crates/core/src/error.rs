//! Error types for workflow construction, validation and optimization.

use std::fmt;

use crate::graph::NodeId;

/// Crate-wide result alias.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Errors raised while building, validating or optimizing a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The graph contains a cycle; ETL workflows must be DAGs.
    CyclicGraph {
        /// A node that participates in the cycle.
        node: NodeId,
    },
    /// A node id does not exist (or was removed) in the graph.
    UnknownNode(NodeId),
    /// An activity input port is not fed by any provider.
    MissingProvider {
        /// The consumer whose port is dangling.
        node: NodeId,
        /// The dangling input port.
        port: usize,
    },
    /// A node has more providers on one port than allowed.
    DuplicateProvider {
        /// The consumer node.
        node: NodeId,
        /// The over-supplied port.
        port: usize,
    },
    /// An activity consumes an attribute its provider does not offer.
    UnresolvedAttribute {
        /// The consumer node.
        node: NodeId,
        /// Human-readable description of the missing attribute.
        attr: String,
    },
    /// An activity or recordset has no consumer (activities must feed
    /// something; only target recordsets may be sinks).
    DanglingOutput(NodeId),
    /// A source recordset is also written to, or a target is read from.
    InvalidRecordsetRole {
        /// The offending recordset node.
        node: NodeId,
        /// Explanation of the violated role.
        reason: String,
    },
    /// The workflow has no source or no target recordset.
    NoSourceOrTarget,
    /// The naming principle (§3.1) was violated while registering names.
    Naming(String),
    /// A schema-level inconsistency independent of graph shape.
    Schema(String),
    /// The optimizer exhausted its budget before finishing (only reported by
    /// searches configured to treat exhaustion as an error).
    BudgetExhausted {
        /// States explored before giving up.
        visited: usize,
    },
    /// A plan observation failed while the adaptive re-optimization loop
    /// was executing a chosen plan for feedback (the engine-side error,
    /// carried as text so the core crate stays engine-agnostic).
    Observation(String),
    /// A conformance fault-injection site does not describe a valid
    /// (function, filter) pair on the workflow it was applied to — the
    /// nodes have the wrong operator kinds, or the site went stale after a
    /// transition rewired the graph.
    InvalidFaultSite {
        /// The offending node of the site.
        node: NodeId,
        /// What exactly disqualifies the site.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::CyclicGraph { node } => {
                write!(f, "workflow graph contains a cycle through node {node}")
            }
            CoreError::UnknownNode(n) => write!(f, "unknown node id {n}"),
            CoreError::MissingProvider { node, port } => {
                write!(f, "node {node} input port {port} has no data provider")
            }
            CoreError::DuplicateProvider { node, port } => {
                write!(
                    f,
                    "node {node} input port {port} has more than one provider \
                     (use a UNION activity to combine flows)"
                )
            }
            CoreError::UnresolvedAttribute { node, attr } => {
                write!(
                    f,
                    "node {node} consumes attribute `{attr}` that no provider offers"
                )
            }
            CoreError::DanglingOutput(n) => {
                write!(f, "node {n} produces data that nothing consumes")
            }
            CoreError::InvalidRecordsetRole { node, reason } => {
                write!(f, "recordset {node} has an invalid role: {reason}")
            }
            CoreError::NoSourceOrTarget => {
                write!(
                    f,
                    "workflow must have at least one source and one target recordset"
                )
            }
            CoreError::Naming(msg) => write!(f, "naming principle violation: {msg}"),
            CoreError::Schema(msg) => write!(f, "schema error: {msg}"),
            CoreError::BudgetExhausted { visited } => {
                write!(f, "search budget exhausted after visiting {visited} states")
            }
            CoreError::Observation(msg) => {
                write!(f, "plan observation failed: {msg}")
            }
            CoreError::InvalidFaultSite { node, detail } => {
                write!(f, "invalid fault-injection site at node {node}: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::MissingProvider {
            node: NodeId(3),
            port: 1,
        };
        let s = e.to_string();
        assert!(s.contains("port 1"), "{s}");
        assert!(s.contains("no data provider"), "{s}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CoreError::NoSourceOrTarget, CoreError::NoSourceOrTarget);
        assert_ne!(
            CoreError::UnknownNode(NodeId(1)),
            CoreError::UnknownNode(NodeId(2))
        );
    }
}
