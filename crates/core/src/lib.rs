#![warn(missing_docs)]
//! # etlopt-core
//!
//! Logical optimization of Extraction-Transformation-Loading (ETL) workflows,
//! reproducing *Simitsis, Vassiliadis, Sellis — "Optimizing ETL Processes in
//! Data Warehouses", ICDE 2005*.
//!
//! An ETL workflow is a directed acyclic graph whose nodes are **activities**
//! (filters, functions, aggregations, surrogate-key assignments, unions,
//! joins, …) and **recordsets** (source/target tables and files), and whose
//! edges are data-provider relationships. Optimization is modeled as
//! **state-space search**: every state is a complete workflow, and a set of
//! equivalence-preserving **transitions** — [`transition::Swap`],
//! [`transition::Factorize`], [`transition::Distribute`],
//! [`transition::Merge`], [`transition::Split`] — fabricates the space. A
//! [`cost::CostModel`] ranks states and the [`opt`] module provides the
//! paper's search algorithms: exhaustive ([`opt::ExhaustiveSearch`]),
//! heuristic ([`opt::HeuristicSearch`], Fig. 7 of the paper), greedy
//! ([`opt::HsGreedy`]), and bounded-width beam ([`opt::BeamSearch`]).
//!
//! ## Quick tour
//!
//! ```
//! use etlopt_core::prelude::*;
//!
//! // Build the classic "push the selection below the expensive op" workflow:
//! //   SRC --> $2€ --> σ(euro_cost > 100) --> DW
//! let mut b = WorkflowBuilder::new();
//! let src = b.source("SRC", Schema::of(["pkey", "dollar_cost"]), 1_000.0);
//! let f = b.unary(
//!     "$2E",
//!     UnaryOp::function("dollar2euro", ["dollar_cost"], "euro_cost"),
//!     src,
//! );
//! let sel = b.unary(
//!     "sigma(euro)",
//!     UnaryOp::filter(Predicate::gt("euro_cost", 100.0)).with_selectivity(0.1),
//!     f,
//! );
//! b.target("DW", Schema::of(["pkey", "euro_cost"]), sel);
//! let wf = b.build().unwrap();
//!
//! // Optimize. The selection cannot move below `$2E` (its functionality
//! // schema mentions `euro_cost`, which only exists after the function), so
//! // the optimizer must leave the order alone — exactly the paper's Fig. 5.
//! let model = RowCountModel::default();
//! let best = HeuristicSearch::new().run(&wf, &model).unwrap();
//! assert_eq!(best.best.signature(), wf.signature());
//! ```
//!
//! The crate has no dependencies; the sibling crate `etlopt-engine` executes
//! workflow states over real tuples so equivalence can also be verified
//! empirically.

pub mod activity;
pub mod cost;
pub mod error;
pub mod explain;
pub mod graph;
pub mod impact;
pub mod naming;
pub mod opt;
pub mod oracle;
pub mod physical;
pub mod postcond;
pub mod predicate;
pub mod recordset;
pub mod rng;
pub mod scalar;
pub mod schema;
pub mod schema_gen;
pub mod semantics;
pub mod signature;
pub mod template;
pub mod text;
pub mod trace;
pub mod transition;
pub mod workflow;

/// Convenient glob-import of the types needed for everyday use.
pub mod prelude {
    pub use crate::activity::{Activity, ActivityId};
    pub use crate::cost::{CostModel, CostReport, RowCountModel};
    pub use crate::error::{CoreError, Result};
    pub use crate::graph::NodeId;
    pub use crate::naming::NamingRegistry;
    pub use crate::opt::{
        run_adaptive, AdaptiveConfig, AdaptiveReport, BeamSearch, ExhaustiveSearch,
        HeuristicSearch, HsGreedy, Optimizer, SearchBudget, SearchOutcome,
    };
    pub use crate::predicate::Predicate;
    pub use crate::recordset::Recordset;
    pub use crate::scalar::Scalar;
    pub use crate::schema::{Attr, Schema};
    pub use crate::semantics::{AggFunc, Aggregation, BinaryOp, FunctionApp, UnaryOp};
    pub use crate::signature::Signature;
    pub use crate::trace::{NoopSink, RingSink, SearchStats, TraceEvent, TraceSink};
    pub use crate::transition::{
        Distribute, Factorize, Merge, Split, Swap, Transition, TransitionError, TransitionKind,
    };
    pub use crate::workflow::{Workflow, WorkflowBuilder};
}
