//! Automatic regeneration of activity schemata (§3.2, long version [19]).
//!
//! After every transition "the input and output schemata of each activity
//! are automatically re-generated": we walk the graph in topological order,
//! copy each provider's output schema into its consumers' input ports, and
//! re-derive each activity's output schema from its semantics. A transition
//! that leaves some activity without the attributes its functionality schema
//! needs makes this walk fail — which is precisely how illegal rewirings are
//! rejected (swap conditions 3 and 4 reduce to this walk succeeding).

use crate::error::{CoreError, Result};
use crate::graph::{Graph, Node, NodeId};
use crate::schema::Schema;

/// Re-derive all schemata from source recordsets forward. Intermediate
/// recordsets adopt the schema of the flow written into them; *target*
/// schemata are validated by [`crate::workflow::Workflow::validate`], not
/// here, so the regeneration itself stays role-agnostic.
pub fn regenerate(graph: &mut Graph) -> Result<()> {
    regenerate_nodes(graph, None)
}

/// Re-derive schemata only for the nodes in (or downstream of) `starts` —
/// the incremental form used after a transition, where everything upstream
/// of the rewired nodes is untouched by construction.
pub fn regenerate_downstream(graph: &mut Graph, starts: &[NodeId]) -> Result<()> {
    let dirty = downstream_of(graph, starts)?;
    regenerate_nodes(graph, Some(&dirty))
}

fn regenerate_nodes(graph: &mut Graph, only: Option<&[NodeId]>) -> Result<()> {
    let order = match only {
        None => graph.topo_order()?,
        Some(dirty) => dirty.to_vec(), // already topologically ordered
    };
    for &id in &order {
        let providers = graph.providers(id)?;
        // Collect provider output schemata first (immutable pass).
        let mut inputs: Vec<Option<Schema>> = Vec::with_capacity(providers.len());
        for p in &providers {
            inputs.push(match p {
                Some(pid) => Some(graph.node(*pid)?.output_schema().clone()),
                None => None,
            });
        }
        // Derive from the *current* node first and mutate only on change:
        // `node_mut` is copy-on-write, so an unconditional write would
        // detach every node's `Arc` from sibling states and turn the cheap
        // structural-sharing clone back into a deep copy.
        enum Update {
            Activity(Vec<Schema>, Schema),
            Recordset(Schema),
        }
        let update = match graph.node(id)? {
            Node::Activity(act) => {
                let mut in_schemas = Vec::with_capacity(inputs.len());
                for (port, s) in inputs.into_iter().enumerate() {
                    match s {
                        Some(s) => in_schemas.push(s),
                        None => return Err(CoreError::MissingProvider { node: id, port }),
                    }
                }
                let output = act.derive_output(&in_schemas)?;
                if act.inputs != in_schemas || act.output != output {
                    Some(Update::Activity(in_schemas, output))
                } else {
                    None
                }
            }
            Node::Recordset(rs) => {
                // An intermediate recordset materializes exactly what
                // flows in. A *target* with a declared schema keeps
                // it: the flow must match (equivalence condition (a),
                // §3.4) and `Workflow::validate` rejects the state
                // otherwise. A target declared without a schema
                // adopts the flow as a convenience.
                let is_target = graph.consumers(id)?.is_empty();
                let keep_declared = is_target && !rs.schema.is_empty();
                match inputs.first() {
                    Some(Some(s)) if !keep_declared && !rs.schema.same_attrs(s) => {
                        Some(Update::Recordset(s.clone()))
                    }
                    _ => None,
                }
            }
        };
        match update {
            Some(Update::Activity(in_schemas, output)) => {
                if let Node::Activity(act) = graph.node_mut(id)? {
                    act.inputs = in_schemas;
                    act.output = output;
                }
            }
            Some(Update::Recordset(s)) => {
                if let Node::Recordset(rs) = graph.node_mut(id)? {
                    rs.schema = s;
                }
            }
            None => {}
        }
    }
    Ok(())
}

/// Check whether regeneration *would* succeed on this graph without
/// mutating it. Transitions use this to test a candidate rewiring before
/// committing. Runs as a pure derivation walk over a scratch schema table —
/// no graph clone, no copy-on-write detaching.
pub fn check(graph: &Graph) -> Result<()> {
    let order = graph.topo_order()?;
    // Derived output schema per node, indexed by arena slot.
    let cap = order.iter().map(|id| id.0 as usize + 1).max().unwrap_or(0);
    let mut outs: Vec<Option<Schema>> = vec![None; cap];
    for &id in &order {
        let derived_input = |p: &Option<NodeId>| -> Option<Schema> {
            p.map(|pid| {
                outs[pid.0 as usize]
                    .clone()
                    .unwrap_or_else(|| match graph.node(pid) {
                        Ok(n) => n.output_schema().clone(),
                        Err(_) => Schema::empty(),
                    })
            })
        };
        let providers = graph.providers(id)?;
        let out = match graph.node(id)? {
            Node::Activity(act) => {
                let mut in_schemas = Vec::with_capacity(providers.len());
                for (port, p) in providers.iter().enumerate() {
                    match derived_input(p) {
                        Some(s) => in_schemas.push(s),
                        None => return Err(CoreError::MissingProvider { node: id, port }),
                    }
                }
                act.derive_output(&in_schemas)?
            }
            Node::Recordset(rs) => {
                let is_target = graph.consumers(id)?.is_empty();
                let keep_declared = is_target && !rs.schema.is_empty();
                match providers.first().and_then(derived_input) {
                    Some(s) if !keep_declared && !rs.schema.same_attrs(&s) => s,
                    _ => rs.schema.clone(),
                }
            }
        };
        outs[id.0 as usize] = Some(out);
    }
    Ok(())
}

/// Nodes reachable downstream of `start` (inclusive), in topological order.
/// Used by the incremental state evaluation (§4.1): after a transition only
/// the path from the affected activities towards the targets changes.
///
/// Runs in O(dirty subgraph), not O(whole workflow): a consumer-edge sweep
/// collects the reachable set, then a Kahn walk *restricted to that set*
/// orders it (a dirty node is ready once all its dirty providers are
/// ordered — its clean providers are upstream of every start node by
/// construction). The min-heap keeps the order deterministic, mirroring
/// [`Graph::topo_order`]. Dead start ids are skipped, so callers may pass
/// `affected` lists naming slots a transition has since freed.
pub fn downstream_of(graph: &Graph, start: &[NodeId]) -> Result<Vec<NodeId>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let cap = graph.slot_capacity();
    let mut reached = vec![false; cap];
    let mut stack: Vec<NodeId> = Vec::new();
    for &id in start {
        if (id.0 as usize) < cap && graph.contains(id) && !reached[id.0 as usize] {
            reached[id.0 as usize] = true;
            stack.push(id);
        }
    }
    let mut members: Vec<NodeId> = Vec::with_capacity(stack.len() * 4);
    while let Some(id) = stack.pop() {
        members.push(id);
        for &c in graph.consumers(id)? {
            if !reached[c.0 as usize] {
                reached[c.0 as usize] = true;
                stack.push(c);
            }
        }
    }
    // Indegree counted per edge among dirty providers only (a consumer may
    // read the same provider on both ports, exactly as in `topo_order`).
    let mut indegree = vec![0usize; cap];
    let mut heap: BinaryHeap<Reverse<NodeId>> = BinaryHeap::new();
    for &id in &members {
        let d = graph
            .providers(id)?
            .iter()
            .flatten()
            .filter(|p| reached[p.0 as usize])
            .count();
        indegree[id.0 as usize] = d;
        if d == 0 {
            heap.push(Reverse(id));
        }
    }
    let mut out = Vec::with_capacity(members.len());
    while let Some(Reverse(id)) = heap.pop() {
        out.push(id);
        for &c in graph.consumers(id)? {
            let slot = c.0 as usize;
            if reached[slot] {
                indegree[slot] -= 1;
                if indegree[slot] == 0 {
                    heap.push(Reverse(c));
                }
            }
        }
    }
    if out.len() != members.len() {
        let stuck = members
            .iter()
            .copied()
            .find(|id| indegree[id.0 as usize] > 0)
            .unwrap_or(NodeId(0));
        return Err(CoreError::CyclicGraph { node: stuck });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{binary, unary};
    use crate::predicate::Predicate;
    use crate::recordset::Recordset;
    use crate::semantics::{BinaryOp, UnaryOp};

    #[test]
    fn propagates_through_chain() {
        let mut g = Graph::new();
        let s = g.add_recordset(Recordset::table("S", Schema::of(["pkey", "dollar_cost"])));
        let f = g.add_activity(unary(
            1,
            "$2E",
            UnaryOp::function("dollar2euro", ["dollar_cost"], "euro_cost"),
        ));
        let t = g.add_recordset(Recordset::table("T", Schema::empty()));
        g.connect(s, f, 0).unwrap();
        g.connect(f, t, 0).unwrap();
        regenerate(&mut g).unwrap();
        let act = g.activity(f).unwrap();
        assert_eq!(act.inputs[0], Schema::of(["pkey", "dollar_cost"]));
        assert_eq!(act.output, Schema::of(["pkey", "euro_cost"]));
        assert_eq!(
            g.recordset(t).unwrap().schema,
            Schema::of(["pkey", "euro_cost"])
        );
    }

    #[test]
    fn fails_when_functionality_unsatisfied() {
        let mut g = Graph::new();
        let s = g.add_recordset(Recordset::table("S", Schema::of(["pkey"])));
        let f = g.add_activity(unary(1, "σ", UnaryOp::filter(Predicate::gt("cost", 1))));
        let t = g.add_recordset(Recordset::table("T", Schema::empty()));
        g.connect(s, f, 0).unwrap();
        g.connect(f, t, 0).unwrap();
        assert!(regenerate(&mut g).is_err());
        // check() reports the same without mutating.
        assert!(check(&g).is_err());
    }

    #[test]
    fn recordset_keeps_declared_order_when_same_set() {
        let mut g = Graph::new();
        let s = g.add_recordset(Recordset::table("S", Schema::of(["a", "b"])));
        let t = g.add_recordset(Recordset::table("T", Schema::of(["b", "a"])));
        g.connect(s, t, 0).unwrap();
        regenerate(&mut g).unwrap();
        assert_eq!(g.recordset(t).unwrap().schema, Schema::of(["b", "a"]));
    }

    #[test]
    fn binary_inputs_both_propagate() {
        let mut g = Graph::new();
        let s1 = g.add_recordset(Recordset::table("S1", Schema::of(["a"])));
        let s2 = g.add_recordset(Recordset::table("S2", Schema::of(["a"])));
        let u = g.add_activity(binary(1, "U", BinaryOp::Union));
        let t = g.add_recordset(Recordset::table("T", Schema::empty()));
        g.connect(s1, u, 0).unwrap();
        g.connect(s2, u, 1).unwrap();
        g.connect(u, t, 0).unwrap();
        regenerate(&mut g).unwrap();
        assert_eq!(g.activity(u).unwrap().output, Schema::of(["a"]));
    }

    #[test]
    fn downstream_of_walks_to_targets() {
        let mut g = Graph::new();
        let s = g.add_recordset(Recordset::table("S", Schema::of(["a"])));
        let f1 = g.add_activity(unary(1, "σ1", UnaryOp::filter(Predicate::True)));
        let f2 = g.add_activity(unary(2, "σ2", UnaryOp::filter(Predicate::True)));
        let t = g.add_recordset(Recordset::table("T", Schema::empty()));
        g.connect(s, f1, 0).unwrap();
        g.connect(f1, f2, 0).unwrap();
        g.connect(f2, t, 0).unwrap();
        let down = downstream_of(&g, &[f2]).unwrap();
        assert_eq!(down, vec![f2, t]);
        let all = downstream_of(&g, &[s]).unwrap();
        assert_eq!(all.len(), 4);
    }
}
