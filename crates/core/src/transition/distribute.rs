//! The Distribute transition `DIS(a_b,a)` (§2.2, §3.3) — the reciprocal of
//! Factorize.
//!
//! An activity operating on the joint flow right after a binary activity is
//! cloned into each of the converging flows. The paper's conditions:
//!
//! 1. a binary activity `a_b` is the provider of `a`; two clones `a₁`, `a₂`
//!    are generated, one per path leading to `a_b`;
//! 2. the clones have the same operation as `a`.
//!
//! Distribution pays off when the activity is highly selective: pruning
//! rows before the (priced) binary operator and before other per-branch
//! work — the `c₂` case of Fig. 4.

use crate::activity::{Activity, ActivityId};
use crate::error::CoreError;
use crate::graph::NodeId;
use crate::transition::factorize::distributable_through;
use crate::transition::{finalize, Transition, TransitionError, TransitionKind};
use crate::workflow::Workflow;

/// `DIS(a_b,a)`: clone `a` (the consumer of binary `a_b`) into both flows
/// converging to `a_b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Distribute {
    /// The binary activity.
    pub binary: NodeId,
    /// The activity to distribute (must be the single consumer of
    /// `binary`).
    pub activity: NodeId,
}

impl Distribute {
    /// Construct the transition.
    pub fn new(binary: NodeId, activity: NodeId) -> Self {
        Distribute { binary, activity }
    }

    fn structural_check(&self, wf: &Workflow) -> Result<(), TransitionError> {
        let g = wf.graph();
        let ab = g
            .activity(self.binary)
            .map_err(|_| TransitionError::NotBinary(self.binary))?;
        if !ab.is_binary() {
            return Err(TransitionError::NotBinary(self.binary));
        }
        let act = g
            .activity(self.activity)
            .map_err(|_| TransitionError::NotUnary(self.activity))?;
        if !act.is_unary() {
            return Err(TransitionError::NotUnary(self.activity));
        }
        // The binary must feed exactly this activity: otherwise other
        // consumers of the binary would suddenly observe processed data.
        let bin_consumers = g.consumers(self.binary)?;
        if bin_consumers.len() != 1 {
            return Err(TransitionError::MultipleConsumers(self.binary));
        }
        if bin_consumers[0] != self.activity {
            return Err(TransitionError::NotAdjacent(self.binary, self.activity));
        }
        // Arity was checked above, but a typed error costs nothing and
        // keeps the applicability path panic-free end to end.
        let links = act
            .unary_links()
            .ok_or(TransitionError::NotUnary(self.activity))?
            .to_vec();
        let binop = ab
            .op
            .binary()
            .ok_or(TransitionError::NotBinary(self.binary))?
            .clone();
        distributable_through(&links, &binop).map_err(|detail| {
            TransitionError::NotDistributable {
                node: self.activity,
                detail,
            }
        })?;
        Ok(())
    }
}

impl Transition for Distribute {
    fn kind(&self) -> TransitionKind {
        TransitionKind::Distribute
    }

    fn affected(&self, wf: &Workflow) -> Vec<NodeId> {
        // The clones are spliced in right after the binary's providers, so
        // the providers anchor the dirty set in the successor state.
        let mut nodes = vec![self.binary, self.activity];
        for p in wf
            .graph()
            .providers(self.binary)
            .unwrap_or_default()
            .into_iter()
            .flatten()
        {
            nodes.push(p);
        }
        nodes
    }

    fn apply(&self, wf: &Workflow) -> Result<Workflow, TransitionError> {
        self.structural_check(wf)?;
        let mut out = wf.clone();
        let g = &mut out.graph;

        let p1 = g.provider(self.binary, 0)?.ok_or(TransitionError::Graph(
            CoreError::MissingProvider {
                node: self.binary,
                port: 0,
            },
        ))?;
        let p2 = g.provider(self.binary, 1)?.ok_or(TransitionError::Graph(
            CoreError::MissingProvider {
                node: self.binary,
                port: 1,
            },
        ))?;

        let template = g.activity(self.activity)?.clone();
        let (id1, id2) = ActivityId::distributed(&template.id);

        // Detach `a` and hand its consumers to the binary.
        g.disconnect(self.activity, 0)?;
        g.redirect_consumers(self.activity, self.binary)?;
        g.remove(self.activity)?;

        // Splice one clone into each converging path.
        g.disconnect(self.binary, 0)?;
        g.disconnect(self.binary, 1)?;
        let c1 = g.add_activity(Activity::new(
            id1,
            template.label.clone(),
            template.op.clone(),
        ));
        let c2 = g.add_activity(Activity::new(
            id2,
            template.label.clone(),
            template.op.clone(),
        ));
        g.connect(p1, c1, 0)?;
        g.connect(c1, self.binary, 0)?;
        g.connect(p2, c2, 0)?;
        g.connect(c2, self.binary, 1)?;

        finalize(out, &self.affected(wf))
    }

    fn describe(&self, wf: &Workflow) -> String {
        format!(
            "DIS({},{})",
            wf.priority_token(self.binary),
            wf.priority_token(self.activity)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, RowCountModel};
    use crate::postcond::equivalent;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{Aggregation, BinaryOp, UnaryOp};
    use crate::workflow::WorkflowBuilder;

    /// Union of two sources with a selective filter on the joint flow.
    fn joint_filter() -> (Workflow, NodeId, NodeId) {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 8.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 8.0);
        let u = b.binary("U", BinaryOp::Union, s1, s2);
        let sel = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.5),
            u,
        );
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), sel);
        b.target("T", Schema::of(["sk", "v"]), sk);
        (b.build().unwrap(), u, sel)
    }

    #[test]
    fn distribute_clones_into_both_branches() {
        let (wf, u, sel) = joint_filter();
        let dis = Distribute::new(u, sel).apply(&wf).unwrap();
        assert!(equivalent(&wf, &dis).unwrap());
        assert_eq!(dis.activity_count(), wf.activity_count() + 1);
        // Both providers of the union are now σ clones.
        for port in 0..2 {
            let p = dis.graph().provider(u, port).unwrap().unwrap();
            assert_eq!(dis.graph().activity(p).unwrap().label, "σ");
        }
    }

    #[test]
    fn distribute_reduces_cost_for_selective_filter() {
        // Under a priced union, pruning before the union is a win (under the
        // free-union model of Fig. 4 a lone filter distribution is
        // cost-neutral — the gains come from follow-up per-branch swaps).
        let (wf, u, sel) = joint_filter();
        let m = RowCountModel {
            union_free: false,
            ..RowCountModel::default()
        };
        let before = m.cost(&wf).unwrap();
        let after = m
            .cost(&Distribute::new(u, sel).apply(&wf).unwrap())
            .unwrap();
        assert!(after < before, "after={after} before={before}");
    }

    #[test]
    fn distribute_then_factorize_restores_signature() {
        use crate::transition::Factorize;
        let (wf, u, sel) = joint_filter();
        let dis = Distribute::new(u, sel).apply(&wf).unwrap();
        let p1 = dis.graph().provider(u, 0).unwrap().unwrap();
        let p2 = dis.graph().provider(u, 1).unwrap().unwrap();
        let fac = Factorize::new(u, p1, p2).apply(&dis).unwrap();
        assert_eq!(wf.signature(), fac.signature());
    }

    #[test]
    fn blocking_op_cannot_distribute() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 8.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 8.0);
        let u = b.binary("U", BinaryOp::Union, s1, s2);
        let agg = b.unary(
            "γ",
            UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")),
            u,
        );
        b.target("T", Schema::of(["k", "v"]), agg);
        let wf = b.build().unwrap();
        let err = Distribute::new(u, agg).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::NotDistributable { .. }),
            "{err}"
        );
    }

    #[test]
    fn binary_with_other_consumers_cannot_lose_its_activity() {
        // u feeds both σ and a second recordset: distributing σ would change
        // what the recordset receives.
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["v"]), 8.0);
        let s2 = b.source("S2", Schema::of(["v"]), 8.0);
        let u = b.binary("U", BinaryOp::Union, s1, s2);
        let sel = b.unary("σ", UnaryOp::filter(Predicate::gt("v", 0)), u);
        b.target("T1", Schema::of(["v"]), sel);
        b.target("RAW", Schema::of(["v"]), u);
        let wf = b.build().unwrap();
        let err = Distribute::new(u, sel).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::MultipleConsumers(_)),
            "{err}"
        );
    }

    #[test]
    fn swapped_roles_get_typed_errors_not_panics() {
        // Anchoring the transition on the wrong node kinds must surface the
        // arity errors, never reach the applicability analysis.
        let (wf, u, sel) = joint_filter();
        let err = Distribute::new(sel, sel).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::NotBinary(n) if n == sel),
            "{err}"
        );
        let err = Distribute::new(u, u).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::NotUnary(n) if n == u),
            "{err}"
        );
    }

    #[test]
    fn non_consumer_activity_is_rejected() {
        let (wf, u, _) = joint_filter();
        // SK is not the direct consumer of the union.
        let sk = wf
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| wf.graph().activity(a).unwrap().label == "SK")
            .unwrap();
        let err = Distribute::new(u, sk).apply(&wf).unwrap_err();
        assert!(matches!(err, TransitionError::NotAdjacent(_, _)), "{err}");
    }

    #[test]
    fn function_distributes_over_union() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "dc"]), 8.0);
        let s2 = b.source("S2", Schema::of(["k", "dc"]), 8.0);
        let u = b.binary("U", BinaryOp::Union, s1, s2);
        let f = b.unary("$2E", UnaryOp::function("d2e", ["dc"], "ec"), u);
        b.target("T", Schema::of(["k", "ec"]), f);
        let wf = b.build().unwrap();
        let dis = Distribute::new(u, f).apply(&wf).unwrap();
        assert!(equivalent(&wf, &dis).unwrap());
    }

    /// The `$2€` case for DIS (Fig. 5 lifted to the binary level): a
    /// selection over the generated euro amount may not be distributed
    /// above a join — the branch without the dollar→euro function never
    /// sees `euro_cost`, so the clone's functionality schema would be
    /// violated there.
    #[test]
    fn dollar2euro_selection_cannot_distribute_above_join() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["pkey", "dollar_cost"]), 8.0);
        let s2 = b.source("S2", Schema::of(["pkey", "qty"]), 8.0);
        let f = b.unary(
            "$2E",
            UnaryOp::function("dollar2euro", ["dollar_cost"], "euro_cost"),
            s1,
        );
        let j = b.binary("J", BinaryOp::Join(vec!["pkey".into()]), f, s2);
        let sel = b.unary(
            "σ(€)",
            UnaryOp::filter(Predicate::gt("euro_cost", 100.0)),
            j,
        );
        b.target("DW", Schema::of(["pkey", "euro_cost", "qty"]), sel);
        let wf = b.build().unwrap();
        let err = Distribute::new(j, sel).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::NotDistributable { .. }),
            "{err}"
        );
    }

    #[test]
    fn self_union_distributes_clones_from_same_provider() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["v"]), 8.0);
        let u = b.binary("U", BinaryOp::Union, s, s);
        let sel = b.unary("σ", UnaryOp::filter(Predicate::gt("v", 0)), u);
        b.target("T", Schema::of(["v"]), sel);
        let wf = b.build().unwrap();
        let dis = Distribute::new(u, sel).apply(&wf).unwrap();
        assert!(equivalent(&wf, &dis).unwrap());
        assert_eq!(dis.graph().consumers(s).unwrap().len(), 2);
    }
}
