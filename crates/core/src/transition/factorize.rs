//! The Factorize transition `FAC(a_b,a₁,a₂)` (§2.2, §3.3).
//!
//! Two homologous activities applied on flows converging to a binary
//! activity are replaced by a single activity right after it — "perform the
//! operation only once, on the merged flow". The paper's conditions:
//!
//! 1. `a₁` and `a₂` have the same operation (they are homologous);
//! 2. they have a common consumer `a_b`, which is a binary operation.
//!
//! In addition, the operation must actually commute with the binary
//! operator as a multiset transformation (see
//! [`distributable_through`]) — for a union any row-wise activity
//! qualifies; for a difference/intersection the activity must preserve row
//! identity (injective); for a join only key-constrained filters qualify.

use crate::activity::{Activity, ActivityId};
use crate::graph::NodeId;
use crate::semantics::{BinaryOp, UnaryOp};
use crate::transition::{finalize, Transition, TransitionError, TransitionKind};
use crate::workflow::Workflow;

/// Can an activity made of these unary links be moved across this binary
/// operator (in either direction: Factorize pulls it below the operator,
/// Distribute pushes clones above it) without changing the produced bag of
/// rows? Returns the reason when not.
pub fn distributable_through(links: &[UnaryOp], op: &BinaryOp) -> Result<(), String> {
    for l in links {
        if !l.is_row_wise() {
            return Err(format!(
                "{} is a blocking operator: γ(A)∪γ(B) ≠ γ(A∪B)",
                l.op_name()
            ));
        }
        match op {
            BinaryOp::Union => {}
            BinaryOp::Difference | BinaryOp::Intersection => match l {
                UnaryOp::Filter { .. } | UnaryOp::NotNull { .. } | UnaryOp::AddField { .. } => {}
                UnaryOp::Function(f) if f.injective => {}
                UnaryOp::SurrogateKey { .. } => {}
                UnaryOp::Function(f) => {
                    return Err(format!(
                        "non-injective function {} may collapse rows that {} compares",
                        f.function,
                        op.op_name()
                    ));
                }
                UnaryOp::ProjectOut(_) => {
                    return Err(format!(
                        "projection may collapse rows that {} compares",
                        op.op_name()
                    ));
                }
                other => {
                    return Err(format!(
                        "{} cannot cross a {}",
                        other.op_name(),
                        op.op_name()
                    ));
                }
            },
            BinaryOp::Join(on) => match l {
                UnaryOp::Filter { predicate, .. } => {
                    let fun = predicate.referenced_attrs();
                    if !fun.iter().all(|a| on.contains(a)) {
                        return Err("only filters over the join key can cross a join".to_owned());
                    }
                }
                UnaryOp::NotNull { attr, .. } => {
                    if !on.contains(attr) {
                        return Err("only NN over the join key can cross a join".to_owned());
                    }
                }
                other => {
                    return Err(format!("{} cannot cross a join", other.op_name()));
                }
            },
        }
    }
    Ok(())
}

/// `FAC(a_b,a₁,a₂)`: replace homologous `a₁`, `a₂` feeding binary `a_b` by
/// one equivalent activity placed right after `a_b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Factorize {
    /// The binary activity the flows converge to.
    pub binary: NodeId,
    /// First homologous activity (direct provider of `binary`).
    pub a1: NodeId,
    /// Second homologous activity (direct provider of `binary`).
    pub a2: NodeId,
}

impl Factorize {
    /// Construct the transition.
    pub fn new(binary: NodeId, a1: NodeId, a2: NodeId) -> Self {
        Factorize { binary, a1, a2 }
    }

    fn structural_check(&self, wf: &Workflow) -> Result<(), TransitionError> {
        let g = wf.graph();
        let ab = g
            .activity(self.binary)
            .map_err(|_| TransitionError::NotBinary(self.binary))?;
        if !ab.is_binary() {
            return Err(TransitionError::NotBinary(self.binary));
        }
        if self.a1 == self.a2 {
            return Err(TransitionError::NotHomologous(self.a1, self.a2));
        }
        for a in [self.a1, self.a2] {
            let act = g.activity(a).map_err(|_| TransitionError::NotUnary(a))?;
            if !act.is_unary() {
                return Err(TransitionError::NotUnary(a));
            }
            let consumers = g.consumers(a)?;
            if consumers.len() != 1 {
                return Err(TransitionError::MultipleConsumers(a));
            }
            if consumers[0] != self.binary {
                return Err(TransitionError::NotAdjacent(a, self.binary));
            }
        }
        if !wf.are_homologous(self.a1, self.a2)? {
            return Err(TransitionError::NotHomologous(self.a1, self.a2));
        }
        // Arity was checked above, but a typed error costs nothing and
        // keeps the applicability path panic-free end to end.
        let links = g
            .activity(self.a1)?
            .unary_links()
            .ok_or(TransitionError::NotUnary(self.a1))?
            .to_vec();
        let binop = ab
            .op
            .binary()
            .ok_or(TransitionError::NotBinary(self.binary))?
            .clone();
        distributable_through(&links, &binop).map_err(|detail| {
            TransitionError::NotDistributable {
                node: self.a1,
                detail,
            }
        })?;
        Ok(())
    }
}

impl Transition for Factorize {
    fn kind(&self) -> TransitionKind {
        TransitionKind::Factorize
    }

    fn affected(&self, wf: &Workflow) -> Vec<NodeId> {
        let mut nodes = vec![self.binary, self.a1, self.a2];
        // The replacement activity may reuse a freed arena slot; covering
        // the providers keeps the dirty set conservative.
        for p in wf
            .graph()
            .providers(self.binary)
            .unwrap_or_default()
            .into_iter()
            .flatten()
        {
            nodes.push(p);
        }
        nodes
    }

    fn apply(&self, wf: &Workflow) -> Result<Workflow, TransitionError> {
        self.structural_check(wf)?;
        let mut out = wf.clone();
        let g = &mut out.graph;

        // Ports on the binary fed by a1 / a2.
        let port1 = g
            .port_of(self.a1, self.binary)?
            .ok_or(TransitionError::NotAdjacent(self.a1, self.binary))?;
        let port2 = g
            .port_of(self.a2, self.binary)?
            .ok_or(TransitionError::NotAdjacent(self.a2, self.binary))?;
        let p1 = g.provider(self.a1, 0)?.ok_or(TransitionError::Graph(
            crate::error::CoreError::MissingProvider {
                node: self.a1,
                port: 0,
            },
        ))?;
        let p2 = g.provider(self.a2, 0)?.ok_or(TransitionError::Graph(
            crate::error::CoreError::MissingProvider {
                node: self.a2,
                port: 0,
            },
        ))?;

        // The replacement activity: a1's semantics under the factored id.
        let template = g.activity(self.a1)?.clone();
        let new_id = ActivityId::factored(&template.id, &g.activity(self.a2)?.id);
        let mut new_act = Activity::new(new_id, template.label.clone(), template.op.clone());
        new_act.inputs = template.inputs.clone();

        // Unhook a1, a2; reconnect their providers straight into the binary.
        g.disconnect(self.binary, port1)?;
        g.disconnect(self.binary, port2)?;
        g.disconnect(self.a1, 0)?;
        g.disconnect(self.a2, 0)?;
        g.connect(p1, self.binary, port1)?;
        g.connect(p2, self.binary, port2)?;
        g.remove(self.a1)?;
        g.remove(self.a2)?;

        // Insert the factored activity right after the binary.
        let a = g.add_activity(new_act);
        g.redirect_consumers(self.binary, a)?;
        g.connect(self.binary, a, 0)?;

        finalize(out, &self.affected(wf))
    }

    fn check(&self, wf: &Workflow) -> Result<(), TransitionError> {
        self.structural_check(wf)?;
        // Schema feasibility of the rewired graph still needs the dry run.
        self.apply(wf).map(|_| ())
    }

    fn describe(&self, wf: &Workflow) -> String {
        format!(
            "FAC({},{},{})",
            wf.priority_token(self.binary),
            wf.priority_token(self.a1),
            wf.priority_token(self.a2)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, RowCountModel};
    use crate::postcond::equivalent;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::Aggregation;
    use crate::workflow::WorkflowBuilder;

    /// Fig. 4 shape: SK on each branch before a union.
    fn fig4_initial() -> (Workflow, NodeId, NodeId, NodeId) {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 8.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 8.0);
        let sk1 = b.unary("SK1", UnaryOp::surrogate_key("k", "sk", "L"), s1);
        let sk2 = b.unary("SK2", UnaryOp::surrogate_key("k", "sk", "L"), s2);
        let u = b.binary("U", BinaryOp::Union, sk1, sk2);
        let sel = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.5),
            u,
        );
        b.target("T", Schema::of(["sk", "v"]), sel);
        (b.build().unwrap(), u, sk1, sk2)
    }

    #[test]
    fn factorize_merges_homologous_sks() {
        let (wf, u, sk1, sk2) = fig4_initial();
        let fac = Factorize::new(u, sk1, sk2).apply(&wf).unwrap();
        assert!(equivalent(&wf, &fac).unwrap());
        // One fewer activity.
        assert_eq!(fac.activity_count(), wf.activity_count() - 1);
        // Cost drops: SK once over 16 rows (16·4=64) vs twice over 8 (2·24=48)…
        // with union free and σ unchanged this particular shape actually
        // *rises* under the row-count model (64 > 48), exactly the kind of
        // judgement the search algorithms make per-state.
        let m = RowCountModel::default();
        let (c0, c1) = (m.cost(&wf).unwrap(), m.cost(&fac).unwrap());
        assert!((c1 - c0).abs() > 1.0, "costs should differ: {c0} vs {c1}");
    }

    #[test]
    fn factorize_then_distribute_restores_signature() {
        use crate::transition::Distribute;
        let (wf, u, sk1, sk2) = fig4_initial();
        let fac = Factorize::new(u, sk1, sk2).apply(&wf).unwrap();
        // The factored node is the (only) consumer of the union.
        let new_a = fac.graph().consumers(u).unwrap()[0];
        let dis = Distribute::new(u, new_a).apply(&fac).unwrap();
        assert_eq!(wf.signature(), dis.signature());
    }

    #[test]
    fn swapped_roles_get_typed_errors_not_panics() {
        // Wrong node kinds in either role must come back as arity errors,
        // not reach the applicability analysis.
        let (wf, u, sk1, sk2) = fig4_initial();
        let err = Factorize::new(sk1, sk1, sk2).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::NotBinary(n) if n == sk1),
            "{err}"
        );
        let err = Factorize::new(u, u, sk2).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::NotUnary(n) if n == u),
            "{err}"
        );
    }

    #[test]
    fn non_homologous_pair_is_rejected() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["v"]), 8.0);
        let s2 = b.source("S2", Schema::of(["v"]), 8.0);
        let f1 = b.unary("σ1", UnaryOp::filter(Predicate::gt("v", 1)), s1);
        let f2 = b.unary("σ2", UnaryOp::filter(Predicate::gt("v", 2)), s2);
        let u = b.binary("U", BinaryOp::Union, f1, f2);
        b.target("T", Schema::of(["v"]), u);
        let wf = b.build().unwrap();
        let err = Factorize::new(u, f1, f2).apply(&wf).unwrap_err();
        assert!(matches!(err, TransitionError::NotHomologous(_, _)));
    }

    #[test]
    fn aggregations_cannot_factorize_through_union() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 8.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 8.0);
        let g1 = b.unary(
            "γ1",
            UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")),
            s1,
        );
        let g2 = b.unary(
            "γ2",
            UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")),
            s2,
        );
        let u = b.binary("U", BinaryOp::Union, g1, g2);
        b.target("T", Schema::of(["k", "v"]), u);
        let wf = b.build().unwrap();
        let err = Factorize::new(u, g1, g2).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::NotDistributable { .. }),
            "{err}"
        );
    }

    #[test]
    fn projection_cannot_factorize_through_difference() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 8.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 8.0);
        let p1 = b.unary("π1", UnaryOp::project_out(["v"]), s1);
        let p2 = b.unary("π2", UnaryOp::project_out(["v"]), s2);
        let d = b.binary("−", BinaryOp::Difference, p1, p2);
        b.target("T", Schema::of(["k"]), d);
        let wf = b.build().unwrap();
        let err = Factorize::new(d, p1, p2).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::NotDistributable { .. }),
            "{err}"
        );
    }

    #[test]
    fn filters_can_factorize_through_difference() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 8.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 8.0);
        let f1 = b.unary("σ1", UnaryOp::filter(Predicate::gt("v", 1)), s1);
        let f2 = b.unary("σ2", UnaryOp::filter(Predicate::gt("v", 1)), s2);
        let d = b.binary("−", BinaryOp::Difference, f1, f2);
        b.target("T", Schema::of(["k", "v"]), d);
        let wf = b.build().unwrap();
        let fac = Factorize::new(d, f1, f2).apply(&wf).unwrap();
        assert!(equivalent(&wf, &fac).unwrap());
    }

    #[test]
    fn key_filter_can_factorize_through_join_but_value_filter_cannot() {
        let build = |attr: &str| {
            let mut b = WorkflowBuilder::new();
            let s1 = b.source("S1", Schema::of(["k", "x"]), 8.0);
            let s2 = b.source("S2", Schema::of(["k", "x2"]), 8.0);
            let f1 = b.unary("σ1", UnaryOp::filter(Predicate::gt(attr, 1)), s1);
            let f2 = b.unary("σ2", UnaryOp::filter(Predicate::gt(attr, 1)), s2);
            let j = b.binary("J", BinaryOp::Join(vec!["k".into()]), f1, f2);
            b.target("T", Schema::of(["k", "x", "x2"]), j);
            (b.build(), j, f1, f2)
        };
        let (wf, j, f1, f2) = build("k");
        let wf = wf.unwrap();
        assert!(Factorize::new(j, f1, f2).apply(&wf).is_ok());
        // σ(x) does not even exist on branch 2, so the homologous check
        // already refuses; a key-mismatched filter is the cleaner probe:
        let err = distributable_through(
            &[UnaryOp::filter(Predicate::gt("x", 1))],
            &BinaryOp::Join(vec!["k".into()]),
        );
        assert!(err.is_err());
    }

    /// The `$2€` case at the binary level (Fig. 5 lifted to FAC): two
    /// homologous dollar→euro functions may not be factorized below a join
    /// whose key is the euro amount they generate — the join's
    /// functionality schema would be consumed before it exists.
    #[test]
    fn dollar2euro_cannot_factorize_below_join_on_generated_attribute() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["pkey", "dollar_cost"]), 8.0);
        let s2 = b.source("S2", Schema::of(["pkey2", "dollar_cost"]), 8.0);
        let f1 = b.unary(
            "$2E",
            UnaryOp::function("dollar2euro", ["dollar_cost"], "euro_cost"),
            s1,
        );
        let f2 = b.unary(
            "$2E",
            UnaryOp::function("dollar2euro", ["dollar_cost"], "euro_cost"),
            s2,
        );
        let j = b.binary("J", BinaryOp::Join(vec!["euro_cost".into()]), f1, f2);
        b.target("DW", Schema::of(["pkey", "euro_cost", "pkey2"]), j);
        let wf = b.build().unwrap();
        let err = Factorize::new(j, f1, f2).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::NotDistributable { .. }),
            "{err}"
        );
    }

    #[test]
    fn describe_uses_paper_notation() {
        let (wf, u, sk1, sk2) = fig4_initial();
        let d = Factorize::new(u, sk1, sk2).describe(&wf);
        assert!(d.starts_with("FAC("), "{d}");
    }
}
