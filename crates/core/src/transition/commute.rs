//! Semantic commutation rules for pairs of unary operations.
//!
//! The paper's swap conditions 3 and 4 are *schema-level*: they reject
//! swaps that would leave an activity without the attributes it needs (the
//! `$2€`/`σ(€)` case of Fig. 5, the projected-out case of Fig. 6). They
//! rely on the naming principle to make name-identity coincide with
//! semantic identity. Two residual families of pairs pass the schema tests
//! yet do not commute as *multiset* transformations, and this module rules
//! on them explicitly so that every state the optimizer produces is exactly
//! equivalent when executed by the engine:
//!
//! 1. **Blocking × blocking** — two of {aggregation, dedup, PK check} never
//!    swap (e.g. `γ∘DD ≠ DD∘γ`).
//! 2. **Blocking × row-wise** — allowed only in the cases with an exactness
//!    argument: a filter over grouping attributes commutes with `γ`; an
//!    *injective* function over grouping attributes commutes with `γ` (the
//!    paper's `A2E`-before/after-`γ` example); a filter commutes with
//!    whole-row dedup; a filter over the key commutes with a PK check; an
//!    injective (or key-disjoint) function commutes with a PK check.
//!
//! Row-wise × row-wise pairs always commute once the schema conditions
//! hold: each transforms disjoint parts of every single row.

use crate::semantics::UnaryOp;

/// The verdict of a commutation query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The pair commutes (given that the schema-level swap conditions hold).
    Commutes,
    /// The pair does not commute; the payload says why.
    Blocked(String),
}

impl Verdict {
    /// Is this a positive verdict?
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Commutes)
    }
}

/// Do two unary operations commute as multiset transformations (assuming
/// the schema-level conditions are independently verified)? The relation is
/// symmetric.
pub fn ops_commute(a: &UnaryOp, b: &UnaryOp) -> Verdict {
    if a.is_row_wise() && b.is_row_wise() {
        return Verdict::Commutes;
    }
    if !a.is_row_wise() && !b.is_row_wise() {
        return Verdict::Blocked(format!(
            "{} and {} are both blocking operators",
            a.op_name(),
            b.op_name()
        ));
    }
    // Exactly one side is blocking; orient the query.
    let (blocking, row_wise) = if a.is_row_wise() { (b, a) } else { (a, b) };
    match blocking {
        UnaryOp::Aggregate { agg, .. } => match row_wise {
            UnaryOp::Filter { predicate, .. } => {
                let fun = predicate.referenced_attrs();
                if fun.iter().all(|x| agg.group_by.contains(x)) {
                    Verdict::Commutes
                } else {
                    Verdict::Blocked(format!(
                        "filter over {fun} touches non-grouping attributes of the aggregation"
                    ))
                }
            }
            UnaryOp::NotNull { attr, .. } => {
                if agg.group_by.contains(attr) {
                    Verdict::Commutes
                } else {
                    Verdict::Blocked(format!(
                        "NN({attr}) touches a non-grouping attribute of the aggregation"
                    ))
                }
            }
            UnaryOp::Function(f) => {
                let touches_groupers_only = f
                    .inputs
                    .iter()
                    .chain(std::iter::once(&f.output))
                    .all(|x| agg.group_by.contains(x));
                if !touches_groupers_only {
                    Verdict::Blocked(format!(
                        "function {} touches aggregated attributes",
                        f.function
                    ))
                } else if !f.injective {
                    Verdict::Blocked(format!(
                        "function {} is not injective: it may collapse groups",
                        f.function
                    ))
                } else {
                    // The paper's A2E case: an injective transform of a
                    // grouper neither merges nor splits groups.
                    Verdict::Commutes
                }
            }
            other => Verdict::Blocked(format!(
                "{} does not commute with an aggregation",
                other.op_name()
            )),
        },
        UnaryOp::Dedup { .. } => match row_wise {
            UnaryOp::Filter { .. } | UnaryOp::NotNull { .. } => Verdict::Commutes,
            UnaryOp::Function(f) if f.injective && f.keep_inputs => Verdict::Commutes,
            other => Verdict::Blocked(format!(
                "{} may change row identity across a whole-row dedup",
                other.op_name()
            )),
        },
        UnaryOp::PkCheck { key, .. } => match row_wise {
            UnaryOp::Filter { predicate, .. } => {
                let fun = predicate.referenced_attrs();
                if fun.iter().all(|x| key.contains(x)) {
                    Verdict::Commutes
                } else {
                    Verdict::Blocked(
                        "filter over non-key attributes may change which duplicate survives"
                            .to_owned(),
                    )
                }
            }
            UnaryOp::NotNull { attr, .. } => {
                if key.contains(attr) {
                    Verdict::Commutes
                } else {
                    Verdict::Blocked(
                        "NN over a non-key attribute may change which duplicate survives"
                            .to_owned(),
                    )
                }
            }
            UnaryOp::Function(f) => {
                let disjoint =
                    f.inputs.iter().all(|x| !key.contains(x)) && !key.contains(&f.output);
                if disjoint || f.injective {
                    Verdict::Commutes
                } else {
                    Verdict::Blocked(format!(
                        "non-injective function {} rewrites key attributes",
                        f.function
                    ))
                }
            }
            UnaryOp::AddField { attr, .. } => {
                if key.contains(attr) {
                    Verdict::Blocked("ADD overwrites a key attribute".to_owned())
                } else {
                    Verdict::Commutes
                }
            }
            UnaryOp::ProjectOut(attrs) => {
                if attrs.iter().any(|x| key.contains(x)) {
                    Verdict::Blocked("projection drops a key attribute".to_owned())
                } else {
                    Verdict::Commutes
                }
            }
            other => Verdict::Blocked(format!(
                "{} does not commute with a PK check",
                other.op_name()
            )),
        },
        other => Verdict::Blocked(format!("unhandled blocking operator {}", other.op_name())),
    }
}

/// Commutation for whole activities (merged chains commute iff every link
/// of one commutes with every link of the other).
pub fn chains_commute(a: &[UnaryOp], b: &[UnaryOp]) -> Verdict {
    for x in a {
        for y in b {
            if let Verdict::Blocked(why) = ops_commute(x, y) {
                return Verdict::Blocked(why);
            }
        }
    }
    Verdict::Commutes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::semantics::Aggregation;

    fn agg() -> UnaryOp {
        UnaryOp::aggregate(Aggregation::sum(["pkey", "date"], "cost", "cost"))
    }

    #[test]
    fn row_wise_pairs_commute() {
        let f = UnaryOp::filter(Predicate::gt("a", 1));
        let g = UnaryOp::function("f", ["b"], "c");
        assert!(ops_commute(&f, &g).is_ok());
    }

    #[test]
    fn blocking_pairs_never_commute() {
        let d = UnaryOp::Dedup { selectivity: 1.0 };
        assert!(!ops_commute(&agg(), &d).is_ok());
        assert!(!ops_commute(&d, &d.clone()).is_ok());
    }

    #[test]
    fn filter_on_groupers_commutes_with_aggregation() {
        let f = UnaryOp::filter(Predicate::eq("pkey", 5));
        assert!(ops_commute(&f, &agg()).is_ok());
        // Symmetric.
        assert!(ops_commute(&agg(), &f).is_ok());
    }

    #[test]
    fn filter_on_aggregated_attr_is_blocked() {
        let f = UnaryOp::filter(Predicate::gt("cost", 100));
        assert!(!ops_commute(&f, &agg()).is_ok());
    }

    #[test]
    fn injective_grouper_function_commutes_with_aggregation() {
        // The paper's A2E: in-place injective transform of the DATE grouper.
        let a2e = UnaryOp::function("am2eu", ["date"], "date");
        assert!(ops_commute(&a2e, &agg()).is_ok());
    }

    #[test]
    fn noninjective_grouper_function_is_blocked() {
        let trunc = UnaryOp::function_noninjective("month_of", ["date"], "date");
        assert!(!ops_commute(&trunc, &agg()).is_ok());
    }

    #[test]
    fn function_on_aggregated_attr_is_blocked() {
        // $2€ touches the aggregated cost: may not cross the γ.
        let d2e = UnaryOp::function("dollar2euro", ["cost"], "cost");
        assert!(!ops_commute(&d2e, &agg()).is_ok());
    }

    #[test]
    fn filter_commutes_with_dedup() {
        let f = UnaryOp::filter(Predicate::gt("a", 1));
        let d = UnaryOp::Dedup { selectivity: 1.0 };
        assert!(ops_commute(&f, &d).is_ok());
    }

    #[test]
    fn function_blocked_across_dedup_unless_kept_and_injective() {
        let d = UnaryOp::Dedup { selectivity: 1.0 };
        let replacing = UnaryOp::function("f", ["a"], "b");
        assert!(!ops_commute(&replacing, &d).is_ok());
        // `UnaryOp::function` constructs the Function variant by definition;
        // the destructure only exists to flip `keep_inputs`.
        let mut keeping = match UnaryOp::function("f", ["a"], "b") {
            UnaryOp::Function(f) => f,
            _ => unreachable!("UnaryOp::function always yields UnaryOp::Function"),
        };
        keeping.keep_inputs = true;
        assert!(ops_commute(&UnaryOp::Function(keeping), &d).is_ok());
    }

    #[test]
    fn pk_check_rules() {
        let pk = UnaryOp::PkCheck {
            key: vec!["k".into()],
            selectivity: 1.0,
        };
        assert!(ops_commute(&UnaryOp::filter(Predicate::eq("k", 1)), &pk).is_ok());
        assert!(!ops_commute(&UnaryOp::filter(Predicate::eq("v", 1)), &pk).is_ok());
        assert!(ops_commute(&UnaryOp::not_null("k"), &pk).is_ok());
        assert!(!ops_commute(&UnaryOp::not_null("v"), &pk).is_ok());
        // Key-disjoint function is fine; non-injective key rewrite is not.
        assert!(ops_commute(&UnaryOp::function("f", ["v"], "w"), &pk).is_ok());
        assert!(!ops_commute(&UnaryOp::function_noninjective("f", ["k"], "k"), &pk).is_ok());
        assert!(!ops_commute(&UnaryOp::project_out(["k"]), &pk).is_ok());
        assert!(ops_commute(&UnaryOp::project_out(["v"]), &pk).is_ok());
    }

    #[test]
    fn chains_commute_requires_all_pairs() {
        let chain_a = vec![
            UnaryOp::filter(Predicate::eq("pkey", 1)),
            UnaryOp::function("f", ["pkey"], "pkey"),
        ];
        let chain_b = vec![agg()];
        assert!(chains_commute(&chain_a, &chain_b).is_ok());
        let chain_c = vec![UnaryOp::filter(Predicate::gt("cost", 1))];
        assert!(!chains_commute(&chain_c, &chain_b).is_ok());
    }
}
