//! The Swap transition `SWA(a₁,a₂)` (§2.2, §3.3).
//!
//! Interchanges two adjacent unary activities. The applicability conditions
//! are the paper's four, verbatim:
//!
//! 1. `a₁` and `a₂` are adjacent in the graph (`a₁` provides `a₂`);
//! 2. both have a single input and output schema, and each output has
//!    exactly one consumer;
//! 3. the functionality schema of each is a subset of its input schema,
//!    both before and after the swap — this rejects pushing `σ(€)` before
//!    the `$2€` conversion (Fig. 5);
//! 4. the input schemata remain subsets of their providers' outputs after
//!    the swap — this rejects swapping past a projection that drops a
//!    needed attribute (Fig. 6);
//!
//! plus the semantic commutation rules of [`super::commute`], which keep
//! blocking operators exact (the `γ`-vs-`A2E` case is *allowed*, the
//! `γ`-vs-`σ(€COST)` case is *blocked*).

use crate::graph::NodeId;
use crate::schema::Schema;
use crate::transition::commute::{chains_commute, Verdict};
use crate::transition::{finalize, Transition, TransitionError, TransitionKind};
use crate::workflow::Workflow;

/// `SWA(a₁,a₂)`: swap two adjacent unary activities. The order of the two
/// fields does not matter; the transition discovers the orientation from
/// the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Swap {
    /// One activity.
    pub a1: NodeId,
    /// The other activity.
    pub a2: NodeId,
}

impl Swap {
    /// Construct a swap of the pair.
    pub fn new(a1: NodeId, a2: NodeId) -> Self {
        Swap { a1, a2 }
    }

    /// Determine (provider, consumer) orientation; checks conditions 1–2
    /// and the commutation rules, without building the successor.
    fn structural_check(&self, wf: &Workflow) -> Result<(NodeId, NodeId), TransitionError> {
        let g = wf.graph();
        let (first, second) = if g.provider(self.a2, 0).ok().flatten() == Some(self.a1) {
            (self.a1, self.a2)
        } else if g.provider(self.a1, 0).ok().flatten() == Some(self.a2) {
            (self.a2, self.a1)
        } else {
            return Err(TransitionError::NotAdjacent(self.a1, self.a2));
        };
        let fa = g
            .activity(first)
            .map_err(|_| TransitionError::NotUnary(first))?;
        let sa = g
            .activity(second)
            .map_err(|_| TransitionError::NotUnary(second))?;
        if !fa.is_unary() {
            return Err(TransitionError::NotUnary(first));
        }
        if !sa.is_unary() {
            return Err(TransitionError::NotUnary(second));
        }
        // Condition 2: single consumer each. `first`'s single consumer is
        // `second` by adjacency; `second` must also have exactly one.
        if g.consumers(first)?.len() != 1 {
            return Err(TransitionError::MultipleConsumers(first));
        }
        if g.consumers(second)?.len() != 1 {
            return Err(TransitionError::MultipleConsumers(second));
        }
        // Semantic commutation (blocking operators, injectivity).
        let fl = fa.unary_links().expect("unary checked");
        let sl = sa.unary_links().expect("unary checked");
        if let Verdict::Blocked(why) = chains_commute(fl, sl) {
            return Err(TransitionError::NotCommutative {
                a: first,
                b: second,
                detail: why,
            });
        }
        // Condition 3 (after-swap direction): `second`, once moved before
        // `first`, must not need attributes `first` generates — Fig. 5.
        let gen_first = fa.generated();
        let fun_second = sa.functionality();
        let clash: Schema = fun_second.intersection(&gen_first);
        if !clash.is_empty() {
            return Err(TransitionError::FunctionalityViolated {
                node: second,
                detail: format!("{} needs {clash}, which {} generates", sa.label, fa.label),
            });
        }
        // Condition 4 (after-swap direction): `first`, once moved after
        // `second`, must not lose attributes `second` projects out — Fig. 6.
        let dropped = sa.projected_out();
        let fun_first = fa.functionality();
        let lost: Schema = fun_first.intersection(&dropped);
        if !lost.is_empty() {
            return Err(TransitionError::ProviderViolated {
                node: first,
                detail: format!("{} needs {lost}, which {} projects out", fa.label, sa.label),
            });
        }
        Ok((first, second))
    }
}

impl Transition for Swap {
    fn kind(&self) -> TransitionKind {
        TransitionKind::Swap
    }

    fn affected(&self, _wf: &Workflow) -> Vec<NodeId> {
        vec![self.a1, self.a2]
    }

    fn apply(&self, wf: &Workflow) -> Result<Workflow, TransitionError> {
        let (first, second) = self.structural_check(wf)?;
        let mut out = wf.clone();
        let g = &mut out.graph;
        let p = g
            .provider(first, 0)?
            .ok_or(TransitionError::NotAdjacent(first, second))?;
        let consumer = g.consumers(second)?[0];
        let cport = g
            .port_of(second, consumer)?
            .expect("consumer recorded without port");
        g.disconnect(first, 0)?;
        g.disconnect(second, 0)?;
        g.disconnect(consumer, cport)?;
        g.connect(p, second, 0)?;
        g.connect(second, first, 0)?;
        g.connect(first, consumer, cport)?;
        // Conditions 3 and 4 in their full generality (both "before and
        // after" sides) reduce to the regeneration succeeding.
        finalize(out, &self.affected(wf))
    }

    fn describe(&self, wf: &Workflow) -> String {
        format!(
            "SWA({},{})",
            wf.priority_token(self.a1),
            wf.priority_token(self.a2)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, RowCountModel};
    use crate::postcond::equivalent;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{Aggregation, UnaryOp};
    use crate::workflow::WorkflowBuilder;

    /// S → NN(b) → σ(a>1) → T
    fn two_filters() -> (Workflow, NodeId, NodeId) {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a", "b"]), 100.0);
        let nn = b.unary("NN", UnaryOp::not_null("b").with_selectivity(0.9), s);
        let f = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("a", 1)).with_selectivity(0.2),
            nn,
        );
        b.target("T", Schema::of(["a", "b"]), f);
        (b.build().unwrap(), nn, f)
    }

    #[test]
    fn swap_reorders_and_preserves_equivalence() {
        let (wf, nn, f) = two_filters();
        let swapped = Swap::new(nn, f).apply(&wf).unwrap();
        assert_ne!(wf.signature(), swapped.signature());
        assert!(equivalent(&wf, &swapped).unwrap());
        // σ now runs first.
        let order = swapped.activities().unwrap();
        assert_eq!(swapped.graph().activity(order[0]).unwrap().label, "σ");
    }

    #[test]
    fn swap_is_an_involution() {
        let (wf, nn, f) = two_filters();
        let once = Swap::new(nn, f).apply(&wf).unwrap();
        let twice = Swap::new(nn, f).apply(&once).unwrap();
        assert_eq!(wf.signature(), twice.signature());
    }

    #[test]
    fn swap_order_of_fields_is_irrelevant() {
        let (wf, nn, f) = two_filters();
        let s1 = Swap::new(nn, f).apply(&wf).unwrap();
        let s2 = Swap::new(f, nn).apply(&wf).unwrap();
        assert_eq!(s1.signature(), s2.signature());
    }

    #[test]
    fn swap_changes_cost_in_the_expected_direction() {
        let (wf, nn, f) = two_filters();
        let model = RowCountModel::default();
        let before = model.cost(&wf).unwrap();
        // Putting the more selective σ (0.2) first shrinks NN's input.
        let after = model.cost(&Swap::new(nn, f).apply(&wf).unwrap()).unwrap();
        assert!(after < before, "after={after} before={before}");
    }

    /// Fig. 5: σ(euro_cost) may not move before $2€ which generates it.
    #[test]
    fn fig5_selection_cannot_cross_generating_function() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["pkey", "dollar_cost"]), 100.0);
        let f = b.unary(
            "$2E",
            UnaryOp::function("dollar2euro", ["dollar_cost"], "euro_cost"),
            s,
        );
        let sel = b.unary(
            "σ(€)",
            UnaryOp::filter(Predicate::gt("euro_cost", 100.0)),
            f,
        );
        b.target("DW", Schema::of(["pkey", "euro_cost"]), sel);
        let wf = b.build().unwrap();
        let err = Swap::new(f, sel).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::FunctionalityViolated { .. }),
            "{err}"
        );
    }

    /// Fig. 6: a₁ cannot move after a π-out that drops what a₁ needs.
    #[test]
    fn fig6_projected_out_attribute_blocks_swap() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a", "b"]), 100.0);
        let f = b.unary("σ(b)", UnaryOp::filter(Predicate::gt("b", 1)), s);
        let pout = b.unary("π-out", UnaryOp::project_out(["b"]), f);
        b.target("T", Schema::of(["a"]), pout);
        let wf = b.build().unwrap();
        let err = Swap::new(f, pout).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::ProviderViolated { .. }),
            "{err}"
        );
    }

    /// The running example's allowed case: γ swaps with the injective
    /// grouper transform A2E.
    #[test]
    fn aggregation_swaps_with_injective_grouper_function() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S2", Schema::of(["pkey", "date", "cost"]), 100.0);
        let a2e = b.unary("A2E", UnaryOp::function("am2eu", ["date"], "date"), s);
        let agg = b.unary(
            "γ",
            UnaryOp::aggregate(Aggregation::sum(["pkey", "date"], "cost", "cost"))
                .with_selectivity(0.1),
            a2e,
        );
        b.target("T", Schema::of(["pkey", "date", "cost"]), agg);
        let wf = b.build().unwrap();
        let swapped = Swap::new(a2e, agg).apply(&wf).unwrap();
        assert!(equivalent(&wf, &swapped).unwrap());
        let order = swapped.activities().unwrap();
        assert_eq!(swapped.graph().activity(order[0]).unwrap().label, "γ");
    }

    /// …but σ over the aggregated value may not cross the γ, even though
    /// the reference name is reused.
    #[test]
    fn selection_on_aggregate_output_cannot_cross_aggregation() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["pkey", "cost"]), 100.0);
        let agg = b.unary(
            "γ",
            UnaryOp::aggregate(Aggregation::sum(["pkey"], "cost", "cost")),
            s,
        );
        let sel = b.unary("σ", UnaryOp::filter(Predicate::gt("cost", 100)), agg);
        b.target("T", Schema::of(["pkey", "cost"]), sel);
        let wf = b.build().unwrap();
        let err = Swap::new(agg, sel).apply(&wf).unwrap_err();
        // Blocked either as a functionality clash (generated attr) or as a
        // non-commuting pair; both are correct refusals.
        assert!(
            matches!(
                err,
                TransitionError::FunctionalityViolated { .. }
                    | TransitionError::NotCommutative { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn non_adjacent_pair_is_rejected() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f1 = b.unary("f1", UnaryOp::filter(Predicate::gt("a", 1)), s);
        let f2 = b.unary("f2", UnaryOp::filter(Predicate::gt("a", 2)), f1);
        let f3 = b.unary("f3", UnaryOp::filter(Predicate::gt("a", 3)), f2);
        b.target("T", Schema::of(["a"]), f3);
        let wf = b.build().unwrap();
        let err = Swap::new(f1, f3).apply(&wf).unwrap_err();
        assert!(matches!(err, TransitionError::NotAdjacent(_, _)));
    }

    #[test]
    fn binary_activity_cannot_swap() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["a"]), 10.0);
        let s2 = b.source("S2", Schema::of(["a"]), 10.0);
        let u = b.binary("U", crate::semantics::BinaryOp::Union, s1, s2);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), u);
        b.target("T", Schema::of(["a"]), f);
        let wf = b.build().unwrap();
        let err = Swap::new(u, f).apply(&wf).unwrap_err();
        assert!(matches!(err, TransitionError::NotUnary(_)), "{err}");
    }

    #[test]
    fn multi_consumer_output_blocks_swap() {
        // f1 feeds both f2 and (via a second branch) a join — condition 2.
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "a"]), 10.0);
        let f1 = b.unary("f1", UnaryOp::filter(Predicate::gt("a", 1)), s);
        let f2 = b.unary("f2", UnaryOp::filter(Predicate::gt("a", 2)), f1);
        let f3 = b.unary("f3", UnaryOp::filter(Predicate::gt("a", 3)), f1);
        let j = b.binary(
            "J",
            crate::semantics::BinaryOp::Join(vec!["k".into()]),
            f2,
            f3,
        );
        b.target("T", Schema::of(["k", "a"]), j);
        let wf = b.build().unwrap();
        let err = Swap::new(f1, f2).apply(&wf).unwrap_err();
        assert!(
            matches!(err, TransitionError::MultipleConsumers(_)),
            "{err}"
        );
    }

    #[test]
    fn swap_preserves_untouched_node_ids() {
        let (wf, nn, f) = two_filters();
        let swapped = Swap::new(nn, f).apply(&wf).unwrap();
        // Same node ids still live; only wiring changed.
        assert!(swapped.graph().contains(nn));
        assert!(swapped.graph().contains(f));
        assert_eq!(
            wf.graph().activity(nn).unwrap().id,
            swapped.graph().activity(nn).unwrap().id
        );
    }

    #[test]
    fn describe_uses_paper_notation() {
        let (wf, nn, f) = two_filters();
        assert_eq!(Swap::new(nn, f).describe(&wf), "SWA(2,3)");
    }
}
