//! The Merge and Split transitions `MER(a₁₊₂,a₁,a₂)` / `SPL(a₁₊₂,a₁,a₂)`
//! (§2.2, §3.3).
//!
//! Merge "packages" two adjacent activities into a single indivisible node
//! — used to express design constraints ("a third activity may not be
//! placed between the two, or these two activities cannot be commuted") and
//! to proactively shrink the search space. Split unpackages: a merged
//! `a+b+c` splits into `a` and `b+c`, exactly as in the paper. Neither
//! changes semantics: the merged node carries the conjunction of its
//! members' post-conditions.

use crate::activity::{Activity, ActivityId, Op};
use crate::graph::NodeId;
use crate::semantics::UnaryOp;
use crate::transition::{finalize, Transition, TransitionError, TransitionKind};
use crate::workflow::Workflow;

/// Flattened (id, label, op) triple list of an activity's links.
fn parts_of(act: &Activity) -> Option<(Vec<ActivityId>, Vec<String>, Vec<UnaryOp>)> {
    match &act.op {
        Op::Unary(op) => Some((
            vec![act.id.clone()],
            vec![act.label.clone()],
            vec![op.clone()],
        )),
        Op::Merged(chain) => {
            let ids = match &act.id {
                ActivityId::Merged(parts) if parts.len() == chain.len() => parts.clone(),
                other => vec![other.clone()],
            };
            let labels: Vec<String> = {
                let ls: Vec<&str> = act.label.split('+').collect();
                if ls.len() == chain.len() {
                    ls.into_iter().map(str::to_owned).collect()
                } else {
                    chain.iter().map(|op| op.op_name()).collect()
                }
            };
            Some((ids, labels, chain.clone()))
        }
        Op::Binary(_) => None,
    }
}

fn assemble(ids: Vec<ActivityId>, labels: Vec<String>, ops: Vec<UnaryOp>) -> Activity {
    debug_assert_eq!(labels.len(), ops.len());
    if ops.len() == 1 {
        Activity::new(
            ids.into_iter().next().expect("one id"),
            labels.into_iter().next().expect("one label"),
            Op::Unary(ops.into_iter().next().expect("one op")),
        )
    } else {
        Activity::new(ActivityId::Merged(ids), labels.join("+"), Op::Merged(ops))
    }
}

/// `MER(a₁₊₂,a₁,a₂)`: package adjacent unary activities `a₁ → a₂` into one
/// node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Merge {
    /// Upstream activity.
    pub a1: NodeId,
    /// Downstream activity (direct consumer of `a1`).
    pub a2: NodeId,
}

impl Merge {
    /// Construct the transition.
    pub fn new(a1: NodeId, a2: NodeId) -> Self {
        Merge { a1, a2 }
    }
}

impl Transition for Merge {
    fn kind(&self) -> TransitionKind {
        TransitionKind::Merge
    }

    fn affected(&self, wf: &Workflow) -> Vec<NodeId> {
        let mut nodes = vec![self.a1, self.a2];
        if let Ok(Some(p)) = wf.graph().provider(self.a1, 0) {
            nodes.push(p);
        }
        nodes
    }

    fn apply(&self, wf: &Workflow) -> Result<Workflow, TransitionError> {
        let g = wf.graph();
        let first = g
            .activity(self.a1)
            .map_err(|_| TransitionError::NotUnary(self.a1))?;
        let second = g
            .activity(self.a2)
            .map_err(|_| TransitionError::NotUnary(self.a2))?;
        if !first.is_unary() {
            return Err(TransitionError::NotUnary(self.a1));
        }
        if !second.is_unary() {
            return Err(TransitionError::NotUnary(self.a2));
        }
        if g.provider(self.a2, 0)?
            .map(|p| p != self.a1)
            .unwrap_or(true)
        {
            return Err(TransitionError::NotAdjacent(self.a1, self.a2));
        }
        if g.consumers(self.a1)?.len() != 1 {
            return Err(TransitionError::MultipleConsumers(self.a1));
        }
        let (mut ids, mut labels, mut ops) = parts_of(first).expect("unary");
        let (ids2, labels2, ops2) = parts_of(second).expect("unary");
        ids.extend(ids2);
        labels.extend(labels2);
        ops.extend(ops2);
        let merged = assemble(ids, labels, ops);

        let mut out = wf.clone();
        let g = &mut out.graph;
        let p = g.provider(self.a1, 0)?.ok_or(TransitionError::Graph(
            crate::error::CoreError::MissingProvider {
                node: self.a1,
                port: 0,
            },
        ))?;
        g.disconnect(self.a1, 0)?;
        g.disconnect(self.a2, 0)?;
        let m = g.add_activity(merged);
        g.redirect_consumers(self.a2, m)?;
        g.remove(self.a2)?;
        g.remove(self.a1)?;
        g.connect(p, m, 0)?;
        finalize(out, &self.affected(wf))
    }

    fn describe(&self, wf: &Workflow) -> String {
        format!(
            "MER({},{})",
            wf.priority_token(self.a1),
            wf.priority_token(self.a2)
        )
    }
}

/// `SPL(a₁₊₂,a₁,a₂)`: unpackage a merged node into its first link and the
/// (possibly still merged) remainder — `a+b+c` → `a` and `b+c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Split {
    /// The merged activity.
    pub merged: NodeId,
}

impl Split {
    /// Construct the transition.
    pub fn new(merged: NodeId) -> Self {
        Split { merged }
    }
}

impl Transition for Split {
    fn kind(&self) -> TransitionKind {
        TransitionKind::Split
    }

    fn affected(&self, wf: &Workflow) -> Vec<NodeId> {
        let mut nodes = vec![self.merged];
        if let Ok(Some(p)) = wf.graph().provider(self.merged, 0) {
            nodes.push(p);
        }
        nodes
    }

    fn apply(&self, wf: &Workflow) -> Result<Workflow, TransitionError> {
        let g = wf.graph();
        let act = g
            .activity(self.merged)
            .map_err(|_| TransitionError::NotMerged(self.merged))?;
        let chain_len = match &act.op {
            Op::Merged(chain) => chain.len(),
            _ => return Err(TransitionError::NotMerged(self.merged)),
        };
        if chain_len < 2 {
            return Err(TransitionError::NotMerged(self.merged));
        }
        let (ids, labels, ops) = parts_of(act).expect("merged is unary-shaped");
        let head = assemble(
            vec![ids[0].clone()],
            vec![labels[0].clone()],
            vec![ops[0].clone()],
        );
        let tail = assemble(ids[1..].to_vec(), labels[1..].to_vec(), ops[1..].to_vec());

        let mut out = wf.clone();
        let g = &mut out.graph;
        let p = g.provider(self.merged, 0)?.ok_or(TransitionError::Graph(
            crate::error::CoreError::MissingProvider {
                node: self.merged,
                port: 0,
            },
        ))?;
        g.disconnect(self.merged, 0)?;
        let h = g.add_activity(head);
        let t = g.add_activity(tail);
        g.redirect_consumers(self.merged, t)?;
        g.remove(self.merged)?;
        g.connect(p, h, 0)?;
        g.connect(h, t, 0)?;
        finalize(out, &self.affected(wf))
    }

    fn describe(&self, wf: &Workflow) -> String {
        format!("SPL({})", wf.priority_token(self.merged))
    }
}

/// Apply Split repeatedly until no merged activity remains (the
/// post-processing step of Heuristic Search).
pub fn split_all(wf: &Workflow) -> Result<Workflow, TransitionError> {
    let mut cur = wf.clone();
    loop {
        let merged = cur
            .activities()
            .map_err(TransitionError::Graph)?
            .into_iter()
            .find(|&a| matches!(cur.graph().activity(a).map(|x| &x.op), Ok(Op::Merged(_))));
        match merged {
            Some(m) => cur = Split::new(m).apply(&cur)?,
            None => return Ok(cur),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postcond::equivalent;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::transition::Swap;
    use crate::workflow::WorkflowBuilder;

    fn three_chain() -> (Workflow, Vec<NodeId>) {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a", "b", "c"]), 100.0);
        let f1 = b.unary("NN", UnaryOp::not_null("a"), s);
        let f2 = b.unary("σ", UnaryOp::filter(Predicate::gt("b", 1)), f1);
        let f3 = b.unary("π", UnaryOp::project_out(["c"]), f2);
        b.target("T", Schema::of(["a", "b"]), f3);
        (b.build().unwrap(), vec![f1, f2, f3])
    }

    #[test]
    fn merge_packages_and_preserves_equivalence() {
        let (wf, acts) = three_chain();
        let merged = Merge::new(acts[0], acts[1]).apply(&wf).unwrap();
        assert!(equivalent(&wf, &merged).unwrap());
        assert_eq!(merged.activity_count(), wf.activity_count() - 1);
        let sig = merged.signature().to_string();
        assert!(sig.contains("2+3"), "{sig}");
    }

    #[test]
    fn merge_then_split_restores_signature() {
        let (wf, acts) = three_chain();
        let merged = Merge::new(acts[0], acts[1]).apply(&wf).unwrap();
        let m = merged
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| matches!(merged.graph().activity(a).unwrap().op, Op::Merged(_)))
            .unwrap();
        let split = Split::new(m).apply(&merged).unwrap();
        assert_eq!(wf.signature(), split.signature());
        // Labels survive the round trip.
        let labels: Vec<String> = split
            .activities()
            .unwrap()
            .iter()
            .map(|&a| split.graph().activity(a).unwrap().label.clone())
            .collect();
        assert_eq!(labels, vec!["NN", "σ", "π"]);
    }

    #[test]
    fn triple_merge_splits_like_the_paper() {
        // a+b+c splits into a and b+c.
        let (wf, acts) = three_chain();
        let m1 = Merge::new(acts[0], acts[1]).apply(&wf).unwrap();
        let merged_node = m1
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| matches!(m1.graph().activity(a).unwrap().op, Op::Merged(_)))
            .unwrap();
        let m2 = Merge::new(merged_node, acts[2]).apply(&m1).unwrap();
        let abc = m2
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| matches!(m2.graph().activity(a).unwrap().op, Op::Merged(_)))
            .unwrap();
        assert_eq!(m2.graph().activity(abc).unwrap().label, "NN+σ+π");
        let split = Split::new(abc).apply(&m2).unwrap();
        let labels: Vec<String> = split
            .activities()
            .unwrap()
            .iter()
            .map(|&a| split.graph().activity(a).unwrap().label.clone())
            .collect();
        assert_eq!(labels, vec!["NN", "σ+π"]);
    }

    #[test]
    fn split_all_unpacks_everything() {
        let (wf, acts) = three_chain();
        let m1 = Merge::new(acts[0], acts[1]).apply(&wf).unwrap();
        let merged_node = m1
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| matches!(m1.graph().activity(a).unwrap().op, Op::Merged(_)))
            .unwrap();
        let m2 = Merge::new(merged_node, acts[2]).apply(&m1).unwrap();
        let flat = split_all(&m2).unwrap();
        assert_eq!(flat.signature(), wf.signature());
    }

    #[test]
    fn merged_node_swaps_as_a_unit() {
        // Merge σ+π, then swap the package with NN: the package moves as one.
        let (wf, acts) = three_chain();
        let merged = Merge::new(acts[1], acts[2]).apply(&wf).unwrap();
        let m = merged
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| matches!(merged.graph().activity(a).unwrap().op, Op::Merged(_)))
            .unwrap();
        let swapped = Swap::new(acts[0], m).apply(&merged).unwrap();
        assert!(equivalent(&wf, &swapped).unwrap());
        let first = swapped.activities().unwrap()[0];
        assert_eq!(swapped.graph().activity(first).unwrap().label, "σ+π");
    }

    #[test]
    fn split_of_plain_activity_is_rejected() {
        let (wf, acts) = three_chain();
        let err = Split::new(acts[0]).apply(&wf).unwrap_err();
        assert!(matches!(err, TransitionError::NotMerged(_)));
    }

    #[test]
    fn merge_of_non_adjacent_is_rejected() {
        let (wf, acts) = three_chain();
        let err = Merge::new(acts[0], acts[2]).apply(&wf).unwrap_err();
        assert!(matches!(err, TransitionError::NotAdjacent(_, _)));
    }

    #[test]
    fn merge_of_binary_is_rejected() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["a"]), 10.0);
        let s2 = b.source("S2", Schema::of(["a"]), 10.0);
        let u = b.binary("U", crate::semantics::BinaryOp::Union, s1, s2);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 1)), u);
        b.target("T", Schema::of(["a"]), f);
        let wf = b.build().unwrap();
        let err = Merge::new(u, f).apply(&wf).unwrap_err();
        assert!(matches!(err, TransitionError::NotUnary(_)));
    }
}
