//! State transitions (§2.2, §3.3): the generators of the search space.
//!
//! | Transition | Notation | Effect |
//! |---|---|---|
//! | [`Swap`] | `SWA(a₁,a₂)` | interchange two adjacent unary activities |
//! | [`Factorize`] | `FAC(a_b,a₁,a₂)` | replace homologous activities on converging flows by one activity after the binary |
//! | [`Distribute`] | `DIS(a_b,a)` | clone an activity from after a binary into both converging flows |
//! | [`Merge`] | `MER(a₁₊₂,a₁,a₂)` | package two adjacent activities into one indivisible node |
//! | [`Split`] | `SPL(a₁₊₂,a₁,a₂)` | unpackage a merged node |
//!
//! Every transition implements [`Transition`]: `check` encodes the paper's
//! numbered applicability conditions (plus the semantic-exactness rules of
//! [`commute`]) and `apply` produces the successor state with schemata
//! regenerated **only along the dirty downstream path** (from the touched
//! nodes towards the targets — everything upstream keeps its `Arc`-shared
//! payload). Applying a transition to a state it is not applicable to is
//! an error, never a panic, and never a silently wrong workflow.
//!
//! The same dirty set drives the searches' incremental state evaluation:
//! [`Transition::affected`] must conservatively cover every node whose
//! derived row count or structural hash the rewrite can change, because
//! delta repricing and fingerprint rehashing start from exactly those
//! roots (`crate::cost::CostModel::reprice_from`,
//! `crate::signature::rehash_along`).

pub mod commute;
mod distribute;
mod factorize;
mod merge_split;
mod swap;

pub use distribute::Distribute;
pub use factorize::{distributable_through, Factorize};
pub use merge_split::{split_all, Merge, Split};
pub use swap::Swap;

use std::fmt;

use crate::error::CoreError;
use crate::graph::NodeId;
use crate::workflow::Workflow;

/// Which of the five transitions a value represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionKind {
    /// `SWA`.
    Swap,
    /// `FAC`.
    Factorize,
    /// `DIS`.
    Distribute,
    /// `MER`.
    Merge,
    /// `SPL`.
    Split,
}

impl fmt::Display for TransitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransitionKind::Swap => "SWA",
            TransitionKind::Factorize => "FAC",
            TransitionKind::Distribute => "DIS",
            TransitionKind::Merge => "MER",
            TransitionKind::Split => "SPL",
        })
    }
}

/// Why a transition is not applicable to a state.
#[derive(Debug, Clone, PartialEq)]
pub enum TransitionError {
    /// The involved activities are not adjacent in the graph (swap
    /// condition 1, merge precondition).
    NotAdjacent(NodeId, NodeId),
    /// An involved activity is not unary / does not have a single input and
    /// output schema (swap condition 2).
    NotUnary(NodeId),
    /// A node's output has more than one consumer (swap condition 2).
    MultipleConsumers(NodeId),
    /// Functionality schema would not be contained in the input schema
    /// after the rewiring (swap condition 3 — the Fig. 5 `$2€`/`σ(€)` case).
    FunctionalityViolated {
        /// The activity whose functionality schema breaks.
        node: NodeId,
        /// Human-readable description.
        detail: String,
    },
    /// An input schema would lose its provider attributes (swap
    /// condition 4 — the Fig. 6 projected-out case).
    ProviderViolated {
        /// The activity whose input breaks.
        node: NodeId,
        /// Human-readable description.
        detail: String,
    },
    /// The two activities do not commute semantically (blocking operators,
    /// non-injective functions across aggregations, …).
    NotCommutative {
        /// First activity.
        a: NodeId,
        /// Second activity.
        b: NodeId,
        /// Why.
        detail: String,
    },
    /// The activities are not homologous (factorize condition 1).
    NotHomologous(NodeId, NodeId),
    /// The designated node is not a binary activity (factorize/distribute
    /// condition 2).
    NotBinary(NodeId),
    /// The activity cannot be distributed/factorized through this binary
    /// operator (e.g. an aggregation over a union, a non-injective function
    /// over a difference).
    NotDistributable {
        /// The activity.
        node: NodeId,
        /// Why.
        detail: String,
    },
    /// Split requires a merged activity.
    NotMerged(NodeId),
    /// An underlying graph/schema error surfaced by the rewiring attempt.
    Graph(CoreError),
}

impl fmt::Display for TransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionError::NotAdjacent(a, b) => write!(f, "{a} and {b} are not adjacent"),
            TransitionError::NotUnary(n) => write!(f, "{n} is not a unary activity"),
            TransitionError::MultipleConsumers(n) => {
                write!(f, "{n}'s output has more than one consumer")
            }
            TransitionError::FunctionalityViolated { node, detail } => {
                write!(f, "functionality schema of {node} violated: {detail}")
            }
            TransitionError::ProviderViolated { node, detail } => {
                write!(f, "input schema of {node} loses its provider: {detail}")
            }
            TransitionError::NotCommutative { a, b, detail } => {
                write!(f, "{a} and {b} do not commute: {detail}")
            }
            TransitionError::NotHomologous(a, b) => {
                write!(f, "{a} and {b} are not homologous")
            }
            TransitionError::NotBinary(n) => write!(f, "{n} is not a binary activity"),
            TransitionError::NotDistributable { node, detail } => {
                write!(f, "{node} cannot be distributed: {detail}")
            }
            TransitionError::NotMerged(n) => write!(f, "{n} is not a merged activity"),
            TransitionError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for TransitionError {}

impl From<CoreError> for TransitionError {
    fn from(e: CoreError) -> Self {
        TransitionError::Graph(e)
    }
}

/// A state transition `S' = T(S)`.
pub trait Transition: fmt::Debug {
    /// Which transition this is.
    fn kind(&self) -> TransitionKind;

    /// The nodes whose position/semantics the transition touches, queried
    /// against the *pre*-transition state; everything downstream of these in
    /// the successor is what the semi-incremental costing recomputes.
    /// Implementations must include every node whose output or cost can
    /// change — for Distribute that includes the binary's providers, since
    /// the clones are spliced in directly after them.
    fn affected(&self, wf: &Workflow) -> Vec<NodeId>;

    /// Produce the successor state, or explain why the transition is not
    /// applicable. Implementations clone the state, rewire, regenerate all
    /// schemata and re-validate; the input state is never mutated.
    fn apply(&self, wf: &Workflow) -> Result<Workflow, TransitionError>;

    /// Applicability test without constructing the successor. The default
    /// simply tries `apply` and drops the state; implementations may
    /// short-circuit cheap structural conditions first.
    fn check(&self, wf: &Workflow) -> Result<(), TransitionError> {
        self.apply(wf).map(|_| ())
    }

    /// Paper-style rendering, e.g. `SWA(3,4)`.
    fn describe(&self, wf: &Workflow) -> String;
}

/// Finalize a rewired candidate: regenerate the schemata downstream of the
/// rewired nodes and re-check the state, mapping failures to transition
/// errors. Shared by all transition implementations.
///
/// `affected` are the transition's touched nodes as reported by
/// [`Transition::affected`] against the *pre*-state; everything upstream of
/// them is untouched by construction, so only the downstream slice is
/// re-derived. The full structural validation runs in debug builds (and is
/// exercised heavily by the test suite); release-mode searches rely on the
/// transitions' structural invariants plus the always-on target-schema
/// check.
pub(crate) fn finalize(mut wf: Workflow, affected: &[NodeId]) -> Result<Workflow, TransitionError> {
    crate::schema_gen::regenerate_downstream(&mut wf.graph, affected).map_err(|e| match e {
        CoreError::Schema(detail) => TransitionError::FunctionalityViolated {
            node: NodeId(u32::MAX),
            detail,
        },
        other => TransitionError::Graph(other),
    })?;
    // Equivalence condition (a): targets must still receive their declared
    // schema. Cheap (targets only), always on.
    for t in wf.targets() {
        let r = wf.graph.recordset(t).map_err(TransitionError::Graph)?;
        if let Some(p) = wf.graph.provider(t, 0).map_err(TransitionError::Graph)? {
            let out = wf
                .graph
                .node(p)
                .map_err(TransitionError::Graph)?
                .output_schema();
            if !out.same_attrs(&r.schema) {
                return Err(TransitionError::Graph(CoreError::Schema(format!(
                    "target {} declares {} but would receive {}",
                    r.name, r.schema, out
                ))));
            }
        }
    }
    #[cfg(debug_assertions)]
    wf.validate().map_err(TransitionError::Graph)?;
    Ok(wf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_render_paper_notation() {
        assert_eq!(TransitionKind::Swap.to_string(), "SWA");
        assert_eq!(TransitionKind::Factorize.to_string(), "FAC");
        assert_eq!(TransitionKind::Distribute.to_string(), "DIS");
        assert_eq!(TransitionKind::Merge.to_string(), "MER");
        assert_eq!(TransitionKind::Split.to_string(), "SPL");
    }

    #[test]
    fn errors_display() {
        let e = TransitionError::NotAdjacent(NodeId(1), NodeId(2));
        assert!(e.to_string().contains("not adjacent"));
        let e = TransitionError::NotCommutative {
            a: NodeId(1),
            b: NodeId(2),
            detail: "x".into(),
        };
        assert!(e.to_string().contains("do not commute"));
    }
}
