//! Attributes and schemata.
//!
//! A schema is a finite *ordered* list of attributes (§2.1). Activities are
//! additionally characterized by three auxiliary schemata (§3.2):
//!
//! * **functionality** (necessary) schema — attributes that take part in the
//!   computation,
//! * **generated** schema — attributes created by the activity,
//! * **projected-out** schema — input attributes the activity drops.
//!
//! All attribute names in an optimizable workflow are *reference attribute
//! names* drawn from the conceptual set Σn of the naming principle (§3.1);
//! see [`crate::naming`].

use std::fmt;
use std::sync::Arc;

/// A reference attribute name.
///
/// Cheap to clone (`Arc<str>`): schemata are copied wholesale on every state
/// transition during search, so attribute names are shared, not re-allocated.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attr(Arc<str>);

impl Attr {
    /// Create an attribute from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Attr(Arc::from(name.as_ref()))
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Self {
        Attr::new(s)
    }
}
impl From<String> for Attr {
    fn from(s: String) -> Self {
        Attr::new(s)
    }
}
impl From<&Attr> for Attr {
    fn from(a: &Attr) -> Self {
        a.clone()
    }
}

/// An ordered, duplicate-free list of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema {
    attrs: Vec<Attr>,
}

impl Schema {
    /// The empty schema.
    pub fn empty() -> Self {
        Schema { attrs: Vec::new() }
    }

    /// Build a schema from attribute names. Duplicates are rejected at the
    /// earliest possible moment because downstream schema regeneration relies
    /// on name uniqueness.
    ///
    /// # Panics
    /// Panics if the same attribute appears twice; schemata come from user
    /// code or templates where a duplicate is a programming error.
    pub fn of<I, A>(attrs: I) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        let mut s = Schema::empty();
        for a in attrs {
            let a = a.into();
            assert!(
                !s.contains(&a),
                "duplicate attribute `{a}` in schema construction"
            );
            s.attrs.push(a);
        }
        s
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterate over the attributes in order.
    pub fn iter(&self) -> impl Iterator<Item = &Attr> + '_ {
        self.attrs.iter()
    }

    /// The attributes as a slice.
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Does the schema contain `attr`?
    pub fn contains(&self, attr: &Attr) -> bool {
        self.attrs.iter().any(|a| a == attr)
    }

    /// Position of `attr`, if present.
    pub fn index_of(&self, attr: &Attr) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }

    /// Set-wise subset test (order-insensitive): every attribute of `self`
    /// appears in `other`. This is the test behind swap conditions 3 and 4
    /// (§3.3).
    pub fn is_subset_of(&self, other: &Schema) -> bool {
        self.attrs.iter().all(|a| other.contains(a))
    }

    /// Append an attribute, ignoring duplicates (idempotent union insert).
    pub fn push(&mut self, attr: Attr) {
        if !self.contains(&attr) {
            self.attrs.push(attr);
        }
    }

    /// Order-preserving set union: attributes of `self`, then attributes of
    /// `other` not already present.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut out = self.clone();
        for a in other.iter() {
            out.push(a.clone());
        }
        out
    }

    /// Order-preserving set difference: attributes of `self` not in `other`.
    pub fn difference(&self, other: &Schema) -> Schema {
        Schema {
            attrs: self
                .attrs
                .iter()
                .filter(|a| !other.contains(a))
                .cloned()
                .collect(),
        }
    }

    /// Order-preserving intersection: attributes of `self` also in `other`.
    pub fn intersection(&self, other: &Schema) -> Schema {
        Schema {
            attrs: self
                .attrs
                .iter()
                .filter(|a| other.contains(a))
                .cloned()
                .collect(),
        }
    }

    /// Set equality (order-insensitive). Structural `==` remains
    /// order-sensitive, which is what schema *identity* (equivalence
    /// condition (a) of §3.4) requires; this weaker test is used where the
    /// paper talks about schemata as attribute sets.
    pub fn same_attrs(&self, other: &Schema) -> bool {
        self.len() == other.len() && self.is_subset_of(other)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "]")
    }
}

impl<'a> IntoIterator for &'a Schema {
    type Item = &'a Attr;
    type IntoIter = std::slice::Iter<'a, Attr>;
    fn into_iter(self) -> Self::IntoIter {
        self.attrs.iter()
    }
}

impl FromIterator<Attr> for Schema {
    fn from_iter<T: IntoIterator<Item = Attr>>(iter: T) -> Self {
        let mut s = Schema::empty();
        for a in iter {
            s.push(a);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_builds_in_order() {
        let s = Schema::of(["a", "b", "c"]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.attrs()[1], Attr::new("b"));
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn of_rejects_duplicates() {
        let _ = Schema::of(["a", "a"]);
    }

    #[test]
    fn subset_is_order_insensitive() {
        let s = Schema::of(["b", "a"]);
        let t = Schema::of(["a", "b", "c"]);
        assert!(s.is_subset_of(&t));
        assert!(!t.is_subset_of(&s));
    }

    #[test]
    fn union_preserves_order_and_dedups() {
        let s = Schema::of(["a", "b"]);
        let t = Schema::of(["b", "c"]);
        assert_eq!(s.union(&t), Schema::of(["a", "b", "c"]));
    }

    #[test]
    fn difference_removes_only_named() {
        let s = Schema::of(["a", "b", "c"]);
        assert_eq!(s.difference(&Schema::of(["b"])), Schema::of(["a", "c"]));
        assert_eq!(s.difference(&Schema::empty()), s);
    }

    #[test]
    fn intersection_keeps_left_order() {
        let s = Schema::of(["c", "a", "b"]);
        let t = Schema::of(["a", "c"]);
        assert_eq!(s.intersection(&t), Schema::of(["c", "a"]));
    }

    #[test]
    fn same_attrs_vs_structural_eq() {
        let s = Schema::of(["a", "b"]);
        let t = Schema::of(["b", "a"]);
        assert!(s.same_attrs(&t));
        assert_ne!(s, t);
    }

    #[test]
    fn push_is_idempotent() {
        let mut s = Schema::of(["a"]);
        s.push(Attr::new("a"));
        s.push(Attr::new("b"));
        assert_eq!(s, Schema::of(["a", "b"]));
    }

    #[test]
    fn display_renders_brackets() {
        assert_eq!(Schema::of(["x", "y"]).to_string(), "[x,y]");
        assert_eq!(Schema::empty().to_string(), "[]");
    }
}
