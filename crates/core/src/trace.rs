//! Structured search telemetry (zero external dependencies).
//!
//! The paper's experimental section (Tables 1–2) is about how the search
//! *behaved* — states visited, pruning effectiveness, per-phase convergence
//! — not just which state won. This module gives every search run a uniform
//! account of that behaviour:
//!
//! * [`SearchStats`] — flat counters populated by all three algorithms with
//!   one identical schema: state accounting
//!   (`generated = deduplicated + expanded + pruned`), delta-vs-full
//!   evaluation counts, per-generation frontier sizes, move-memo
//!   effectiveness, and transition attempts broken down by rejection rule
//!   ([`Rejections`] — the paper's `$2€` applicability rejections are the
//!   `functionality_violated` counter).
//! * [`Span`] — a monotonic wall-clock span for coarse phase timing.
//! * [`TraceSink`] — an event hook for live observation. The default
//!   [`NoopSink`] keeps the hot path free: events are only constructed at
//!   coarse boundaries (per BFS generation, per HS phase), and counter
//!   updates are plain integer adds into a run-local [`Collector`].
//! * [`RingSink`] — a bounded in-memory event ring for embedders that want
//!   the last N events without unbounded growth.
//!
//! ## Determinism contract
//!
//! Everything rendered by [`SearchStats::counters_json`] is **bit-identical
//! for any worker-thread count**: workers only ever return per-item counter
//! deltas through [`crate::opt::Threads::map`], whose results come back in
//! input order, and the single-threaded coordinator merges them in that
//! order (summed integers are also order-insensitive, so the merge is
//! doubly safe). `tests/search_determinism.rs` pins the seq-vs-par byte
//! equality. Wall-clock spans, per-worker batch counts and move-memo
//! hit/miss counts are *runtime* telemetry — a raced memo lookup may record
//! a miss on two workers at once — so they are rendered only by
//! [`SearchStats::to_json`] and excluded from the deterministic projection.

use std::collections::{HashSet, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

use crate::transition::TransitionError;

/// Transition attempts rejected, broken down by applicability rule — one
/// counter per [`TransitionError`] variant. The `functionality_violated`
/// counter is the paper's `$2€`/`σ(€)` guard (Fig. 5): a swap that would
/// reference an attribute below the function that generates it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Rejections {
    /// `SWA`/`MER` on non-adjacent activities.
    pub not_adjacent: u64,
    /// A designated activity is not unary.
    pub not_unary: u64,
    /// An output fans out to more than one consumer.
    pub multiple_consumers: u64,
    /// Functionality schema violated — the `$2€` case (swap condition 3).
    pub functionality_violated: u64,
    /// Input schema would lose provider attributes (swap condition 4).
    pub provider_violated: u64,
    /// The pair does not commute as a multiset transformation.
    pub not_commutative: u64,
    /// `FAC` on non-homologous activities.
    pub not_homologous: u64,
    /// `FAC`/`DIS` anchor is not a binary activity.
    pub not_binary: u64,
    /// The activity cannot cross this binary operator.
    pub not_distributable: u64,
    /// `SPL` on a non-merged activity.
    pub not_merged: u64,
    /// An underlying graph/schema error surfaced by the rewiring.
    pub graph: u64,
}

impl Rejections {
    /// Count one rejection under the rule that produced `e`.
    pub fn record(&mut self, e: &TransitionError) {
        match e {
            TransitionError::NotAdjacent(..) => self.not_adjacent += 1,
            TransitionError::NotUnary(..) => self.not_unary += 1,
            TransitionError::MultipleConsumers(..) => self.multiple_consumers += 1,
            TransitionError::FunctionalityViolated { .. } => self.functionality_violated += 1,
            TransitionError::ProviderViolated { .. } => self.provider_violated += 1,
            TransitionError::NotCommutative { .. } => self.not_commutative += 1,
            TransitionError::NotHomologous(..) => self.not_homologous += 1,
            TransitionError::NotBinary(..) => self.not_binary += 1,
            TransitionError::NotDistributable { .. } => self.not_distributable += 1,
            TransitionError::NotMerged(..) => self.not_merged += 1,
            TransitionError::Graph(..) => self.graph += 1,
        }
    }

    /// Add every counter of `other` into `self` (the coordinator-side merge
    /// of per-worker-item deltas).
    pub fn merge(&mut self, other: &Rejections) {
        self.not_adjacent += other.not_adjacent;
        self.not_unary += other.not_unary;
        self.multiple_consumers += other.multiple_consumers;
        self.functionality_violated += other.functionality_violated;
        self.provider_violated += other.provider_violated;
        self.not_commutative += other.not_commutative;
        self.not_homologous += other.not_homologous;
        self.not_binary += other.not_binary;
        self.not_distributable += other.not_distributable;
        self.not_merged += other.not_merged;
        self.graph += other.graph;
    }

    /// Total rejections across all rules.
    pub fn total(&self) -> u64 {
        self.as_pairs().iter().map(|(_, v)| v).sum()
    }

    /// `(rule, count)` pairs in a fixed schema order.
    pub fn as_pairs(&self) -> [(&'static str, u64); 11] {
        [
            ("not_adjacent", self.not_adjacent),
            ("not_unary", self.not_unary),
            ("multiple_consumers", self.multiple_consumers),
            ("functionality_violated", self.functionality_violated),
            ("provider_violated", self.provider_violated),
            ("not_commutative", self.not_commutative),
            ("not_homologous", self.not_homologous),
            ("not_binary", self.not_binary),
            ("not_distributable", self.not_distributable),
            ("not_merged", self.not_merged),
            ("graph", self.graph),
        ]
    }
}

/// One timed phase of a search run (wall clock; runtime telemetry only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name (`"search"` for single-phase ES, the Fig. 7 phase names
    /// for HS/HS-Greedy).
    pub phase: &'static str,
    /// Wall-clock nanoseconds the phase took.
    pub nanos: u128,
}

/// A monotonic wall-clock span; [`Span::finish`] records it as a
/// [`PhaseSpan`] on the stats under construction.
#[derive(Debug)]
pub struct Span {
    phase: &'static str,
    started: Instant,
}

impl Span {
    /// Start timing `phase` now.
    pub fn start(phase: &'static str) -> Span {
        Span {
            phase,
            started: Instant::now(),
        }
    }

    /// Stop the span and append it to `stats`.
    pub fn finish(self, stats: &mut SearchStats) {
        stats.phases.push(PhaseSpan {
            phase: self.phase,
            nanos: self.started.elapsed().as_nanos(),
        });
    }
}

/// Uniform telemetry of one search run. All three algorithms (ES, HS,
/// HS-Greedy) populate the same schema; see the module docs for which
/// fields are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchStats {
    /// Algorithm name as used in the paper's tables.
    pub algorithm: &'static str,
    /// States evaluated (priced and fingerprinted), including the initial
    /// state and re-evaluations of known states.
    pub generated: u64,
    /// Evaluations whose fingerprint had already been seen this run.
    pub deduplicated: u64,
    /// Distinct states whose outgoing transitions were enumerated and
    /// applied (each fingerprint counted once, however often a phase
    /// revisits it).
    pub expanded: u64,
    /// Distinct generated states never expanded: dropped by a budget stop,
    /// a collection cap, or run termination. Derived at finish time as
    /// `generated − deduplicated − expanded`; an accounting bug that makes
    /// that subtraction underflow poisons the field to `u64::MAX` so
    /// [`SearchStats::reconciles`] fails loudly instead of hiding it.
    pub pruned: u64,
    /// Evaluations served by delta repricing + incremental rehash.
    pub repriced_delta: u64,
    /// Evaluations that priced the whole state from scratch.
    pub repriced_full: u64,
    /// ES: frontier size per BFS generation. HS/HS-Greedy: candidate-pool
    /// size at each phase boundary (after I, II, III, IV).
    pub frontier_sizes: Vec<usize>,
    /// Transition attempts rejected, by applicability rule. Includes
    /// speculative attempts (HS shift chains, stale greedy-sweep tails)
    /// because the workers evaluate them either way.
    pub rejections: Rejections,
    /// Beam search only: the configured frontier width `K`. `0` for the
    /// unbounded algorithms (ES, HS, HS-Greedy).
    pub beam_width: u64,
    /// Beam search only: states admitted to the visited set but dropped
    /// from the frontier by the per-generation top-K truncation. Always a
    /// subset of `pruned` — a truncated state was generated and never
    /// expanded.
    pub truncated_states: u64,
    /// Shard count of the sharded visited set (ES/beam), or `0` when the
    /// algorithm keeps a flat per-run set (HS/HS-Greedy). Fixed per
    /// algorithm, never derived from the thread count — deterministic.
    pub visited_shards: u64,
    /// Smallest per-shard occupancy when the run ended. Deterministic: the
    /// fingerprint → shard map depends only on the accepted state set.
    pub visited_shard_min: u64,
    /// Largest per-shard occupancy when the run ended (deterministic, as
    /// `visited_shard_min`).
    pub visited_shard_max: u64,
    /// Move-memo cache hits (runtime telemetry: racing workers may both
    /// miss the same key, so seq/par counts can differ).
    pub memo_hits: u64,
    /// Move-memo cache misses (runtime telemetry, as `memo_hits`).
    pub memo_misses: u64,
    /// Wall-clock per phase (runtime telemetry).
    pub phases: Vec<PhaseSpan>,
    /// Batches of work claimed per worker index (runtime telemetry: the
    /// claim cursor races under parallelism).
    pub worker_batches: Vec<u64>,
}

impl SearchStats {
    /// Empty stats for `algorithm`.
    pub fn new(algorithm: &'static str) -> SearchStats {
        SearchStats {
            algorithm,
            generated: 0,
            deduplicated: 0,
            expanded: 0,
            pruned: 0,
            repriced_delta: 0,
            repriced_full: 0,
            frontier_sizes: Vec::new(),
            rejections: Rejections::default(),
            beam_width: 0,
            truncated_states: 0,
            visited_shards: 0,
            visited_shard_min: 0,
            visited_shard_max: 0,
            memo_hits: 0,
            memo_misses: 0,
            phases: Vec::new(),
            worker_batches: Vec::new(),
        }
    }

    /// Does the state accounting add up
    /// (`generated == deduplicated + expanded + pruned`)?
    pub fn reconciles(&self) -> bool {
        self.deduplicated
            .checked_add(self.expanded)
            .and_then(|s| s.checked_add(self.pruned))
            .is_some_and(|sum| sum == self.generated)
    }

    /// Fraction of evaluations served by the delta path, in `[0, 1]`.
    pub fn delta_fraction(&self) -> f64 {
        let total = self.repriced_delta + self.repriced_full;
        if total == 0 {
            0.0
        } else {
            self.repriced_delta as f64 / total as f64
        }
    }

    /// Absorb another run's counters (used to aggregate a sweep). Frontier
    /// sizes, phases and worker batches are per-run shapes and are not
    /// carried over.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.generated += other.generated;
        self.deduplicated += other.deduplicated;
        self.expanded += other.expanded;
        self.pruned = self.pruned.saturating_add(other.pruned);
        self.repriced_delta += other.repriced_delta;
        self.repriced_full += other.repriced_full;
        self.rejections.merge(&other.rejections);
        // Truncations flow; width and shard occupancy are per-run shapes,
        // absorbed as high/low-water marks across the sweep.
        self.truncated_states += other.truncated_states;
        self.beam_width = self.beam_width.max(other.beam_width);
        if other.visited_shards > 0 {
            self.visited_shard_min = if self.visited_shards == 0 {
                other.visited_shard_min
            } else {
                self.visited_shard_min.min(other.visited_shard_min)
            };
            self.visited_shards = self.visited_shards.max(other.visited_shards);
            self.visited_shard_max = self.visited_shard_max.max(other.visited_shard_max);
        }
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
    }

    fn render(&self, include_runtime: bool) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str(&format!("  \"algorithm\": \"{}\",\n", self.algorithm));
        out.push_str(&format!(
            concat!(
                "  \"states\": {{\"generated\": {}, \"deduplicated\": {}, ",
                "\"expanded\": {}, \"pruned\": {}}},\n"
            ),
            self.generated, self.deduplicated, self.expanded, self.pruned
        ));
        out.push_str(&format!(
            "  \"evaluation\": {{\"delta\": {}, \"full\": {}}},\n",
            self.repriced_delta, self.repriced_full
        ));
        out.push_str(&format!(
            "  \"beam\": {{\"width\": {}, \"truncated_states\": {}}},\n",
            self.beam_width, self.truncated_states
        ));
        out.push_str(&format!(
            "  \"visited_shards\": {{\"count\": {}, \"min\": {}, \"max\": {}}},\n",
            self.visited_shards, self.visited_shard_min, self.visited_shard_max
        ));
        let rej: Vec<String> = self
            .rejections
            .as_pairs()
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        out.push_str(&format!(
            "  \"rejections\": {{{}, \"total\": {}}},\n",
            rej.join(", "),
            self.rejections.total()
        ));
        let fronts: Vec<String> = self.frontier_sizes.iter().map(usize::to_string).collect();
        out.push_str(&format!("  \"frontier_sizes\": [{}]", fronts.join(", ")));
        if include_runtime {
            out.push_str(",\n");
            out.push_str(&format!(
                "  \"memo\": {{\"hits\": {}, \"misses\": {}}},\n",
                self.memo_hits, self.memo_misses
            ));
            let phases: Vec<String> = self
                .phases
                .iter()
                .map(|p| format!("{{\"phase\": \"{}\", \"nanos\": {}}}", p.phase, p.nanos))
                .collect();
            out.push_str(&format!("  \"phases\": [{}],\n", phases.join(", ")));
            let batches: Vec<String> = self.worker_batches.iter().map(u64::to_string).collect();
            out.push_str(&format!("  \"worker_batches\": [{}]\n", batches.join(", ")));
        } else {
            out.push('\n');
        }
        out.push('}');
        out
    }

    /// The deterministic projection: every field here is byte-identical
    /// for any worker-thread count on the same search.
    pub fn counters_json(&self) -> String {
        self.render(false)
    }

    /// Full machine-readable rendering, including the runtime-telemetry
    /// section (wall-clock spans, memo hit/miss, worker batch counts).
    pub fn to_json(&self) -> String {
        self.render(true)
    }
}

/// Run-local counter collector the search algorithms feed. Only the
/// coordinator thread touches it; workers hand their deltas back as values
/// through `Threads::map`.
#[derive(Debug)]
pub(crate) struct Collector {
    stats: SearchStats,
    /// Fingerprints already counted as expanded — HS phases revisit states,
    /// and `expanded` counts distinct states only.
    expanded_fps: HashSet<u128>,
}

impl Collector {
    pub(crate) fn new(algorithm: &'static str) -> Collector {
        Collector {
            stats: SearchStats::new(algorithm),
            expanded_fps: HashSet::new(),
        }
    }

    /// One state evaluation (pricing + fingerprint), delta or full.
    pub(crate) fn evaluated(&mut self, delta: bool) {
        self.stats.generated += 1;
        if delta {
            self.stats.repriced_delta += 1;
        } else {
            self.stats.repriced_full += 1;
        }
    }

    /// The evaluation hit an already-seen fingerprint.
    pub(crate) fn deduplicated(&mut self) {
        self.stats.deduplicated += 1;
    }

    /// The state with fingerprint `fp` had its moves enumerated and
    /// applied. Counted once per distinct fingerprint.
    pub(crate) fn expanded(&mut self, fp: u128) {
        if self.expanded_fps.insert(fp) {
            self.stats.expanded += 1;
        }
    }

    /// Record a frontier / candidate-pool size.
    pub(crate) fn frontier(&mut self, len: usize) {
        self.stats.frontier_sizes.push(len);
    }

    /// Merge a worker item's rejection deltas.
    pub(crate) fn rejections(&mut self, rej: &Rejections) {
        self.stats.rejections.merge(rej);
    }

    /// Record move-memo effectiveness (runtime telemetry).
    pub(crate) fn memo(&mut self, hits: u64, misses: u64) {
        self.stats.memo_hits = hits;
        self.stats.memo_misses = misses;
    }

    /// Record the beam's configured frontier width.
    pub(crate) fn beam_width(&mut self, width: u64) {
        self.stats.beam_width = width;
    }

    /// Count `n` states dropped from a frontier by beam truncation.
    pub(crate) fn truncated(&mut self, n: u64) {
        self.stats.truncated_states += n;
    }

    /// Record the sharded visited set's shape at the end of the run.
    pub(crate) fn visited_shards(&mut self, count: u64, min: u64, max: u64) {
        self.stats.visited_shards = count;
        self.stats.visited_shard_min = min;
        self.stats.visited_shard_max = max;
    }

    /// Append a finished phase span.
    pub(crate) fn span(&mut self, span: Span) {
        span.finish(&mut self.stats);
    }

    /// Record the per-worker batch counts (runtime telemetry).
    pub(crate) fn worker_batches(&mut self, batches: Vec<u64>) {
        self.stats.worker_batches = batches;
    }

    /// Close the run: derive `pruned` from the identity
    /// `generated = deduplicated + expanded + pruned`. An underflow (an
    /// algorithm reported more dedups/expansions than evaluations) poisons
    /// `pruned` so [`SearchStats::reconciles`] fails.
    pub(crate) fn finish(mut self) -> SearchStats {
        self.stats.pruned = self
            .stats
            .generated
            .checked_sub(self.stats.deduplicated + self.stats.expanded)
            .unwrap_or(u64::MAX);
        self.stats
    }
}

/// Streaming-execution counters populated by the engine's `exec`/`pool`
/// subsystem (batch runtime, buffer pool, shared intermediate cache). They
/// live here beside [`SearchStats`] so every trace artifact the workspace
/// emits shares one zero-dependency home and one JSON idiom.
///
/// Page counters follow the pool's ledger: `pages_appended` is every page
/// admitted into the pool, `pages_spilled` counts eviction *writes* to the
/// heap file, `pages_reloaded` counts faults that read a spilled page back,
/// and `evictions` counts resident pages dropped (with or without a write —
/// a clean page already on disk is dropped for free). Cache counters are
/// per-run deltas of the shared intermediate-result cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Batches emitted by operators of the streaming pipeline.
    pub batches: u64,
    /// Pages admitted into the buffer pool.
    pub pages_appended: u64,
    /// Pages written to the spill heap file by eviction.
    pub pages_spilled: u64,
    /// Spilled pages faulted back into memory.
    pub pages_reloaded: u64,
    /// Resident pages dropped to stay inside the frame budget.
    pub evictions: u64,
    /// High-water mark of resident frames.
    pub peak_resident_frames: u64,
    /// Shared-cache lookups that found a previously computed intermediate.
    pub cache_hits: u64,
    /// Shared-cache lookups that missed.
    pub cache_misses: u64,
    /// Intermediate results admitted into the shared cache.
    pub cache_insertions: u64,
    /// Rows routed to each worker index by the partition-parallel
    /// exchanges (the execution-plane counterpart of
    /// [`SearchStats::worker_batches`]). Empty for sequential runs. The
    /// routing hash is fixed-key, so the split is deterministic for a
    /// given thread count.
    pub worker_rows: Vec<u64>,
    /// Pages written while staging inter-segment partition sets through
    /// the buffer pool (a subset of `pages_appended`). Zero for
    /// sequential runs and for the legacy round-synchronous coordinator,
    /// which holds partition sets in memory instead.
    pub pages_staged: u64,
    /// Pipelined segment tasks executed by the partition-parallel
    /// branch scheduler.
    pub pipeline_segments: u64,
    /// High-water mark of batches resident in any one segment channel.
    /// Runtime telemetry: bounded by the configured channel capacity but
    /// dependent on scheduling, unlike the deterministic row counters.
    pub channel_high_water: u64,
    /// High-water mark of concurrently in-flight scheduler tasks —
    /// evidence that independent DAG branches actually overlapped.
    pub peak_inflight_tasks: u64,
    /// Batches each worker index processed through its segment links,
    /// absorbed element-wise in worker-index order.
    pub worker_busy: Vec<u64>,
    /// Times the segment feeder blocked sending to each worker's bounded
    /// channel (backpressure from a slow worker). Runtime telemetry.
    pub worker_send_blocked: Vec<u64>,
    /// Times each worker blocked waiting for its channel to fill
    /// (starvation behind the feeder). Runtime telemetry.
    pub worker_recv_blocked: Vec<u64>,
}

impl ExecCounters {
    /// Did this run write at least one page to disk?
    pub fn spilled(&self) -> bool {
        self.pages_spilled > 0
    }

    /// Sum another run's counters into `self` (peak frames take the max —
    /// it is a high-water mark, not a flow).
    pub fn absorb(&mut self, other: &ExecCounters) {
        self.batches += other.batches;
        self.pages_appended += other.pages_appended;
        self.pages_spilled += other.pages_spilled;
        self.pages_reloaded += other.pages_reloaded;
        self.evictions += other.evictions;
        self.peak_resident_frames = self.peak_resident_frames.max(other.peak_resident_frames);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_insertions += other.cache_insertions;
        self.pages_staged += other.pages_staged;
        self.pipeline_segments += other.pipeline_segments;
        self.channel_high_water = self.channel_high_water.max(other.channel_high_water);
        self.peak_inflight_tasks = self.peak_inflight_tasks.max(other.peak_inflight_tasks);
        fn absorb_lanes(mine: &mut Vec<u64>, theirs: &[u64]) {
            if mine.len() < theirs.len() {
                mine.resize(theirs.len(), 0);
            }
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
        absorb_lanes(&mut self.worker_rows, &other.worker_rows);
        absorb_lanes(&mut self.worker_busy, &other.worker_busy);
        absorb_lanes(&mut self.worker_send_blocked, &other.worker_send_blocked);
        absorb_lanes(&mut self.worker_recv_blocked, &other.worker_recv_blocked);
    }

    /// Machine-readable rendering, same idiom as [`SearchStats::to_json`].
    pub fn to_json(&self) -> String {
        fn lanes(v: &[u64]) -> String {
            v.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
        }
        format!(
            concat!(
                "{{\n",
                "  \"batches\": {},\n",
                "  \"pool\": {{\"pages_appended\": {}, \"pages_spilled\": {}, ",
                "\"pages_reloaded\": {}, \"evictions\": {}, ",
                "\"peak_resident_frames\": {}}},\n",
                "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"insertions\": {}}},\n",
                "  \"pipeline\": {{\"segments\": {}, \"pages_staged\": {}, ",
                "\"channel_high_water\": {}, \"peak_inflight_tasks\": {}, ",
                "\"worker_busy\": [{}], \"worker_send_blocked\": [{}], ",
                "\"worker_recv_blocked\": [{}]}},\n",
                "  \"worker_rows\": [{}]\n",
                "}}"
            ),
            self.batches,
            self.pages_appended,
            self.pages_spilled,
            self.pages_reloaded,
            self.evictions,
            self.peak_resident_frames,
            self.cache_hits,
            self.cache_misses,
            self.cache_insertions,
            self.pipeline_segments,
            self.pages_staged,
            self.channel_high_water,
            self.peak_inflight_tasks,
            lanes(&self.worker_busy),
            lanes(&self.worker_send_blocked),
            lanes(&self.worker_recv_blocked),
            lanes(&self.worker_rows),
        )
    }
}

/// A coarse-grained event emitted by a search run. Events fire at phase
/// and generation boundaries only — never per state — so an enabled sink
/// costs O(generations + phases), not O(states).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A phase began.
    PhaseStarted {
        /// Algorithm name.
        algorithm: &'static str,
        /// Phase name.
        phase: &'static str,
    },
    /// A phase ended.
    PhaseFinished {
        /// Algorithm name.
        algorithm: &'static str,
        /// Phase name.
        phase: &'static str,
        /// Best cost when the phase ended.
        best_cost: f64,
        /// Distinct states visited so far.
        visited: usize,
    },
    /// ES expanded one BFS generation.
    Generation {
        /// Generation index (0 = the initial state alone).
        index: usize,
        /// Frontier size entering the generation.
        frontier: usize,
        /// Distinct states visited so far.
        visited: usize,
    },
    /// The run finished.
    Finished {
        /// Algorithm name.
        algorithm: &'static str,
        /// Final best cost.
        best_cost: f64,
        /// Distinct states visited.
        visited: usize,
        /// Did the budget run out?
        budget_exhausted: bool,
    },
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::PhaseStarted { algorithm, phase } => {
                write!(f, "[{algorithm}] phase {phase} started")
            }
            TraceEvent::PhaseFinished {
                algorithm,
                phase,
                best_cost,
                visited,
            } => write!(
                f,
                "[{algorithm}] phase {phase} finished: best {best_cost:.1}, {visited} states"
            ),
            TraceEvent::Generation {
                index,
                frontier,
                visited,
            } => write!(
                f,
                "generation {index}: frontier {frontier}, {visited} states visited"
            ),
            TraceEvent::Finished {
                algorithm,
                best_cost,
                visited,
                budget_exhausted,
            } => write!(
                f,
                "[{algorithm}] finished: best {best_cost:.1}, {visited} states{}",
                if *budget_exhausted {
                    " (budget exhausted)"
                } else {
                    ""
                }
            ),
        }
    }
}

/// A destination for [`TraceEvent`]s. Implementations must be cheap and
/// non-blocking-ish: events fire from the coordinator thread at coarse
/// boundaries while the search runs.
pub trait TraceSink: Sync {
    /// Observe one event.
    fn event(&self, event: TraceEvent);
}

/// The default sink: discards everything. Searches run with this unless
/// the caller opts into tracing via `Optimizer::run_traced`, so the
/// disabled path costs one virtual call per phase/generation and nothing
/// per state.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn event(&self, _event: TraceEvent) {}
}

/// A bounded in-memory event ring: keeps the most recent `capacity`
/// events, dropping the oldest. `Mutex`-guarded because phases of a run
/// may interleave with a consumer draining from another thread.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl RingSink {
    /// A ring keeping the last `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Take every buffered event, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.drain(..).collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingSink {
    fn event(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    #[test]
    fn rejections_record_by_rule_and_total() {
        let mut r = Rejections::default();
        r.record(&TransitionError::FunctionalityViolated {
            node: NodeId(1),
            detail: "x".into(),
        });
        r.record(&TransitionError::FunctionalityViolated {
            node: NodeId(2),
            detail: "y".into(),
        });
        r.record(&TransitionError::NotAdjacent(NodeId(1), NodeId(2)));
        assert_eq!(r.functionality_violated, 2);
        assert_eq!(r.not_adjacent, 1);
        assert_eq!(r.total(), 3);
        let mut other = Rejections::default();
        other.record(&TransitionError::NotBinary(NodeId(3)));
        r.merge(&other);
        assert_eq!(r.total(), 4);
        assert_eq!(r.not_binary, 1);
    }

    #[test]
    fn collector_accounting_reconciles() {
        let mut c = Collector::new("ES");
        c.evaluated(false); // initial state (full)
        c.expanded(1);
        for fp in [2u128, 3, 2] {
            c.evaluated(true);
            if fp == 2 && c.expanded_fps.contains(&2) {
                // second sighting of fp 2
            }
            let _ = fp;
        }
        c.deduplicated(); // the repeated fp
        c.expanded(2);
        c.expanded(2); // revisit: must not double count
        let stats = c.finish();
        assert_eq!(stats.generated, 4);
        assert_eq!(stats.deduplicated, 1);
        assert_eq!(stats.expanded, 2);
        assert_eq!(stats.pruned, 1); // fp 3 was generated, never expanded
        assert!(stats.reconciles());
        assert_eq!(stats.repriced_delta, 3);
        assert_eq!(stats.repriced_full, 1);
    }

    #[test]
    fn accounting_underflow_poisons_pruned() {
        let mut c = Collector::new("HS");
        c.evaluated(true);
        c.deduplicated();
        c.deduplicated(); // one more dedup than evaluations: a bug
        let stats = c.finish();
        assert_eq!(stats.pruned, u64::MAX);
        assert!(!stats.reconciles());
    }

    #[test]
    fn counters_json_is_stable_and_excludes_runtime_fields() {
        let mut c = Collector::new("HS-Greedy");
        c.evaluated(true);
        c.frontier(7);
        c.memo(3, 4);
        c.span(Span::start("I swaps"));
        let stats = c.finish();
        let det = stats.counters_json();
        assert!(det.contains("\"algorithm\": \"HS-Greedy\""));
        assert!(det.contains("\"frontier_sizes\": [7]"));
        assert!(!det.contains("nanos"), "{det}");
        assert!(!det.contains("memo"), "{det}");
        assert!(!det.contains("worker_batches"), "{det}");
        let full = stats.to_json();
        assert!(full.contains("\"memo\": {\"hits\": 3, \"misses\": 4}"));
        assert!(full.contains("\"phase\": \"I swaps\""));
        assert!(full.contains("worker_batches"));
    }

    #[test]
    fn ring_sink_caps_and_drains_in_order() {
        let sink = RingSink::new(2);
        assert!(sink.is_empty());
        for i in 0..4 {
            sink.event(TraceEvent::Generation {
                index: i,
                frontier: 1,
                visited: i,
            });
        }
        assert_eq!(sink.len(), 2);
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert!(
            matches!(events[0], TraceEvent::Generation { index: 2, .. }),
            "{events:?}"
        );
        assert!(matches!(events[1], TraceEvent::Generation { index: 3, .. }));
        assert!(sink.is_empty());
    }

    #[test]
    fn events_render_human_lines() {
        let e = TraceEvent::Finished {
            algorithm: "ES",
            best_cost: 42.5,
            visited: 10,
            budget_exhausted: true,
        };
        let s = e.to_string();
        assert!(s.contains("ES"), "{s}");
        assert!(s.contains("budget exhausted"), "{s}");
        let _ = NoopSink; // the default sink is a unit type
        NoopSink.event(e);
    }

    #[test]
    fn beam_and_shard_counters_render_deterministically() {
        let mut c = Collector::new("Beam");
        c.evaluated(true);
        c.beam_width(8);
        c.truncated(3);
        c.truncated(2);
        c.visited_shards(16, 1, 9);
        let stats = c.finish();
        let det = stats.counters_json();
        assert!(
            det.contains("\"beam\": {\"width\": 8, \"truncated_states\": 5}"),
            "{det}"
        );
        assert!(
            det.contains("\"visited_shards\": {\"count\": 16, \"min\": 1, \"max\": 9}"),
            "{det}"
        );
        // Unbounded algorithms render the same schema with zeros.
        let plain = SearchStats::new("HS");
        assert!(
            plain
                .counters_json()
                .contains("\"beam\": {\"width\": 0, \"truncated_states\": 0}"),
            "{}",
            plain.counters_json()
        );
    }

    #[test]
    fn absorb_takes_shard_marks_and_sums_truncations() {
        let mut a = SearchStats::new("Beam");
        a.beam_width = 8;
        a.truncated_states = 4;
        a.visited_shards = 16;
        a.visited_shard_min = 2;
        a.visited_shard_max = 7;
        let mut b = SearchStats::new("Beam");
        b.beam_width = 8;
        b.truncated_states = 6;
        b.visited_shards = 16;
        b.visited_shard_min = 1;
        b.visited_shard_max = 11;
        a.absorb(&b);
        assert_eq!(a.truncated_states, 10);
        assert_eq!(a.beam_width, 8);
        assert_eq!(a.visited_shards, 16);
        assert_eq!(a.visited_shard_min, 1);
        assert_eq!(a.visited_shard_max, 11);
        // Absorbing a shardless run (HS) must not zero the marks…
        a.absorb(&SearchStats::new("HS"));
        assert_eq!(a.visited_shard_min, 1);
        // …and a shardless aggregate takes the first shard shape whole.
        let mut agg = SearchStats::new("Beam");
        agg.absorb(&b);
        assert_eq!(agg.visited_shard_min, 1);
        assert_eq!(agg.visited_shard_max, 11);
    }

    #[test]
    fn absorb_sums_counters() {
        let mut a = SearchStats::new("ES");
        a.generated = 10;
        a.rejections.not_commutative = 2;
        let mut b = SearchStats::new("ES");
        b.generated = 5;
        b.repriced_delta = 4;
        b.rejections.not_commutative = 1;
        a.absorb(&b);
        assert_eq!(a.generated, 15);
        assert_eq!(a.repriced_delta, 4);
        assert_eq!(a.rejections.not_commutative, 3);
    }

    #[test]
    fn exec_counters_absorb_and_render() {
        let mut a = ExecCounters {
            batches: 10,
            pages_appended: 4,
            pages_spilled: 2,
            pages_reloaded: 1,
            evictions: 3,
            peak_resident_frames: 8,
            cache_hits: 1,
            cache_misses: 2,
            cache_insertions: 2,
            worker_rows: vec![3, 4],
            pages_staged: 2,
            pipeline_segments: 3,
            channel_high_water: 2,
            peak_inflight_tasks: 1,
            worker_busy: vec![7, 9],
            worker_send_blocked: vec![0, 1],
            worker_recv_blocked: vec![2, 0],
        };
        assert!(a.spilled());
        let b = ExecCounters {
            batches: 5,
            peak_resident_frames: 16,
            worker_rows: vec![1, 1, 1],
            pages_staged: 1,
            channel_high_water: 4,
            peak_inflight_tasks: 3,
            worker_busy: vec![1],
            ..ExecCounters::default()
        };
        assert!(!b.spilled());
        a.absorb(&b);
        assert_eq!(a.batches, 15);
        assert_eq!(a.pages_spilled, 2);
        // Peak is a high-water mark: absorbed as a max, not a sum.
        assert_eq!(a.peak_resident_frames, 16);
        // Worker splits absorb element-wise in worker-index order.
        assert_eq!(a.worker_rows, vec![4, 5, 1]);
        // Pipeline telemetry: flows sum, high-water marks take the max.
        assert_eq!(a.pages_staged, 3);
        assert_eq!(a.pipeline_segments, 3);
        assert_eq!(a.channel_high_water, 4);
        assert_eq!(a.peak_inflight_tasks, 3);
        assert_eq!(a.worker_busy, vec![8, 9]);
        let json = a.to_json();
        assert!(json.contains("\"pages_spilled\": 2"), "{json}");
        assert!(json.contains("\"peak_resident_frames\": 16"), "{json}");
        assert!(json.contains("\"hits\": 1"), "{json}");
        assert!(json.contains("\"worker_rows\": [4, 5, 1]"), "{json}");
        assert!(json.contains("\"pages_staged\": 3"), "{json}");
        assert!(json.contains("\"channel_high_water\": 4"), "{json}");
        assert!(json.contains("\"worker_busy\": [8, 9]"), "{json}");
    }

    #[test]
    fn delta_fraction_is_safe_on_empty() {
        let s = SearchStats::new("ES");
        assert_eq!(s.delta_fraction(), 0.0);
        let mut s2 = SearchStats::new("ES");
        s2.repriced_delta = 3;
        s2.repriced_full = 1;
        assert!((s2.delta_fraction() - 0.75).abs() < 1e-12);
    }
}
