//! Cost models (§2.2) and the semi-incremental state costing of §4.1.
//!
//! The total cost of a state is the sum of its activities' costs,
//! `C(S) = Σ c(aᵢ)`, where each activity's cost depends on the rows it
//! processes — which in turn depends on its *position* in the graph (rows
//! shrink as selective activities move toward the sources). The framework
//! "is not in particular dependent on the cost model chosen": [`CostModel`]
//! is a trait, and [`RowCountModel`] is the paper's simple processed-rows
//! model with the classic per-operator formulas (linear scans for row-wise
//! operators, `n·log₂n` for sort/lookup-based ones, as in the Fig. 4
//! example).

mod row_count;

pub use row_count::{LinearModel, RowCountModel};

use std::collections::BTreeMap;

use crate::activity::Activity;
use crate::error::Result;
use crate::graph::{Node, NodeId};
use crate::schema_gen;
use crate::workflow::{binary_cardinality, Workflow};

/// A cost model: prices one activity given the rows arriving on each of its
/// input ports.
///
/// `Sync` is a supertrait so the search algorithms can price candidate
/// states from worker threads; models are expected to be stateless (all
/// in-repo models are plain parameter structs).
pub trait CostModel: Sync {
    /// Model name (for reports and benches).
    fn name(&self) -> &str;

    /// Cost of one activity processing `input_rows` (one entry per port).
    fn activity_cost(&self, activity: &Activity, input_rows: &[f64]) -> f64;

    /// Total cost of a state: propagate row counts from the sources and sum
    /// the per-activity costs. This is the search hot path, so it uses a
    /// flat slot-indexed row table instead of building a [`CostReport`].
    fn cost(&self, wf: &Workflow) -> Result<f64> {
        let graph = wf.graph();
        let order = graph.topo_order()?;
        let cap = order
            .iter()
            .map(|id| id.0 as usize)
            .max()
            .map_or(0, |m| m + 1);
        let mut rows: Vec<f64> = vec![0.0; cap];
        let mut total = 0.0;
        for &id in &order {
            let out_rows = match graph.node(id)? {
                Node::Recordset(r) => match graph.provider(id, 0)? {
                    None => r.row_estimate,
                    Some(p) => rows[p.0 as usize],
                },
                Node::Activity(a) => {
                    let providers = graph.providers(id)?;
                    let in0 = providers
                        .first()
                        .copied()
                        .flatten()
                        .map(|p| rows[p.0 as usize])
                        .unwrap_or(0.0);
                    match &a.op {
                        crate::activity::Op::Binary(b) => {
                            let in1 = providers
                                .get(1)
                                .copied()
                                .flatten()
                                .map(|p| rows[p.0 as usize])
                                .unwrap_or(0.0);
                            total += self.activity_cost(a, &[in0, in1]);
                            binary_cardinality(b, in0, in1)
                        }
                        _ => {
                            total += self.activity_cost(a, &[in0]);
                            in0 * a.selectivity()
                        }
                    }
                }
            };
            rows[id.0 as usize] = out_rows;
        }
        Ok(total)
    }

    /// Full per-node cost breakdown.
    fn report(&self, wf: &Workflow) -> Result<CostReport> {
        let order = wf.graph().topo_order()?;
        let mut rows: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut per_node: BTreeMap<NodeId, f64> = BTreeMap::new();
        for &id in &order {
            compute_node(self, wf, id, &mut rows, &mut per_node)?;
        }
        Ok(CostReport {
            total: per_node.values().sum(),
            per_node,
            rows,
        })
    }

    /// Whether [`CostModel::price`] / [`CostModel::reprice_from`] agree
    /// with this model's notion of state cost. The default (generic
    /// per-activity summation) holds for any model whose `cost` is the sum
    /// of `activity_cost` over the propagated row counts; a model that
    /// overrides `cost` with something richer (e.g. the physical planner)
    /// must return `false` so the searches fall back to full `cost` calls.
    fn supports_delta(&self) -> bool {
        true
    }

    /// Full slot-indexed pricing of a state — the from-scratch twin of
    /// [`CostModel::reprice_from`]. Same totals as [`CostModel::cost`] up to
    /// summation order: `price` totals are summed in *slot* order over the
    /// live graph so that a delta reprice (which reuses parent values
    /// bit-for-bit) reproduces the exact same `f64`, keeping comparisons
    /// stable no matter how a state was reached.
    fn price(&self, wf: &Workflow) -> Result<CostVec> {
        let graph = wf.graph();
        let order = graph.topo_order()?;
        let mut cv = CostVec::zeroed(graph.slot_capacity());
        for &id in &order {
            price_node(self, wf, id, &mut cv)?;
        }
        cv.total = cv.sum_live(wf);
        Ok(cv)
    }

    /// Delta costing (§4.1, tentpole form): given the parent state's
    /// [`CostVec`] and the *dirty* node list — [`schema_gen::downstream_of`]
    /// of the transition's affected nodes, evaluated on the successor graph
    /// — recompute rows and cost only along that list. Untouched nodes keep
    /// the parent's values verbatim, which is exact (not approximate):
    /// every node's rows/cost is a pure function of its providers', and
    /// transitions report `affected` sets whose downstream closure covers
    /// every node whose providers changed, including freed arena slots that
    /// a FAC/DIS re-populated.
    fn reprice_from(
        &self,
        wf: &Workflow,
        parent: &CostVec,
        dirty_roots: &[NodeId],
    ) -> Result<CostVec> {
        let dirty = schema_gen::downstream_of(wf.graph(), dirty_roots)?;
        self.reprice_along(wf, parent, &dirty)
    }

    /// [`CostModel::reprice_from`] with the dirty list precomputed — the
    /// search hot path, which shares one `downstream_of` walk between
    /// repricing and incremental fingerprinting.
    fn reprice_along(&self, wf: &Workflow, parent: &CostVec, dirty: &[NodeId]) -> Result<CostVec> {
        let graph = wf.graph();
        let mut cv = parent.clone();
        cv.rows.resize(graph.slot_capacity(), 0.0);
        cv.node_cost.resize(graph.slot_capacity(), 0.0);
        for &id in dirty {
            price_node(self, wf, id, &mut cv)?;
        }
        cv.total = cv.sum_live(wf);
        Ok(cv)
    }

    /// Semi-incremental costing (§4.1): given the report of a previous,
    /// structurally similar state and the nodes a transition touched,
    /// recompute only the affected nodes and everything downstream of them;
    /// untouched nodes keep their previous cost. Node ids of untouched nodes
    /// are stable across transitions, which is what makes this sound.
    fn report_incremental(
        &self,
        wf: &Workflow,
        previous: &CostReport,
        affected: &[NodeId],
    ) -> Result<CostReport> {
        let graph = wf.graph();
        let dirty = schema_gen::downstream_of(graph, affected)?;
        let mut rows = BTreeMap::new();
        let mut per_node = BTreeMap::new();
        // Keep previous values for clean, still-live nodes.
        for (&id, &r) in &previous.rows {
            if graph.contains(id) && !dirty.contains(&id) {
                rows.insert(id, r);
                if let Some(&c) = previous.per_node.get(&id) {
                    per_node.insert(id, c);
                }
            }
        }
        // Recompute dirty nodes in topological order; also fill any node the
        // previous report never saw (fresh nodes from FAC/DIS).
        for &id in &graph.topo_order()? {
            if !rows.contains_key(&id) {
                compute_node(self, wf, id, &mut rows, &mut per_node)?;
            }
        }
        Ok(CostReport {
            total: per_node.values().sum(),
            per_node,
            rows,
        })
    }
}

/// Price one node into the flat tables: rows out of the node, plus its
/// activity cost. Recordsets are explicitly priced at 0.0 — a reused arena
/// slot may have held an activity in the parent state, and its stale cost
/// must not leak into the slot-order total.
fn price_node<M: CostModel + ?Sized>(
    model: &M,
    wf: &Workflow,
    id: NodeId,
    cv: &mut CostVec,
) -> Result<()> {
    let graph = wf.graph();
    let slot = id.0 as usize;
    let out_rows = match graph.node(id)? {
        Node::Recordset(r) => {
            cv.node_cost[slot] = 0.0;
            match graph.provider(id, 0)? {
                None => r.row_estimate,
                Some(p) => cv.rows[p.0 as usize],
            }
        }
        Node::Activity(a) => {
            let providers = graph.providers(id)?;
            let in0 = providers
                .first()
                .copied()
                .flatten()
                .map(|p| cv.rows[p.0 as usize])
                .unwrap_or(0.0);
            match &a.op {
                crate::activity::Op::Binary(b) => {
                    let in1 = providers
                        .get(1)
                        .copied()
                        .flatten()
                        .map(|p| cv.rows[p.0 as usize])
                        .unwrap_or(0.0);
                    cv.node_cost[slot] = model.activity_cost(a, &[in0, in1]);
                    binary_cardinality(b, in0, in1)
                }
                _ => {
                    cv.node_cost[slot] = model.activity_cost(a, &[in0]);
                    in0 * a.selectivity()
                }
            }
        }
    };
    cv.rows[slot] = out_rows;
    Ok(())
}

/// Flat, slot-indexed pricing of a state — the delta-costing companion of
/// [`CostReport`]. Indexed by arena slot; dead slots carry stale values
/// that are never read (only live providers are consulted, and the total
/// sums live activities only).
#[derive(Debug, Clone, PartialEq)]
pub struct CostVec {
    /// Total state cost `C(S)`, summed over live activities in slot order.
    pub total: f64,
    rows: Vec<f64>,
    node_cost: Vec<f64>,
}

impl CostVec {
    fn zeroed(cap: usize) -> CostVec {
        CostVec {
            total: 0.0,
            rows: vec![0.0; cap],
            node_cost: vec![0.0; cap],
        }
    }

    /// Rows flowing out of `id`.
    ///
    /// An id beyond this vec's slot capacity was never priced by it —
    /// almost always a node id from a *different* state's arena. Release
    /// builds keep the historical lenient `0.0` (callers aggregate over
    /// live nodes and a dead slot contributes nothing); debug builds fail
    /// hard so the mixed-up arena is caught at the source.
    pub fn rows_out(&self, id: NodeId) -> f64 {
        let slot = id.0 as usize;
        debug_assert!(
            slot < self.rows.len(),
            "rows_out({id}): slot {slot} outside capacity {} — node from another arena?",
            self.rows.len()
        );
        self.rows.get(slot).copied().unwrap_or(0.0)
    }

    /// Cost charged to `id` (0.0 for recordsets). Same out-of-range policy
    /// as [`CostVec::rows_out`]: lenient in release, hard error in debug.
    pub fn node_cost(&self, id: NodeId) -> f64 {
        let slot = id.0 as usize;
        debug_assert!(
            slot < self.node_cost.len(),
            "node_cost({id}): slot {slot} outside capacity {} — node from another arena?",
            self.node_cost.len()
        );
        self.node_cost.get(slot).copied().unwrap_or(0.0)
    }

    /// Slot-order sum over the live graph. Both `price` and `reprice_along`
    /// finish with this, so a delta-repriced state and a from-scratch one
    /// produce bit-identical totals (same addends, same order).
    fn sum_live(&self, wf: &Workflow) -> f64 {
        let mut total = 0.0;
        for (id, node) in wf.graph().iter() {
            if matches!(node, Node::Activity(_)) {
                total += self.node_cost[id.0 as usize];
            }
        }
        total
    }
}

fn compute_node<M: CostModel + ?Sized>(
    model: &M,
    wf: &Workflow,
    id: NodeId,
    rows: &mut BTreeMap<NodeId, f64>,
    per_node: &mut BTreeMap<NodeId, f64>,
) -> Result<()> {
    let graph = wf.graph();
    let out_rows = match graph.node(id)? {
        Node::Recordset(r) => match graph.provider(id, 0)? {
            None => r.row_estimate,
            Some(p) => rows[&p],
        },
        Node::Activity(a) => {
            let inputs: Vec<f64> = graph
                .providers(id)?
                .iter()
                .map(|p| p.map(|p| rows[&p]).unwrap_or(0.0))
                .collect();
            per_node.insert(id, model.activity_cost(a, &inputs));
            match &a.op {
                crate::activity::Op::Binary(b) => binary_cardinality(b, inputs[0], inputs[1]),
                _ => inputs[0] * a.selectivity(),
            }
        }
    };
    rows.insert(id, out_rows);
    Ok(())
}

/// Per-node cost breakdown of a state.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Total state cost `C(S)`.
    pub total: f64,
    /// Cost per activity node.
    pub per_node: BTreeMap<NodeId, f64>,
    /// Estimated rows flowing out of every node.
    pub rows: BTreeMap<NodeId, f64>,
}

impl CostReport {
    /// Cost of one node (0 for recordsets).
    pub fn node_cost(&self, id: NodeId) -> f64 {
        self.per_node.get(&id).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{BinaryOp, UnaryOp};
    use crate::workflow::WorkflowBuilder;

    fn chain() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 1000.0);
        let f = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.5),
            s,
        );
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), f);
        b.target("T", Schema::of(["sk", "v"]), sk);
        b.build().unwrap()
    }

    #[test]
    fn report_sums_activity_costs() {
        let wf = chain();
        let m = RowCountModel::default();
        let rep = m.report(&wf).unwrap();
        // σ: 1000; SK: 500·log2(500).
        let expected = 1000.0 + 500.0 * (500.0_f64).log2();
        assert!((rep.total - expected).abs() < 1e-6, "{}", rep.total);
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let wf = chain();
        let m = RowCountModel::default();
        let full = m.report(&wf).unwrap();
        // Pretend the filter changed: recompute downstream of it.
        let filter = wf.activities().unwrap()[0];
        let inc = m.report_incremental(&wf, &full, &[filter]).unwrap();
        assert!((inc.total - full.total).abs() < 1e-9);
        assert_eq!(inc.per_node, full.per_node);
    }

    #[test]
    fn incremental_matches_full_across_a_transition() {
        // The real contract: previous report comes from the pre-transition
        // state; the successor re-prices only downstream of the affected
        // nodes.
        use crate::transition::{Swap, Transition};
        let m = RowCountModel::default();
        let wf = chain();
        let prev = m.report(&wf).unwrap();
        let acts = wf.activities().unwrap();
        let (f, sk) = (acts[0], acts[1]);
        let t = Swap::new(f, sk);
        let next = t.apply(&wf).unwrap();
        let inc = m
            .report_incremental(&next, &prev, &t.affected(&wf))
            .unwrap();
        let full = m.report(&next).unwrap();
        assert!((inc.total - full.total).abs() < 1e-9);
        assert_eq!(inc.per_node, full.per_node);
        assert_eq!(inc.rows, full.rows);
    }

    #[test]
    fn incremental_matches_full_across_distribute() {
        // Distribute splices clones *upstream* of the binary and may reuse
        // freed arena slots — the regression this test pins down.
        use crate::transition::{Distribute, Transition};
        let m = RowCountModel::default();
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 64.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 32.0);
        let u = b.binary("U", crate::semantics::BinaryOp::Union, s1, s2);
        let sel = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.5),
            u,
        );
        b.target("T", Schema::of(["k", "v"]), sel);
        let wf = b.build().unwrap();
        let prev = m.report(&wf).unwrap();
        let t = Distribute::new(u, sel);
        let next = t.apply(&wf).unwrap();
        let inc = m
            .report_incremental(&next, &prev, &t.affected(&wf))
            .unwrap();
        let full = m.report(&next).unwrap();
        assert!((inc.total - full.total).abs() < 1e-9);
        assert_eq!(inc.per_node, full.per_node);
        assert_eq!(inc.rows, full.rows);
    }

    #[test]
    fn every_live_node_of_a_priced_state_has_a_slot() {
        // Property: however a state was reached — from-scratch pricing or a
        // chain of delta reprices across transitions that free and reuse
        // arena slots — every live node of the priced workflow answers
        // `rows_out`/`node_cost` from a real slot (the accessors' lenient
        // out-of-range fallback is never taken), and the per-node costs
        // agree with a from-scratch report.
        use crate::opt::MoveMemo;
        use crate::rng::Rng;
        let m = RowCountModel::default();
        let memo = MoveMemo::new();
        for seed in 0..8u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let mut b = WorkflowBuilder::new();
            let s1 = b.source("S1", Schema::of(["k", "v"]), 64.0);
            let s2 = b.source("S2", Schema::of(["k", "v"]), 32.0);
            let u = b.binary("U", BinaryOp::Union, s1, s2);
            let sel = b.unary(
                "σ",
                UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.5),
                u,
            );
            let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), sel);
            b.target("T", Schema::of(["sk", "v"]), sk);
            let mut wf = b.build().unwrap();
            let mut cv = m.price(&wf).unwrap();
            for _ in 0..6 {
                let applicable: Vec<_> = memo
                    .moves(&wf)
                    .unwrap()
                    .into_iter()
                    .filter_map(|mv| mv.apply(&wf).ok().map(|next| (mv, next)))
                    .collect();
                if applicable.is_empty() {
                    break;
                }
                let (mv, next) = &applicable[rng.gen_range(0..applicable.len())];
                cv = m.reprice_from(next, &cv, &mv.affected(&wf)).unwrap();
                wf = next.clone();
                let report = m.report(&wf).unwrap();
                for (id, _) in wf.graph().iter() {
                    let rows = cv.rows_out(id);
                    let cost = cv.node_cost(id);
                    assert!(rows.is_finite() && cost.is_finite(), "seed {seed}, {id}");
                    assert!(
                        (cost - report.node_cost(id)).abs() < 1e-9,
                        "seed {seed}, node {id}: delta {cost} vs full {}",
                        report.node_cost(id)
                    );
                }
            }
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outside capacity")]
    fn rows_out_rejects_foreign_ids_in_debug() {
        let wf = chain();
        let cv = RowCountModel::default().price(&wf).unwrap();
        let _ = cv.rows_out(crate::graph::NodeId(10_000));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outside capacity")]
    fn node_cost_rejects_foreign_ids_in_debug() {
        let wf = chain();
        let cv = RowCountModel::default().price(&wf).unwrap();
        let _ = cv.node_cost(crate::graph::NodeId(10_000));
    }

    #[test]
    fn union_rows_add_up() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["a"]), 100.0);
        let s2 = b.source("S2", Schema::of(["a"]), 50.0);
        let u = b.binary("U", BinaryOp::Union, s1, s2);
        b.target("T", Schema::of(["a"]), u);
        let wf = b.build().unwrap();
        let rep = RowCountModel::default().report(&wf).unwrap();
        let t = wf.targets()[0];
        assert_eq!(rep.rows[&t], 150.0);
    }
}
