//! The paper's processed-rows cost model.
//!
//! "We have used a simple cost model taking into consideration only the
//! number of processed rows based on simple formulae [15] and assigned
//! selectivities for the involved activities" (§4.2). The formulas follow
//! the Fig. 4 example: `n` for a scan-shaped operator (selection, not-null,
//! function application), `n·log₂n` for sort/lookup-shaped ones (surrogate
//! key, aggregation, duplicate elimination), and configurable pricing for
//! binary operators (Fig. 4 ignores the cost of union).

use crate::activity::{Activity, Op};
use crate::cost::CostModel;
use crate::semantics::{BinaryOp, UnaryOp};

/// `n·log₂n` with a floor so tiny inputs never price at zero or negative.
fn nlogn(n: f64) -> f64 {
    if n <= 1.0 {
        n
    } else {
        n * n.log2()
    }
}

/// The paper's row-count model.
#[derive(Debug, Clone, Copy)]
pub struct RowCountModel {
    /// Price union as free, as the Fig. 4 arithmetic does. When `false`,
    /// union costs `n₁ + n₂`.
    pub union_free: bool,
    /// Cost per row written into a recordset mid-flow (0 = pure logical
    /// model; the paper's setting, where I/O minimization "is not the
    /// primary problem").
    pub materialization_cost_per_row: f64,
}

impl Default for RowCountModel {
    fn default() -> Self {
        RowCountModel {
            union_free: true,
            materialization_cost_per_row: 0.0,
        }
    }
}

impl RowCountModel {
    fn unary_cost(&self, op: &UnaryOp, n: f64) -> f64 {
        match op {
            UnaryOp::Filter { .. }
            | UnaryOp::NotNull { .. }
            | UnaryOp::Function(_)
            | UnaryOp::ProjectOut(_)
            | UnaryOp::AddField { .. } => n,
            UnaryOp::SurrogateKey { .. }
            | UnaryOp::Aggregate { .. }
            | UnaryOp::Dedup { .. }
            | UnaryOp::PkCheck { .. } => nlogn(n),
        }
    }
}

impl CostModel for RowCountModel {
    fn name(&self) -> &str {
        "row-count"
    }

    fn activity_cost(&self, activity: &Activity, input_rows: &[f64]) -> f64 {
        match &activity.op {
            Op::Unary(op) => self.unary_cost(op, input_rows[0]),
            Op::Merged(chain) => {
                // Each link processes the (shrinking) flow in turn.
                let mut n = input_rows[0];
                let mut total = 0.0;
                for op in chain {
                    total += self.unary_cost(op, n);
                    n *= op.selectivity();
                }
                total
            }
            Op::Binary(op) => {
                let (l, r) = (input_rows[0], input_rows[1]);
                match op {
                    BinaryOp::Union => {
                        if self.union_free {
                            0.0
                        } else {
                            l + r
                        }
                    }
                    // Sort-merge shape for the comparing operators.
                    BinaryOp::Join(_) | BinaryOp::Difference | BinaryOp::Intersection => {
                        nlogn(l) + nlogn(r)
                    }
                }
            }
        }
    }
}

/// A strictly linear model (every operator costs `n`, unions cost
/// `n₁ + n₂`). Used by ablation benches to show the optimizer's ranking is
/// not an artifact of the `n·log₂n` terms.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearModel;

impl CostModel for LinearModel {
    fn name(&self) -> &str {
        "linear"
    }

    fn activity_cost(&self, activity: &Activity, input_rows: &[f64]) -> f64 {
        match &activity.op {
            Op::Unary(_) => input_rows[0],
            Op::Merged(chain) => {
                let mut n = input_rows[0];
                let mut total = 0.0;
                for op in chain {
                    total += n;
                    n *= op.selectivity();
                }
                total
            }
            Op::Binary(_) => input_rows.iter().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{binary, unary, Activity, ActivityId};
    use crate::predicate::Predicate;
    use crate::semantics::Aggregation;

    fn act(op: UnaryOp) -> Activity {
        unary(1, "a", op)
    }

    #[test]
    fn scan_shaped_ops_cost_n() {
        let m = RowCountModel::default();
        assert_eq!(
            m.activity_cost(&act(UnaryOp::filter(Predicate::True)), &[8.0]),
            8.0
        );
        assert_eq!(m.activity_cost(&act(UnaryOp::not_null("a")), &[8.0]), 8.0);
        assert_eq!(
            m.activity_cost(&act(UnaryOp::function("f", ["a"], "b")), &[8.0]),
            8.0
        );
    }

    #[test]
    fn sort_shaped_ops_cost_nlogn() {
        let m = RowCountModel::default();
        // The Fig. 4 arithmetic: SK over 8 rows costs 8·log₂8 = 24.
        assert_eq!(
            m.activity_cost(&act(UnaryOp::surrogate_key("k", "s", "L")), &[8.0]),
            24.0
        );
        assert_eq!(
            m.activity_cost(
                &act(UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v"))),
                &[8.0]
            ),
            24.0
        );
    }

    #[test]
    fn tiny_inputs_never_price_at_zero() {
        let m = RowCountModel::default();
        let sk = act(UnaryOp::surrogate_key("k", "s", "L"));
        assert_eq!(m.activity_cost(&sk, &[1.0]), 1.0);
        assert_eq!(m.activity_cost(&sk, &[0.0]), 0.0);
        assert!(m.activity_cost(&sk, &[1.5]) > 0.0);
    }

    #[test]
    fn union_pricing_is_configurable() {
        let u = binary(1, "U", BinaryOp::Union);
        let free = RowCountModel::default();
        assert_eq!(free.activity_cost(&u, &[8.0, 8.0]), 0.0);
        let paid = RowCountModel {
            union_free: false,
            ..RowCountModel::default()
        };
        assert_eq!(paid.activity_cost(&u, &[8.0, 8.0]), 16.0);
    }

    #[test]
    fn merged_chain_prices_each_link_on_shrinking_flow() {
        let m = RowCountModel::default();
        let merged = Activity::new(
            ActivityId::Base(1),
            "m",
            Op::Merged(vec![
                UnaryOp::filter(Predicate::True).with_selectivity(0.5),
                UnaryOp::surrogate_key("k", "s", "L"),
            ]),
        );
        // σ over 8 rows (8) + SK over 4 rows (4·log₂4 = 8) = 16.
        assert_eq!(m.activity_cost(&merged, &[8.0]), 16.0);
    }

    #[test]
    fn linear_model_prices_everything_linearly() {
        let m = LinearModel;
        assert_eq!(
            m.activity_cost(&act(UnaryOp::surrogate_key("k", "s", "L")), &[8.0]),
            8.0
        );
        assert_eq!(
            m.activity_cost(&binary(1, "U", BinaryOp::Union), &[3.0, 4.0]),
            7.0
        );
    }

    /// The Fig. 4 example, paper arithmetic. Two converging flows of n = 8
    /// rows each; σ has selectivity 50 %; SK costs n·log₂n, σ costs n, union
    /// is free. The paper reports c1 = 2n·log₂n + n = 56,
    /// c2 = 2(n + (n/2)·log₂(n/2)) = 32, c3 = 2n + (n/2)·log₂(n/2) = 24.
    /// We assert the paper's own formulas verbatim…
    #[test]
    fn fig4_paper_formulas() {
        let n: f64 = 8.0;
        let c1 = 2.0 * n * n.log2() + n;
        let c2 = 2.0 * (n + (n / 2.0) * (n / 2.0).log2());
        let c3 = 2.0 * n + (n / 2.0) * (n / 2.0).log2();
        assert_eq!(c1, 56.0);
        assert_eq!(c2, 32.0);
        assert_eq!(c3, 24.0);
        assert!(
            c2 < c1 && c3 < c1,
            "DIS and FAC both beat the original state"
        );
    }

    /// …and the same three shapes priced mechanically by the model. Our
    /// price for the original state differs from the paper's c1 (the σ after
    /// the union processes 2n rows, which the paper's formula counts as n),
    /// but the paper's qualitative claim — both Distribute and Factorize
    /// reduce the cost — holds.
    #[test]
    fn fig4_model_pricing_preserves_the_ordering() {
        let m = RowCountModel::default();
        let n = 8.0;
        let sk = act(UnaryOp::surrogate_key("k", "s", "L"));
        let sel = act(UnaryOp::filter(Predicate::True).with_selectivity(0.5));
        // Case 1 (original): SK per branch, union, σ on the merged flow.
        let c1 = 2.0 * m.activity_cost(&sk, &[n]) + m.activity_cost(&sel, &[2.0 * n]);
        // Case 2 (distribute σ): σ per branch, SK per halved branch, union.
        let c2 = 2.0 * (m.activity_cost(&sel, &[n]) + m.activity_cost(&sk, &[n / 2.0]));
        // Case 3 (factorize SK): σ per branch, union, SK on the merged flow.
        let c3 = 2.0 * m.activity_cost(&sel, &[n]) + m.activity_cost(&sk, &[n]);
        assert_eq!(c1, 64.0);
        assert_eq!(c2, 32.0);
        assert_eq!(c3, 40.0);
        assert!(c2 < c1 && c3 < c1);
    }
}
