//! Workflow states.
//!
//! A [`Workflow`] is one **state** of the optimization search: a validated
//! DAG of activities and recordsets with fully derived schemata. States are
//! immutable values from the optimizer's point of view — transitions clone
//! and rewire — and are identified by their [`crate::signature::Signature`].
//!
//! This module also hosts the structural notions of §3.2 the heuristic
//! search is built on: **local groups** (maximal linear paths of unary
//! activities bordered by recordsets and binary activities) and
//! **homologous activities** (same semantics, in local groups converging to
//! the same binary activity).

use std::collections::BTreeMap;

use crate::activity::{Activity, ActivityId, Op};
use crate::error::{CoreError, Result};
use crate::graph::{Graph, Node, NodeId};
use crate::recordset::Recordset;
use crate::schema::Schema;
use crate::schema_gen;
use crate::semantics::{BinaryOp, UnaryOp};
use crate::signature::Signature;

/// A validated ETL workflow — one state of the search space.
#[derive(Debug, Clone, PartialEq)]
pub struct Workflow {
    pub(crate) graph: Graph,
    /// Initial topological priority of every recordset node (activities
    /// carry their priority inside [`ActivityId`]). Behind `Arc`: the table
    /// never changes after `build`, so cloned states share one copy.
    pub(crate) rs_priority: std::sync::Arc<BTreeMap<NodeId, u32>>,
}

impl Workflow {
    /// Read access to the underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Source recordsets (RS_S): recordsets nothing writes to.
    pub fn sources(&self) -> Vec<NodeId> {
        self.graph
            .iter()
            .filter(|(id, n)| {
                matches!(n, Node::Recordset(_))
                    && self.graph.provider(*id, 0).ok().flatten().is_none()
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Target recordsets (RS_T): recordsets nothing reads from.
    pub fn targets(&self) -> Vec<NodeId> {
        self.graph
            .iter()
            .filter(|(id, n)| {
                matches!(n, Node::Recordset(_))
                    && self
                        .graph
                        .consumers(*id)
                        .map(|c| c.is_empty())
                        .unwrap_or(false)
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Activities in topological order.
    pub fn activities(&self) -> Result<Vec<NodeId>> {
        Ok(self
            .graph
            .topo_order()?
            .into_iter()
            .filter(|id| self.graph.activity(*id).is_ok())
            .collect())
    }

    /// Number of activity nodes.
    pub fn activity_count(&self) -> usize {
        self.graph.activity_count()
    }

    /// The signature string identifying this state (§4.1), e.g.
    /// `((1.3)//(2.4.5.6)).7.8.9` for the paper's Fig. 1.
    pub fn signature(&self) -> Signature {
        Signature::of(self)
    }

    /// The 128-bit structural fingerprint of this state: a bottom-up fold
    /// of per-node hashes ([`crate::signature::hash_state`]) digesting the
    /// same structure the signature string renders. Fingerprint equality
    /// coincides with signature equality (w.h.p. — asserted by property
    /// tests); search visited sets key on this value, and transitions
    /// update it incrementally via [`crate::signature::rehash_along`]
    /// instead of recomputing it from scratch.
    pub fn fingerprint(&self) -> u128 {
        crate::signature::hash_state(self).1
    }

    /// The initial-topology priority of a node: activities carry it in
    /// their id (when still a plain [`ActivityId::Base`]); recordsets keep
    /// it in the side table.
    pub fn priority_token(&self, id: NodeId) -> String {
        match self.graph.node(id) {
            Ok(Node::Activity(a)) => a.id.to_string(),
            Ok(Node::Recordset(_)) => self
                .rs_priority
                .get(&id)
                .map(|p| p.to_string())
                .unwrap_or_else(|| format!("r{}", id.0)),
            Err(_) => format!("?{}", id.0),
        }
    }

    /// Return a copy with the selectivity estimate of one unary activity
    /// replaced (the statistics-refresh hook: observed selectivities from
    /// an engine run can be fed back before re-optimizing). No-op for
    /// structurally 1:1 operators; merged activities are not re-estimated
    /// (split them first).
    pub fn with_selectivity(&self, node: NodeId, selectivity: f64) -> Result<Workflow> {
        let mut out = self.clone();
        let act = out.graph.activity_mut(node)?;
        if let Op::Unary(op) = &mut act.op {
            *op = op.clone().with_selectivity(selectivity);
        }
        Ok(out)
    }

    /// Return a copy with the row estimate of one source recordset replaced
    /// (the companion statistics hook to [`Workflow::with_selectivity`]:
    /// actual extract cardinalities from a run can be fed back so the cost
    /// model prices states against real volumes). Errors if `node` is not a
    /// recordset; no-op for non-source recordsets, whose cardinality is
    /// derived.
    pub fn with_row_estimate(&self, node: NodeId, rows: f64) -> Result<Workflow> {
        let mut out = self.clone();
        match out.graph.node_mut(node)? {
            Node::Recordset(rs) => {
                if self
                    .graph
                    .providers(node)?
                    .iter()
                    .flatten()
                    .next()
                    .is_none()
                {
                    rs.row_estimate = rows;
                }
            }
            Node::Activity(_) => return Err(CoreError::UnknownNode(node)),
        }
        Ok(out)
    }

    /// Human-readable rendering: one line per node in topological order,
    /// with priorities, labels, providers and derived schemata.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        let Ok(order) = self.graph.topo_order() else {
            return "<cyclic workflow>".to_owned();
        };
        for id in order {
            let Ok(node) = self.graph.node(id) else {
                continue;
            };
            let token = self.priority_token(id);
            let providers: Vec<String> = self
                .graph
                .providers(id)
                .unwrap_or_default()
                .into_iter()
                .flatten()
                .map(|p| self.priority_token(p))
                .collect();
            let from = if providers.is_empty() {
                String::new()
            } else {
                format!(" <- [{}]", providers.join(","))
            };
            match node {
                Node::Recordset(r) => {
                    out.push_str(&format!("  ({token}) {}{from} :: {}\n", r.name, r.schema));
                }
                Node::Activity(a) => {
                    out.push_str(&format!(
                        "  ({token}) {}{from} :: {} -> {}\n",
                        a.label,
                        a.inputs
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(" x "),
                        a.output
                    ));
                }
            }
        }
        out
    }

    /// Re-derive every schema from the sources forward. Called after every
    /// transition; fails if the rewiring made some activity's functionality
    /// schema unsatisfiable (the transition must then be rejected).
    pub fn regenerate_schemata(&mut self) -> Result<()> {
        schema_gen::regenerate(&mut self.graph)
    }

    /// Full structural validation: DAG-ness, provider completeness, schema
    /// derivability, source/target sanity.
    pub fn validate(&self) -> Result<()> {
        let order = self.graph.topo_order()?;
        let mut has_source = false;
        let mut has_target = false;
        for &id in &order {
            match self.graph.node(id)? {
                Node::Activity(a) => {
                    for (port, p) in self.graph.providers(id)?.iter().enumerate() {
                        if p.is_none() {
                            return Err(CoreError::MissingProvider { node: id, port });
                        }
                    }
                    if self.graph.consumers(id)?.is_empty() {
                        return Err(CoreError::DanglingOutput(id));
                    }
                    // Functionality must be satisfied by the derived inputs.
                    let fun = a.functionality();
                    let joined = a.inputs.iter().fold(Schema::empty(), |acc, s| acc.union(s));
                    if !fun.is_subset_of(&joined) {
                        return Err(CoreError::UnresolvedAttribute {
                            node: id,
                            attr: fun.difference(&joined).to_string(),
                        });
                    }
                }
                Node::Recordset(r) => {
                    let written = self.graph.provider(id, 0)?.is_some();
                    let read = !self.graph.consumers(id)?.is_empty();
                    if !written && !read {
                        return Err(CoreError::InvalidRecordsetRole {
                            node: id,
                            reason: format!("recordset {} is disconnected", r.name),
                        });
                    }
                    if !written {
                        has_source = true;
                    }
                    if !read {
                        has_target = true;
                        // Targets must receive data under their declared schema.
                        if let Some(p) = self.graph.provider(id, 0)? {
                            let out = self.graph.node(p)?.output_schema();
                            if !out.same_attrs(&r.schema) {
                                return Err(CoreError::Schema(format!(
                                    "target {} declares {} but receives {}",
                                    r.name, r.schema, out
                                )));
                            }
                        }
                    }
                }
            }
        }
        if !has_source || !has_target {
            return Err(CoreError::NoSourceOrTarget);
        }
        Ok(())
    }

    /// Maximal linear paths of unary activities (local groups, §3.2).
    /// Borders are recordsets and binary activities; a node with more than
    /// one consumer also ends its group (no linear path through a fan-out).
    /// Groups are returned in topological order of their first element.
    pub fn local_groups(&self) -> Result<Vec<Vec<NodeId>>> {
        let order = self.graph.topo_order()?;
        let mut groups = Vec::new();
        for &id in &order {
            let Ok(act) = self.graph.activity(id) else {
                continue;
            };
            if !act.is_unary() {
                continue;
            }
            // Group leader: provider is not a continuable unary activity.
            if self.group_predecessor(id)?.is_some() {
                continue;
            }
            let mut group = vec![id];
            let mut cur = id;
            while let Some(next) = self.group_successor(cur)? {
                group.push(next);
                cur = next;
            }
            groups.push(group);
        }
        Ok(groups)
    }

    /// The unary activity preceding `id` inside the same local group, if any.
    fn group_predecessor(&self, id: NodeId) -> Result<Option<NodeId>> {
        let Some(p) = self.graph.provider(id, 0)? else {
            return Ok(None);
        };
        let Ok(pa) = self.graph.activity(p) else {
            return Ok(None);
        };
        if pa.is_unary() && self.graph.consumers(p)?.len() == 1 {
            Ok(Some(p))
        } else {
            Ok(None)
        }
    }

    /// The unary activity following `id` inside the same local group, if any.
    fn group_successor(&self, id: NodeId) -> Result<Option<NodeId>> {
        let consumers = self.graph.consumers(id)?;
        if consumers.len() != 1 {
            return Ok(None);
        }
        let c = consumers[0];
        let Ok(ca) = self.graph.activity(c) else {
            return Ok(None);
        };
        if ca.is_unary() {
            Ok(Some(c))
        } else {
            Ok(None)
        }
    }

    /// The binary activity a local group converges to: follow the single
    /// consumer of the group's last element; `Some(ab)` if it is a binary
    /// activity.
    pub fn group_terminal_binary(&self, group: &[NodeId]) -> Result<Option<NodeId>> {
        let Some(&last) = group.last() else {
            return Ok(None);
        };
        let consumers = self.graph.consumers(last)?;
        if consumers.len() != 1 {
            return Ok(None);
        }
        let c = consumers[0];
        match self.graph.activity(c) {
            Ok(a) if a.is_binary() => Ok(Some(c)),
            _ => Ok(None),
        }
    }

    /// Homologous activity pairs (§3.2): `(a1, a2, ab)` where `a1`, `a2`
    /// share semantics and auxiliary schemata and live in local groups
    /// converging to the same binary activity `ab`.
    pub fn homologous_pairs(&self) -> Result<Vec<(NodeId, NodeId, NodeId)>> {
        let groups = self.local_groups()?;
        // binary node -> groups converging to it.
        let mut by_binary: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (gi, g) in groups.iter().enumerate() {
            if let Some(ab) = self.group_terminal_binary(g)? {
                by_binary.entry(ab).or_default().push(gi);
            }
        }
        let mut pairs = Vec::new();
        for (ab, gis) in &by_binary {
            for (i, &g1) in gis.iter().enumerate() {
                for &g2 in gis.iter().skip(i + 1) {
                    for &a1 in &groups[g1] {
                        for &a2 in &groups[g2] {
                            if self.are_homologous(a1, a2)? {
                                pairs.push((a1, a2, *ab));
                            }
                        }
                    }
                }
            }
        }
        Ok(pairs)
    }

    /// Homologous test for a specific pair (semantics + auxiliary schemata;
    /// the convergence requirement is the caller's).
    pub fn are_homologous(&self, a1: NodeId, a2: NodeId) -> Result<bool> {
        let x = self.graph.activity(a1)?;
        let y = self.graph.activity(a2)?;
        Ok(x.same_semantics(y)
            && x.functionality().same_attrs(&y.functionality())
            && x.generated().same_attrs(&y.generated()))
    }

    /// Distributable activities (§4.2, Heuristic 2): unary, row-wise
    /// activities located in a local group that *starts* right after a
    /// binary activity — candidates for being shifted backward through it.
    /// Returns `(activity, binary)` pairs.
    pub fn distributable_activities(&self) -> Result<Vec<(NodeId, NodeId)>> {
        let mut out = Vec::new();
        for group in self.local_groups()? {
            let first = group[0];
            let Some(p) = self.graph.provider(first, 0)? else {
                continue;
            };
            let Ok(pa) = self.graph.activity(p) else {
                continue;
            };
            if !pa.is_binary() {
                continue;
            }
            for &a in &group {
                if self.graph.activity(a)?.is_row_wise() {
                    out.push((a, p));
                }
            }
        }
        Ok(out)
    }

    /// Estimated row count flowing out of each node, propagated from source
    /// cardinalities through activity selectivities. Used by cost models.
    pub fn row_counts(&self) -> Result<BTreeMap<NodeId, f64>> {
        let order = self.graph.topo_order()?;
        let mut rows: BTreeMap<NodeId, f64> = BTreeMap::new();
        for &id in &order {
            let n = match self.graph.node(id)? {
                Node::Recordset(r) => match self.graph.provider(id, 0)? {
                    None => r.row_estimate,
                    Some(p) => rows[&p],
                },
                Node::Activity(a) => {
                    let inputs: Vec<f64> = self
                        .graph
                        .providers(id)?
                        .iter()
                        .map(|p| p.map(|p| rows[&p]).unwrap_or(0.0))
                        .collect();
                    match &a.op {
                        Op::Unary(_) | Op::Merged(_) => inputs[0] * a.selectivity(),
                        Op::Binary(op) => binary_cardinality(op, inputs[0], inputs[1]),
                    }
                }
            };
            rows.insert(id, n);
        }
        Ok(rows)
    }
}

/// Cardinality estimate for binary operators: bag union adds, join assumes
/// foreign-key-ish matching on the smaller side, difference and intersection
/// are bounded by the left input (we take the standard halved estimate for
/// lack of statistics).
pub(crate) fn binary_cardinality(op: &BinaryOp, left: f64, right: f64) -> f64 {
    match op {
        BinaryOp::Union => left + right,
        BinaryOp::Join(_) => left.min(right),
        BinaryOp::Difference => (left - right).max(left / 2.0),
        BinaryOp::Intersection => left.min(right) / 2.0,
    }
}

/// Incrementally numbered builder for workflows.
///
/// Nodes are added in flow order; [`WorkflowBuilder::build`] assigns initial
/// topological priorities (the paper's activity identifiers), derives all
/// schemata and validates the result.
#[derive(Debug, Default)]
pub struct WorkflowBuilder {
    graph: Graph,
}

impl WorkflowBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        WorkflowBuilder {
            graph: Graph::new(),
        }
    }

    /// Add a source recordset with a cardinality estimate.
    pub fn source(&mut self, name: &str, schema: Schema, rows: f64) -> NodeId {
        self.graph
            .add_recordset(Recordset::table(name, schema).with_rows(rows))
    }

    /// Add a source record file.
    pub fn source_file(&mut self, name: &str, schema: Schema, rows: f64) -> NodeId {
        self.graph
            .add_recordset(Recordset::file(name, schema).with_rows(rows))
    }

    /// Add a unary activity consuming `input`.
    pub fn unary(&mut self, label: &str, op: UnaryOp, input: NodeId) -> NodeId {
        let id = self
            .graph
            .add_activity(Activity::new(ActivityId::Base(0), label, Op::Unary(op)));
        self.graph
            .connect(input, id, 0)
            .expect("builder connect: fresh unary port");
        id
    }

    /// Add a binary activity consuming `left` and `right`.
    pub fn binary(&mut self, label: &str, op: BinaryOp, left: NodeId, right: NodeId) -> NodeId {
        let id = self
            .graph
            .add_activity(Activity::new(ActivityId::Base(0), label, Op::Binary(op)));
        self.graph
            .connect(left, id, 0)
            .expect("builder connect: fresh binary port 0");
        self.graph
            .connect(right, id, 1)
            .expect("builder connect: fresh binary port 1");
        id
    }

    /// Add an intermediate recordset materializing the flow from `input`.
    pub fn recordset(&mut self, name: &str, schema: Schema, input: NodeId) -> NodeId {
        let id = self.graph.add_recordset(Recordset::table(name, schema));
        self.graph
            .connect(input, id, 0)
            .expect("builder connect: fresh recordset port");
        id
    }

    /// Add a target recordset fed by `input`.
    pub fn target(&mut self, name: &str, schema: Schema, input: NodeId) -> NodeId {
        self.recordset(name, schema, input)
    }

    /// Assign priorities, derive schemata, validate, and produce the state.
    pub fn build(self) -> Result<Workflow> {
        let mut graph = self.graph;
        let order = graph.topo_order()?;
        let mut rs_priority = BTreeMap::new();
        for (i, &id) in order.iter().enumerate() {
            let priority = (i + 1) as u32;
            match graph.node_mut(id)? {
                Node::Activity(a) => a.id = ActivityId::Base(priority),
                Node::Recordset(_) => {
                    rs_priority.insert(id, priority);
                }
            }
        }
        schema_gen::regenerate(&mut graph)?;
        let wf = Workflow {
            graph,
            rs_priority: std::sync::Arc::new(rs_priority),
        };
        wf.validate()?;
        Ok(wf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;

    /// S1 -> NN -> U <- σ <- S2 ; U -> f -> T (two local groups of size 1,
    /// one after the union).
    fn small_converging() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 100.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 200.0);
        let nn = b.unary("NN", UnaryOp::not_null("v").with_selectivity(0.9), s1);
        let f = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.5),
            s2,
        );
        let u = b.binary("U", BinaryOp::Union, nn, f);
        let g = b.unary("g", UnaryOp::function("scale", ["v"], "v"), u);
        b.target("T", Schema::of(["k", "v"]), g);
        b.build().unwrap()
    }

    #[test]
    fn build_assigns_topo_priorities() {
        let wf = small_converging();
        // Sources get 1 & 2, activities follow, target last.
        let sources = wf.sources();
        assert_eq!(sources.len(), 2);
        let tokens: Vec<String> = sources.iter().map(|&s| wf.priority_token(s)).collect();
        assert!(tokens.contains(&"1".to_owned()) && tokens.contains(&"2".to_owned()));
        let targets = wf.targets();
        assert_eq!(targets.len(), 1);
        assert_eq!(wf.priority_token(targets[0]), "7");
    }

    #[test]
    fn transitions_share_untouched_nodes() {
        // The structural-sharing contract behind cheap state clones: a
        // transition detaches (at most) the nodes it rewires plus nodes
        // whose schemas change downstream; everything else must still be
        // the *same* `Arc` as in the origin state.
        use crate::opt::{enumerate_moves, Move};
        use crate::transition::Transition;
        // SK/σ swappable on branch 1; branch 2 (NN) and the tail untouched.
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 100.0);
        let s2 = b.source("S2", Schema::of(["sk", "v"]), 200.0);
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), s1);
        let f = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 0)).with_selectivity(0.5),
            sk,
        );
        let nn = b.unary("NN", UnaryOp::not_null("v").with_selectivity(0.9), s2);
        let u = b.binary("U", BinaryOp::Union, f, nn);
        b.target("T", Schema::of(["sk", "v"]), u);
        let wf = b.build().unwrap();
        let moves = enumerate_moves(&wf).unwrap();
        let swap = moves
            .iter()
            .find_map(|m| match m {
                Move::Swap(s) => Some(*s),
                _ => None,
            })
            .expect("a legal swap exists");
        let next = swap.apply(&wf).unwrap();
        let touched = [swap.a1, swap.a2];
        let mut shared = 0;
        for id in wf.graph().node_ids() {
            if touched.contains(&id) || !next.graph().contains(id) {
                continue;
            }
            assert!(
                std::sync::Arc::ptr_eq(
                    wf.graph().node_arc(id).unwrap(),
                    next.graph().node_arc(id).unwrap()
                ),
                "node {id} was detached by an unrelated swap"
            );
            shared += 1;
        }
        assert!(shared >= 4, "expected most nodes shared, got {shared}");
        // The priority table is shared wholesale.
        assert!(std::sync::Arc::ptr_eq(&wf.rs_priority, &next.rs_priority));
    }

    #[test]
    fn schemata_are_derived() {
        let wf = small_converging();
        for &a in &wf.activities().unwrap() {
            let act = wf.graph().activity(a).unwrap();
            assert!(!act.output.is_empty(), "{act} has empty output schema");
        }
    }

    #[test]
    fn local_groups_are_bordered_by_recordsets_and_binaries() {
        let wf = small_converging();
        let groups = wf.local_groups().unwrap();
        assert_eq!(groups.len(), 3);
        for g in &groups {
            assert_eq!(g.len(), 1);
        }
    }

    #[test]
    fn homologous_pairs_detects_same_filters() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 100.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 100.0);
        let f1 = b.unary("σ1", UnaryOp::filter(Predicate::gt("v", 10)), s1);
        let f2 = b.unary("σ2", UnaryOp::filter(Predicate::gt("v", 10)), s2);
        let u = b.binary("U", BinaryOp::Union, f1, f2);
        b.target("T", Schema::of(["k", "v"]), u);
        let wf = b.build().unwrap();
        let pairs = wf.homologous_pairs().unwrap();
        assert_eq!(pairs.len(), 1);
        let (a1, a2, ab) = pairs[0];
        assert!(wf.are_homologous(a1, a2).unwrap());
        assert!(wf.graph().activity(ab).unwrap().is_binary());
    }

    #[test]
    fn different_predicates_are_not_homologous() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["v"]), 10.0);
        let s2 = b.source("S2", Schema::of(["v"]), 10.0);
        let f1 = b.unary("σ1", UnaryOp::filter(Predicate::gt("v", 10)), s1);
        let f2 = b.unary("σ2", UnaryOp::filter(Predicate::gt("v", 20)), s2);
        let u = b.binary("U", BinaryOp::Union, f1, f2);
        b.target("T", Schema::of(["v"]), u);
        let wf = b.build().unwrap();
        assert!(wf.homologous_pairs().unwrap().is_empty());
    }

    #[test]
    fn distributable_finds_row_wise_after_binary() {
        let wf = small_converging();
        let d = wf.distributable_activities().unwrap();
        assert_eq!(d.len(), 1);
        let (a, ab) = d[0];
        assert_eq!(wf.graph().activity(a).unwrap().label, "g");
        assert_eq!(wf.graph().activity(ab).unwrap().label, "U");
    }

    #[test]
    fn aggregation_after_binary_is_not_distributable() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S1", Schema::of(["k", "v"]), 10.0);
        let s2 = b.source("S2", Schema::of(["k", "v"]), 10.0);
        let u = b.binary("U", BinaryOp::Union, s1, s2);
        let agg = b.unary(
            "γ",
            UnaryOp::aggregate(crate::semantics::Aggregation::sum(["k"], "v", "v")),
            u,
        );
        b.target("T", Schema::of(["k", "v"]), agg);
        let wf = b.build().unwrap();
        assert!(wf.distributable_activities().unwrap().is_empty());
    }

    #[test]
    fn row_counts_propagate_selectivities() {
        let wf = small_converging();
        let rows = wf.row_counts().unwrap();
        let target = wf.targets()[0];
        // S1: 100 * 0.9 = 90; S2: 200 * 0.5 = 100; union: 190; f: 190.
        assert!((rows[&target] - 190.0).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_mismatched_target_schema() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a", "b"]), 10.0);
        b.target("T", Schema::of(["a"]), s);
        assert!(b.build().is_err());
    }

    #[test]
    fn validate_rejects_unsatisfiable_functionality() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("missing", 1)), s);
        b.target("T", Schema::of(["a"]), f);
        assert!(b.build().is_err());
    }

    #[test]
    fn workflow_without_target_is_rejected() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a"]), 10.0);
        let _f = b.unary("σ", UnaryOp::filter(Predicate::True), s);
        // The filter dangles: no consumer.
        assert!(b.build().is_err());
    }

    #[test]
    fn signature_matches_paper_format() {
        let wf = small_converging();
        let sig = wf.signature().to_string();
        // Two source branches converge on the union (node 5), then 6, 7.
        assert_eq!(sig, "((1.3)//(2.4)).5.6.7");
    }

    #[test]
    fn pretty_renders_every_node_with_schemata() {
        let wf = small_converging();
        let text = wf.pretty();
        for label in ["S1", "S2", "NN", "σ", "U", "g", "T"] {
            assert!(text.contains(label), "missing {label} in:\n{text}");
        }
        assert!(text.contains("->"), "activity schemata shown");
        assert!(text.contains("<- ["), "providers shown");
    }

    #[test]
    fn with_selectivity_returns_adjusted_copy() {
        let wf = small_converging();
        let nn = wf
            .activities()
            .unwrap()
            .into_iter()
            .find(|&a| wf.graph().activity(a).unwrap().label == "NN")
            .unwrap();
        let tweaked = wf.with_selectivity(nn, 0.123).unwrap();
        assert!((tweaked.graph().activity(nn).unwrap().selectivity() - 0.123).abs() < 1e-12);
        // Original untouched; semantics unchanged.
        assert!((wf.graph().activity(nn).unwrap().selectivity() - 0.9).abs() < 1e-12);
        assert!(crate::postcond::equivalent(&wf, &tweaked).unwrap());
    }

    #[test]
    fn with_row_estimate_adjusts_sources_only() {
        let wf = small_converging();
        let sources = wf.sources();
        let tweaked = wf.with_row_estimate(sources[0], 777.0).unwrap();
        assert_eq!(
            tweaked.graph().recordset(sources[0]).unwrap().row_estimate,
            777.0
        );
        // Original untouched.
        assert_ne!(
            wf.graph().recordset(sources[0]).unwrap().row_estimate,
            777.0
        );
        // Derived (target) recordsets keep their estimate; activities error.
        let target = wf.targets()[0];
        let same = wf.with_row_estimate(target, 5.0).unwrap();
        assert_eq!(
            same.graph().recordset(target).unwrap().row_estimate,
            wf.graph().recordset(target).unwrap().row_estimate
        );
        let act = wf.activities().unwrap()[0];
        assert!(wf.with_row_estimate(act, 5.0).is_err());
    }

    #[test]
    fn clone_is_independent() {
        let wf = small_converging();
        let copy = wf.clone();
        assert_eq!(wf, copy);
        assert_eq!(wf.signature(), copy.signature());
    }
}
