//! Post-condition calculus and workflow equivalence (§3.4).
//!
//! Correctness of transitions is established black-box: every activity and
//! recordset is annotated with a logical **post-condition** — a predicate
//! name with the functionality-schema attributes as variables — that holds
//! once the node has processed all its data. The **workflow post-condition**
//! `Cond_G` is the conjunction of all node post-conditions. Two states are
//! *equivalent* iff
//!
//! (a) the schema of the data propagated to each target recordset is
//!     identical, and
//! (b) `Cond_G1 ≡ Cond_G2`.
//!
//! Since conjunction is commutative, associative and idempotent, `Cond_G` is
//! represented as a *set* of atomic predicates: Swap permutes conjuncts,
//! Factorize collapses `p ∧ p` into `p`, Distribute is the reverse — all
//! leave the set equal, which is Theorem 2 in executable form.

use std::collections::{BTreeMap, BTreeSet};

use crate::activity::{Activity, Op};
use crate::error::Result;
use crate::graph::Node;
use crate::semantics::UnaryOp;
use crate::workflow::Workflow;

/// An atomic post-condition, e.g. `$2€(dollar_cost)` or
/// `PARTS1(pkey,source,date,cost)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomicCond(String);

impl AtomicCond {
    fn new(name: &str, vars: impl IntoIterator<Item = String>) -> Self {
        let mut vs: Vec<String> = vars.into_iter().collect();
        // Variables are a set: their order is not semantic.
        vs.sort();
        AtomicCond(format!("{name}({})", vs.join(",")))
    }

    /// Rendered predicate.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for AtomicCond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The workflow post-condition `Cond_G` as an idempotent conjunction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkflowCond {
    conds: BTreeSet<AtomicCond>,
}

impl WorkflowCond {
    /// Compute `Cond_G` for a state.
    pub fn of(wf: &Workflow) -> Result<WorkflowCond> {
        let mut conds = BTreeSet::new();
        for &id in &wf.graph().topo_order()? {
            match wf.graph().node(id)? {
                Node::Recordset(r) => {
                    conds.insert(AtomicCond::new(
                        &r.name,
                        r.schema.iter().map(|a| a.name().to_owned()),
                    ));
                }
                Node::Activity(a) => {
                    for c in activity_conds(a) {
                        conds.insert(c);
                    }
                }
            }
        }
        Ok(WorkflowCond { conds })
    }

    /// The individual conjuncts, sorted.
    pub fn conjuncts(&self) -> impl Iterator<Item = &AtomicCond> + '_ {
        self.conds.iter()
    }

    /// Number of distinct conjuncts.
    pub fn len(&self) -> usize {
        self.conds.len()
    }

    /// Is the conjunction empty?
    pub fn is_empty(&self) -> bool {
        self.conds.is_empty()
    }

    /// Render as the paper does: `p1 ∧ p2 ∧ …`.
    pub fn render(&self) -> String {
        self.conds
            .iter()
            .map(|c| c.as_str().to_owned())
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }
}

/// Post-conditions contributed by one activity. A merged activity (Merge
/// transition) carries the conjunction of its members' predicates —
/// packaging must not change semantics.
fn activity_conds(a: &Activity) -> Vec<AtomicCond> {
    match &a.op {
        Op::Unary(op) => vec![unary_cond(op)],
        Op::Binary(op) => {
            vec![AtomicCond::new(
                op.op_name(),
                op.functionality().iter().map(|x| x.name().to_owned()),
            )]
        }
        Op::Merged(chain) => chain.iter().map(unary_cond).collect(),
    }
}

fn unary_cond(op: &UnaryOp) -> AtomicCond {
    // The predicate name must carry the full semantics ("fixed semantics per
    // predicate name", §3.4): for filters the rendered predicate itself is
    // the name, so σ(x>1) and σ(x>2) stay distinguishable.
    let name = match op {
        UnaryOp::Filter { predicate, .. } => format!("σ[{predicate}]"),
        UnaryOp::Aggregate { agg, .. } => {
            let parts: Vec<String> = agg
                .aggregates
                .iter()
                .map(|s| format!("{}:{}->{}", s.func.name(), s.input, s.output))
                .collect();
            format!("γ[{}]", parts.join(";"))
        }
        UnaryOp::AddField { attr, value } => format!("ADD[{attr}={value}]"),
        UnaryOp::Function(f) => format!("{}->{}", f.function, f.output),
        UnaryOp::SurrogateKey {
            lookup, surrogate, ..
        } => format!("SK[{lookup}->{surrogate}]"),
        other => other.op_name(),
    };
    AtomicCond::new(
        &name,
        op.functionality().iter().map(|x| x.name().to_owned()),
    )
}

/// Workflow equivalence (§3.4): identical target schemata (matched by
/// target name) and equivalent post-conditions.
pub fn equivalent(a: &Workflow, b: &Workflow) -> Result<bool> {
    // Condition (a): target schemata.
    let schema_map = |wf: &Workflow| -> Result<BTreeMap<String, BTreeSet<String>>> {
        let mut m = BTreeMap::new();
        for t in wf.targets() {
            let r = wf.graph().recordset(t)?;
            m.insert(
                r.name.clone(),
                r.schema.iter().map(|x| x.name().to_owned()).collect(),
            );
        }
        Ok(m)
    };
    if schema_map(a)? != schema_map(b)? {
        return Ok(false);
    }
    // Condition (b): Cond_G1 ≡ Cond_G2.
    Ok(WorkflowCond::of(a)? == WorkflowCond::of(b)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::Schema;
    use crate::semantics::{Aggregation, BinaryOp, UnaryOp};
    use crate::workflow::WorkflowBuilder;

    fn two_filters(order_swapped: bool) -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a", "b"]), 10.0);
        let (op1, op2) = (
            UnaryOp::filter(Predicate::gt("a", 1)),
            UnaryOp::not_null("b"),
        );
        let (first, second) = if order_swapped {
            (op2, op1)
        } else {
            (op1, op2)
        };
        let f1 = b.unary("x", first, s);
        let f2 = b.unary("y", second, f1);
        b.target("T", Schema::of(["a", "b"]), f2);
        b.build().unwrap()
    }

    #[test]
    fn swap_leaves_cond_equal() {
        // Note: the two states are built independently, so their positional
        // signatures coincide; equivalence is decided by the post-condition
        // calculus, which sees through the different operator orders.
        let w1 = two_filters(false);
        let w2 = two_filters(true);
        assert!(equivalent(&w1, &w2).unwrap());
    }

    #[test]
    fn different_predicates_are_not_equivalent() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["a", "b"]), 10.0);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("a", 99)), s);
        b.target("T", Schema::of(["a", "b"]), f);
        let w1 = b.build().unwrap();
        let w2 = two_filters(false);
        assert!(!equivalent(&w1, &w2).unwrap());
    }

    #[test]
    fn factorized_duplicate_conds_collapse() {
        // σ applied on both branches vs once after the union: same Cond_G.
        let dup = {
            let mut b = WorkflowBuilder::new();
            let s1 = b.source("S1", Schema::of(["v"]), 10.0);
            let s2 = b.source("S2", Schema::of(["v"]), 10.0);
            let f1 = b.unary("σ1", UnaryOp::filter(Predicate::gt("v", 0)), s1);
            let f2 = b.unary("σ2", UnaryOp::filter(Predicate::gt("v", 0)), s2);
            let u = b.binary("U", BinaryOp::Union, f1, f2);
            b.target("T", Schema::of(["v"]), u);
            b.build().unwrap()
        };
        let single = {
            let mut b = WorkflowBuilder::new();
            let s1 = b.source("S1", Schema::of(["v"]), 10.0);
            let s2 = b.source("S2", Schema::of(["v"]), 10.0);
            let u = b.binary("U", BinaryOp::Union, s1, s2);
            let f = b.unary("σ", UnaryOp::filter(Predicate::gt("v", 0)), u);
            b.target("T", Schema::of(["v"]), f);
            b.build().unwrap()
        };
        assert!(equivalent(&dup, &single).unwrap());
    }

    #[test]
    fn cond_renders_like_paper() {
        let wf = two_filters(false);
        let cond = WorkflowCond::of(&wf).unwrap();
        let rendered = cond.render();
        assert!(rendered.contains("NN(b)"), "{rendered}");
        assert!(rendered.contains("σ[a>1](a)"), "{rendered}");
        assert!(rendered.contains("S(a,b)"), "{rendered}");
        assert!(rendered.contains(" ∧ "), "{rendered}");
    }

    #[test]
    fn aggregation_cond_distinguishes_groupers() {
        let mk = |groupers: &[&str]| {
            let mut b = WorkflowBuilder::new();
            let s = b.source("S", Schema::of(["k", "d", "v"]), 10.0);
            let g = b.unary(
                "γ",
                UnaryOp::aggregate(Aggregation::sum(groupers.to_vec(), "v", "v")),
                s,
            );
            let sch: Vec<&str> = groupers.iter().copied().chain(["v"]).collect();
            b.target("T", Schema::of(sch), g);
            b.build().unwrap()
        };
        let w1 = mk(&["k", "d"]);
        let w2 = mk(&["k"]);
        assert!(!equivalent(&w1, &w2).unwrap());
    }

    #[test]
    fn target_schema_mismatch_breaks_equivalence() {
        let mut b1 = WorkflowBuilder::new();
        let s = b1.source("S", Schema::of(["a", "b"]), 10.0);
        b1.target("T", Schema::of(["a", "b"]), s);
        let w1 = b1.build().unwrap();

        let mut b2 = WorkflowBuilder::new();
        let s = b2.source("S", Schema::of(["a", "b"]), 10.0);
        let p = b2.unary("π", UnaryOp::project_out(["b"]), s);
        b2.target("T", Schema::of(["a"]), p);
        let w2 = b2.build().unwrap();
        assert!(!equivalent(&w1, &w2).unwrap());
    }

    #[test]
    fn merged_activity_contributes_member_conds() {
        use crate::activity::{Activity, ActivityId, Op};
        // Build a workflow then manually merge to check cond extraction.
        let act = Activity::new(
            ActivityId::merged(&[ActivityId::Base(1), ActivityId::Base(2)]),
            "m",
            Op::Merged(vec![
                UnaryOp::not_null("a"),
                UnaryOp::filter(Predicate::gt("a", 5)),
            ]),
        );
        let conds = super::activity_conds(&act);
        assert_eq!(conds.len(), 2);
        assert!(conds.iter().any(|c| c.as_str() == "NN(a)"));
    }
}
