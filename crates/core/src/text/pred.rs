//! Predicate rendering and parsing for the workflow text format.
//!
//! Grammar (lowest precedence first):
//!
//! ```text
//! pred  := and ("or" and)*
//! and   := unary ("and" unary)*
//! unary := "not" unary | atom
//! atom  := "(" pred ")" | "true"
//!        | attr cmp (scalar | attr)
//!        | attr "is" ["not"] "null"
//!        | attr "in" "(" scalar ("," scalar)* ")"
//! cmp   := "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
//! ```

use std::fmt::Write as _;

use crate::error::Result;
use crate::predicate::{CmpOp, Predicate};
use crate::scalar::Scalar;
use crate::schema::Attr;
use crate::text::lexer::{Cursor, Token};

/// Render a scalar as a parseable literal.
pub fn render_scalar(v: &Scalar) -> String {
    match v {
        Scalar::Null => "null".to_owned(),
        Scalar::Bool(b) => b.to_string(),
        Scalar::Int(i) => i.to_string(),
        Scalar::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                f.to_string()
            }
        }
        Scalar::Date(d) => format!("date({d})"),
        Scalar::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
    }
}

/// Parse a scalar literal.
pub fn parse_scalar(c: &mut Cursor) -> Result<Scalar> {
    match c.next() {
        Some(Token::Ident(s)) if s == "null" => Ok(Scalar::Null),
        Some(Token::Ident(s)) if s == "true" => Ok(Scalar::Bool(true)),
        Some(Token::Ident(s)) if s == "false" => Ok(Scalar::Bool(false)),
        Some(Token::Ident(s)) if s == "date" => {
            c.expect_punct("(")?;
            let n = c.expect_number()?;
            c.expect_punct(")")?;
            Ok(Scalar::Date(n as i32))
        }
        Some(Token::Str(s)) => Ok(Scalar::Str(s)),
        Some(Token::Number(s)) => {
            if s.contains('.') || s.contains('e') || s.contains('E') {
                Ok(Scalar::Float(s.parse().map_err(|e| c.err(e))?))
            } else {
                Ok(Scalar::Int(s.parse().map_err(|e| c.err(e))?))
            }
        }
        other => Err(c.err(format!("expected scalar literal, got {other:?}"))),
    }
}

fn cmp_symbol(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

/// Render a predicate as parseable text.
pub fn render(p: &Predicate) -> String {
    let mut out = String::new();
    write_pred(p, &mut out);
    out
}

fn write_pred(p: &Predicate, out: &mut String) {
    match p {
        Predicate::True => out.push_str("true"),
        Predicate::Cmp { attr, op, value } => {
            let _ = write!(out, "{attr} {} {}", cmp_symbol(*op), render_scalar(value));
        }
        Predicate::CmpAttr { left, op, right } => {
            let _ = write!(out, "{left} {} {right}", cmp_symbol(*op));
        }
        Predicate::IsNotNull(a) => {
            let _ = write!(out, "{a} is not null");
        }
        Predicate::IsNull(a) => {
            let _ = write!(out, "{a} is null");
        }
        Predicate::InList { attr, values } => {
            let vals: Vec<String> = values.iter().map(render_scalar).collect();
            let _ = write!(out, "{attr} in ({})", vals.join(", "));
        }
        Predicate::And(a, b) => {
            out.push('(');
            write_pred(a, out);
            out.push_str(" and ");
            write_pred(b, out);
            out.push(')');
        }
        Predicate::Or(a, b) => {
            out.push('(');
            write_pred(a, out);
            out.push_str(" or ");
            write_pred(b, out);
            out.push(')');
        }
        Predicate::Not(inner) => {
            out.push_str("not ");
            match **inner {
                Predicate::And(_, _) | Predicate::Or(_, _) => write_pred(inner, out),
                _ => {
                    out.push('(');
                    write_pred(inner, out);
                    out.push(')');
                }
            }
        }
    }
}

/// Parse a predicate from the cursor (stops at the first token the grammar
/// does not own, e.g. `sel` or `<-`).
pub fn parse(c: &mut Cursor) -> Result<Predicate> {
    let left = parse_and(c)?;
    if c.eat_keyword("or") {
        let right = parse(c)?;
        Ok(left.or(right))
    } else {
        Ok(left)
    }
}

fn parse_and(c: &mut Cursor) -> Result<Predicate> {
    let left = parse_unary(c)?;
    if c.eat_keyword("and") {
        let right = parse_and(c)?;
        Ok(left.and(right))
    } else {
        Ok(left)
    }
}

fn parse_unary(c: &mut Cursor) -> Result<Predicate> {
    if c.eat_keyword("not") {
        return Ok(parse_unary(c)?.not());
    }
    if c.eat_punct("(") {
        let inner = parse(c)?;
        c.expect_punct(")")?;
        return Ok(inner);
    }
    // atom starting with an attribute (or the literal `true`).
    let ident = c.expect_ident()?;
    if ident == "true" {
        return Ok(Predicate::True);
    }
    let attr = Attr::new(&ident);
    if c.eat_keyword("is") {
        let negated = c.eat_keyword("not");
        c.expect_keyword("null")?;
        return Ok(if negated {
            Predicate::IsNotNull(attr)
        } else {
            Predicate::IsNull(attr)
        });
    }
    if c.eat_keyword("in") {
        c.expect_punct("(")?;
        let mut values = Vec::new();
        loop {
            values.push(parse_scalar(c)?);
            if c.eat_punct(")") {
                break;
            }
            c.expect_punct(",")?;
        }
        return Ok(Predicate::InList { attr, values });
    }
    let op = match c.next() {
        Some(Token::Punct("=")) => CmpOp::Eq,
        Some(Token::Punct("<>")) | Some(Token::Punct("!=")) => CmpOp::Ne,
        Some(Token::Punct("<")) => CmpOp::Lt,
        Some(Token::Punct("<=")) => CmpOp::Le,
        Some(Token::Punct(">")) => CmpOp::Gt,
        Some(Token::Punct(">=")) => CmpOp::Ge,
        other => return Err(c.err(format!("expected comparison operator, got {other:?}"))),
    };
    // Attribute on the right? (identifiers that are not scalar keywords)
    if let Some(Token::Ident(s)) = c.peek() {
        if !matches!(s.as_str(), "null" | "true" | "false" | "date") {
            let right = c.expect_ident()?;
            return Ok(Predicate::CmpAttr {
                left: attr,
                op,
                right: Attr::new(right),
            });
        }
    }
    let value = parse_scalar(c)?;
    Ok(Predicate::Cmp { attr, op, value })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: &Predicate) {
        let text = render(p);
        let mut c = Cursor::new(&text).unwrap();
        let parsed = parse(&mut c).unwrap();
        c.expect_end().unwrap();
        assert_eq!(&parsed, p, "through `{text}`");
    }

    #[test]
    fn comparisons_roundtrip() {
        roundtrip(&Predicate::gt("cost", 100.0));
        roundtrip(&Predicate::le("qty", 5));
        roundtrip(&Predicate::eq("name", "widget"));
        roundtrip(&Predicate::ne("flag", Scalar::Bool(true)));
        roundtrip(&Predicate::eq("day", Scalar::Date(120)));
        roundtrip(&Predicate::eq("maybe", Scalar::Null));
    }

    #[test]
    fn null_tests_roundtrip() {
        roundtrip(&Predicate::not_null("cost"));
        roundtrip(&Predicate::IsNull(Attr::new("cost")));
    }

    #[test]
    fn in_list_roundtrips() {
        roundtrip(&Predicate::in_list("dept", ["toys", "tools"]));
        roundtrip(&Predicate::in_list("k", [1, 2, 3]));
    }

    #[test]
    fn boolean_structure_roundtrips() {
        let p = Predicate::gt("a", 1)
            .and(Predicate::not_null("b").or(Predicate::eq("c", "x")))
            .not();
        roundtrip(&p);
        roundtrip(&Predicate::True);
    }

    #[test]
    fn attr_attr_comparison_roundtrips() {
        roundtrip(&Predicate::CmpAttr {
            left: Attr::new("a"),
            op: CmpOp::Le,
            right: Attr::new("b"),
        });
    }

    #[test]
    fn tricky_strings_roundtrip() {
        roundtrip(&Predicate::eq("s", "with \"quotes\" and \\slash"));
        roundtrip(&Predicate::eq("s", "123"));
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let mut c = Cursor::new("a = 1 or b = 2 and c = 3").unwrap();
        let p = parse(&mut c).unwrap();
        match p {
            Predicate::Or(_, rhs) => assert!(matches!(*rhs, Predicate::And(_, _))),
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in ["cost >", "cost is maybe", "in (1)", "a = = 1"] {
            let mut c = Cursor::new(bad).unwrap();
            let r = parse(&mut c).and_then(|_| c.expect_end());
            assert!(r.is_err(), "`{bad}` should not parse");
        }
    }
}
