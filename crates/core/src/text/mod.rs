//! A textual format for ETL workflows: render with [`render`], load with
//! [`parse`]. One node per line, in topological order:
//!
//! ```text
//! # The paper's running example
//! source "PARTS1" table rows=300 (pkey, source, date, euro_cost)
//! source "PARTS2" table rows=9000 (pkey, source, date, dept, dollar_cost)
//! activity a1 "NN" = not_null(euro_cost) sel=0.95 <- "PARTS1"
//! activity a2 "$2E" = function dollar2euro(dollar_cost) -> euro_cost <- "PARTS2"
//! activity a3 "A2E" = function am2eu(date) -> date <- a2
//! activity a4 "γ" = aggregate group(pkey, source, date) sum(euro_cost -> euro_cost) sel=0.033 <- a3
//! activity a5 "U" = union <- a1, a4
//! activity a6 "σ(€)" = filter euro_cost >= 100.0 sel=0.4 <- a5
//! target "DW" table (pkey, source, date, euro_cost) <- a6
//! ```
//!
//! Recordsets are referenced by their quoted names, activities by the `a<n>`
//! identifiers the renderer assigns in topological order. Blank lines and
//! `#` comments are ignored. Parsing re-validates and re-derives all
//! schemata, and normalizes activity identifiers to fresh topological
//! priorities — a freshly built workflow round-trips to an identical
//! signature; an optimizer-produced state round-trips to an *equivalent*
//! workflow. Merged activities (a transient optimizer construct) are not
//! representable: split them before saving.

pub mod lexer;
pub mod pred;

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::activity::Op;
use crate::error::{CoreError, Result};
use crate::graph::{Node, NodeId};
use crate::recordset::RecordsetKind;
use crate::schema::{Attr, Schema};
use crate::semantics::{AggFunc, AggSpec, Aggregation, BinaryOp, FunctionApp, UnaryOp};
use crate::text::lexer::{Cursor, Token};
use crate::workflow::{Workflow, WorkflowBuilder};

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

fn attr_list(attrs: &[Attr]) -> String {
    attrs
        .iter()
        .map(|a| a.name().to_owned())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render a workflow as text. Fails on merged activities (split them
/// first) — everything else round-trips through [`parse`].
pub fn render(wf: &Workflow) -> Result<String> {
    let graph = wf.graph();
    let order = graph.topo_order()?;
    let mut names: BTreeMap<NodeId, String> = BTreeMap::new();
    let mut out = String::new();
    let mut next_activity = 0usize;
    for id in order {
        let node = graph.node(id)?;
        let input_refs = || -> Result<String> {
            let providers: Vec<String> = graph
                .providers(id)?
                .into_iter()
                .flatten()
                .map(|p| names[&p].clone())
                .collect();
            Ok(providers.join(", "))
        };
        match node {
            Node::Recordset(rs) => {
                let kind = rs.kind.tag();
                let written = graph.provider(id, 0)?.is_some();
                let read = !graph.consumers(id)?.is_empty();
                if !written {
                    let _ = writeln!(
                        out,
                        "source {} {kind} rows={} ({})",
                        quote(&rs.name),
                        rs.row_estimate,
                        attr_list(rs.schema.attrs()),
                    );
                } else if read {
                    let _ = writeln!(
                        out,
                        "recordset {} {kind} <- {}",
                        quote(&rs.name),
                        input_refs()?
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "target {} {kind} ({}) <- {}",
                        quote(&rs.name),
                        attr_list(rs.schema.attrs()),
                        input_refs()?
                    );
                }
                names.insert(id, quote(&rs.name));
            }
            Node::Activity(act) => {
                next_activity += 1;
                let name = format!("a{next_activity}");
                let spec = render_op(&act.op)?;
                let sel = act.selectivity();
                let sel_part = if needs_selectivity(&act.op) && (sel - 1.0).abs() > 1e-12 {
                    format!(" sel={sel}")
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "activity {name} {} = {spec}{sel_part} <- {}",
                    quote(&act.label),
                    input_refs()?
                );
                names.insert(id, name);
            }
        }
    }
    Ok(out)
}

fn needs_selectivity(op: &Op) -> bool {
    matches!(
        op,
        Op::Unary(
            UnaryOp::Filter { .. }
                | UnaryOp::NotNull { .. }
                | UnaryOp::PkCheck { .. }
                | UnaryOp::Dedup { .. }
                | UnaryOp::Aggregate { .. }
        )
    )
}

fn render_op(op: &Op) -> Result<String> {
    Ok(match op {
        Op::Merged(_) => {
            return Err(CoreError::Schema(
                "merged activities are optimizer-internal; apply Split before rendering".to_owned(),
            ))
        }
        Op::Binary(BinaryOp::Union) => "union".to_owned(),
        Op::Binary(BinaryOp::Difference) => "difference".to_owned(),
        Op::Binary(BinaryOp::Intersection) => "intersection".to_owned(),
        Op::Binary(BinaryOp::Join(on)) => format!("join({})", attr_list(on)),
        Op::Unary(u) => match u {
            UnaryOp::Filter { predicate, .. } => format!("filter {}", pred::render(predicate)),
            UnaryOp::NotNull { attr, .. } => format!("not_null({attr})"),
            UnaryOp::PkCheck { key, .. } => format!("pk_check({})", attr_list(key)),
            UnaryOp::Dedup { .. } => "dedup".to_owned(),
            UnaryOp::Function(f) => {
                let mut s = format!(
                    "function {}({}) -> {}",
                    f.function,
                    attr_list(&f.inputs),
                    f.output
                );
                if f.keep_inputs {
                    s.push_str(" keep");
                }
                if !f.injective {
                    s.push_str(" noninjective");
                }
                s
            }
            UnaryOp::Aggregate { agg, .. } => {
                let specs: Vec<String> = agg
                    .aggregates
                    .iter()
                    .map(|a| {
                        format!(
                            "{}({} -> {})",
                            a.func.name().to_lowercase(),
                            a.input,
                            a.output
                        )
                    })
                    .collect();
                format!(
                    "aggregate group({}) {}",
                    attr_list(&agg.group_by),
                    specs.join(", ")
                )
            }
            UnaryOp::ProjectOut(attrs) => format!("project_out({})", attr_list(attrs)),
            UnaryOp::AddField { attr, value } => {
                format!("add_field {attr} = {}", pred::render_scalar(value))
            }
            UnaryOp::SurrogateKey {
                key,
                surrogate,
                lookup,
            } => {
                format!("surrogate_key {key} -> {surrogate} via {}", quote(lookup))
            }
        },
    })
}

/// Digest of a workflow's *family identity*: the lifelong activity
/// id → operator binding plus the recordset names, kinds and schemata —
/// and nothing else. Graph wiring, selectivities and row estimates are
/// deliberately excluded, so every state a swap chain can reach, and
/// every calibration re-seeding, digests identically. Cross-request
/// caches keyed by this digest ([`crate::opt::MoveMemo`], engine result
/// caches, calibration stores) are sound because equal digests imply the
/// stable id ↔ payload binding their entries rely on; a state whose
/// activity set differs (e.g. a FAC/DIS product) digests differently and
/// lands in its own family — forfeiting sharing, never corrupting it.
///
/// Fails exactly where [`render`] does: on merged activities, an
/// optimizer-internal construct the wire format cannot carry.
pub fn family_digest(wf: &Workflow) -> Result<u128> {
    use crate::signature::Fp128;
    let graph = wf.graph();
    let mut recordsets: Vec<String> = Vec::new();
    let mut activities: Vec<String> = Vec::new();
    for id in graph.topo_order()? {
        match graph.node(id)? {
            Node::Recordset(rs) => recordsets.push(format!(
                "R\x1f{}\x1f{}\x1f{}",
                rs.name,
                rs.kind.tag(),
                attr_list(rs.schema.attrs())
            )),
            Node::Activity(act) => {
                activities.push(format!("A\x1f{}\x1f{}", act.id, render_op(&act.op)?))
            }
        }
    }
    // Canonical order, not graph order: two states of one family may
    // topologically sort differently.
    recordsets.sort();
    activities.sort();
    let mut fp = Fp128::new();
    for line in recordsets.iter().chain(activities.iter()) {
        fp.write(line.as_bytes());
        fp.write(b"\n");
    }
    Ok(fp.finish())
}

/// Parse a workflow from text.
pub fn parse(text: &str) -> Result<Workflow> {
    let mut b = WorkflowBuilder::new();
    let mut names: BTreeMap<String, NodeId> = BTreeMap::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut c = Cursor::new(line)?;
        let kw = c.expect_ident()?;
        match kw.as_str() {
            "source" => {
                let name = c.expect_str()?;
                let kind = parse_kind(&mut c)?;
                c.expect_keyword("rows")?;
                c.expect_punct("=")?;
                let rows = c.expect_number()?;
                let attrs = c.ident_list()?;
                c.expect_end()?;
                let schema = Schema::of(attrs);
                let id = match kind {
                    RecordsetKind::Table => b.source(&name, schema, rows),
                    RecordsetKind::File => b.source_file(&name, schema, rows),
                };
                names.insert(quote(&name), id);
            }
            "activity" => {
                let handle = c.expect_ident()?;
                let label = c.expect_str()?;
                c.expect_punct("=")?;
                let (op, sel) = parse_op(&mut c)?;
                c.expect_punct("<-")?;
                let inputs = parse_refs(&mut c, &names)?;
                c.expect_end()?;
                let id = match (op, inputs.as_slice()) {
                    (Op::Unary(u), [single]) => {
                        let u = match sel {
                            Some(s) => u.with_selectivity(s),
                            None => u,
                        };
                        b.unary(&label, u, *single)
                    }
                    (Op::Binary(op2), [l, r]) => b.binary(&label, op2, *l, *r),
                    (Op::Unary(_), inputs) => {
                        return Err(CoreError::Schema(format!(
                            "activity {handle} is unary but has {} inputs",
                            inputs.len()
                        )))
                    }
                    (Op::Binary(_), inputs) => {
                        return Err(CoreError::Schema(format!(
                            "activity {handle} is binary but has {} inputs",
                            inputs.len()
                        )))
                    }
                    (Op::Merged(_), _) => unreachable!("parser never builds merged ops"),
                };
                names.insert(handle, id);
            }
            "recordset" | "target" => {
                let name = c.expect_str()?;
                let kind = parse_kind(&mut c)?;
                let schema = if kw == "target" {
                    Schema::of(c.ident_list()?)
                } else {
                    Schema::empty()
                };
                c.expect_punct("<-")?;
                let inputs = parse_refs(&mut c, &names)?;
                c.expect_end()?;
                let [input] = inputs.as_slice() else {
                    return Err(CoreError::Schema(format!(
                        "recordset {name} must have exactly one input"
                    )));
                };
                let id = match kind {
                    RecordsetKind::Table => b.recordset(&name, schema, *input),
                    RecordsetKind::File => {
                        // The builder's recordset() makes tables; record
                        // files mid-flow share the same semantics here.
                        b.recordset(&name, schema, *input)
                    }
                };
                names.insert(quote(&name), id);
            }
            other => {
                return Err(CoreError::Schema(format!(
                    "unknown directive `{other}` in `{line}`"
                )))
            }
        }
    }
    b.build()
}

fn parse_kind(c: &mut Cursor) -> Result<RecordsetKind> {
    let k = c.expect_ident()?;
    match k.as_str() {
        "table" => Ok(RecordsetKind::Table),
        "file" => Ok(RecordsetKind::File),
        other => Err(c.err(format!("expected table|file, got `{other}`"))),
    }
}

fn parse_refs(c: &mut Cursor, names: &BTreeMap<String, NodeId>) -> Result<Vec<NodeId>> {
    let mut out = Vec::new();
    loop {
        let key = match c.next() {
            Some(Token::Ident(s)) => s,
            Some(Token::Str(s)) => quote(&s),
            other => return Err(c.err(format!("expected node reference, got {other:?}"))),
        };
        let id = names
            .get(&key)
            .ok_or_else(|| c.err(format!("unknown node reference `{key}`")))?;
        out.push(*id);
        if !c.eat_punct(",") {
            return Ok(out);
        }
    }
}

/// Parse an op spec plus an optional trailing `sel=<f>`.
fn parse_op(c: &mut Cursor) -> Result<(Op, Option<f64>)> {
    let head = c.expect_ident()?;
    let op = match head.as_str() {
        "filter" => Op::Unary(UnaryOp::filter(pred::parse(c)?)),
        "not_null" => {
            let attrs = c.ident_list()?;
            let [a] = attrs.as_slice() else {
                return Err(c.err("not_null takes exactly one attribute"));
            };
            Op::Unary(UnaryOp::not_null(a.as_str()))
        }
        "pk_check" => Op::Unary(UnaryOp::PkCheck {
            key: c.ident_list()?.into_iter().map(Attr::new).collect(),
            selectivity: 1.0,
        }),
        "dedup" => Op::Unary(UnaryOp::Dedup { selectivity: 1.0 }),
        "function" => {
            let fname = c.expect_ident()?;
            let inputs: Vec<Attr> = c.ident_list()?.into_iter().map(Attr::new).collect();
            c.expect_punct("->")?;
            let output = Attr::new(c.expect_ident()?);
            let keep_inputs = c.eat_keyword("keep");
            let injective = !c.eat_keyword("noninjective");
            Op::Unary(UnaryOp::Function(FunctionApp {
                function: fname,
                inputs,
                output,
                keep_inputs,
                injective,
            }))
        }
        "aggregate" => {
            c.expect_keyword("group")?;
            let group_by = c.ident_list()?;
            let mut aggregates = Vec::new();
            loop {
                let fname = c.expect_ident()?;
                let func = match fname.as_str() {
                    "sum" => AggFunc::Sum,
                    "count" => AggFunc::Count,
                    "min" => AggFunc::Min,
                    "max" => AggFunc::Max,
                    "avg" => AggFunc::Avg,
                    other => return Err(c.err(format!("unknown aggregate `{other}`"))),
                };
                c.expect_punct("(")?;
                let input = Attr::new(c.expect_ident()?);
                c.expect_punct("->")?;
                let output = Attr::new(c.expect_ident()?);
                c.expect_punct(")")?;
                aggregates.push(AggSpec {
                    func,
                    input,
                    output,
                });
                if !c.eat_punct(",") {
                    break;
                }
            }
            Op::Unary(UnaryOp::aggregate(Aggregation::new(group_by, aggregates)))
        }
        "project_out" => Op::Unary(UnaryOp::project_out(c.ident_list()?)),
        "add_field" => {
            let attr = Attr::new(c.expect_ident()?);
            c.expect_punct("=")?;
            let value = pred::parse_scalar(c)?;
            Op::Unary(UnaryOp::AddField { attr, value })
        }
        "surrogate_key" => {
            let key = Attr::new(c.expect_ident()?);
            c.expect_punct("->")?;
            let surrogate = Attr::new(c.expect_ident()?);
            c.expect_keyword("via")?;
            let lookup = c.expect_str()?;
            Op::Unary(UnaryOp::SurrogateKey {
                key,
                surrogate,
                lookup,
            })
        }
        "union" => Op::Binary(BinaryOp::Union),
        "difference" => Op::Binary(BinaryOp::Difference),
        "intersection" => Op::Binary(BinaryOp::Intersection),
        "join" => Op::Binary(BinaryOp::Join(
            c.ident_list()?.into_iter().map(Attr::new).collect(),
        )),
        other => return Err(c.err(format!("unknown operation `{other}`"))),
    };
    let sel = if c.eat_keyword("sel") {
        c.expect_punct("=")?;
        Some(c.expect_number()?)
    } else {
        None
    };
    Ok((op, sel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postcond::equivalent;
    use crate::predicate::Predicate;

    fn sample() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("PARTS1", Schema::of(["pkey", "date", "euro_cost"]), 300.0);
        let s2 = b.source_file(
            "parts2.rec",
            Schema::of(["pkey", "date", "dept", "dollar_cost"]),
            9000.0,
        );
        let nn = b.unary(
            "NN",
            UnaryOp::not_null("euro_cost").with_selectivity(0.95),
            s1,
        );
        let d2e = b.unary(
            "$2E",
            UnaryOp::function("dollar2euro", ["dollar_cost"], "euro_cost"),
            s2,
        );
        let agg = b.unary(
            "γ",
            UnaryOp::aggregate(Aggregation::sum(["pkey", "date"], "euro_cost", "euro_cost"))
                .with_selectivity(0.05),
            d2e,
        );
        let u = b.binary("U", BinaryOp::Union, nn, agg);
        let stage = b.recordset("STAGE", Schema::empty(), u);
        let sel = b.unary(
            "σ(€)",
            UnaryOp::filter(Predicate::ge("euro_cost", 100.0)).with_selectivity(0.4),
            stage,
        );
        let sk = b.unary("SK", UnaryOp::surrogate_key("pkey", "sk", "DIM_PARTS"), sel);
        b.target("DW", Schema::of(["date", "euro_cost", "sk"]), sk);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_signature_and_equivalence() {
        let wf = sample();
        let text = render(&wf).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(wf.signature(), back.signature(), "text was:\n{text}");
        assert!(equivalent(&wf, &back).unwrap());
        // Stable under a second trip.
        assert_eq!(text, render(&back).unwrap());
    }

    #[test]
    fn rendered_text_is_human_shaped() {
        let text = render(&sample()).unwrap();
        assert!(text.contains("source \"PARTS1\" table rows=300"), "{text}");
        assert!(text.contains("file rows=9000"), "{text}");
        assert!(text.contains("filter euro_cost >= 100.0 sel=0.4"), "{text}");
        assert!(
            text.contains("surrogate_key pkey -> sk via \"DIM_PARTS\""),
            "{text}"
        );
        assert!(text.contains("recordset \"STAGE\""), "{text}");
        assert!(text.contains("target \"DW\""), "{text}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let wf = sample();
        let mut text = String::from("# header comment\n\n");
        text.push_str(&render(&wf).unwrap());
        text.push_str("\n# trailing comment\n");
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn every_unary_op_roundtrips() {
        use crate::scalar::Scalar;
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "a", "b", "day"]), 10.0);
        let mut cur = b.unary(
            "pk",
            UnaryOp::PkCheck {
                key: vec!["k".into()],
                selectivity: 0.9,
            },
            s,
        );
        cur = b.unary("dd", UnaryOp::Dedup { selectivity: 0.8 }, cur);
        cur = b.unary(
            "f",
            UnaryOp::Function(FunctionApp {
                function: "bucket10".into(),
                inputs: vec!["a".into()],
                output: "a_bkt".into(),
                keep_inputs: true,
                injective: false,
            }),
            cur,
        );
        cur = b.unary("π", UnaryOp::project_out(["b"]), cur);
        cur = b.unary(
            "add",
            UnaryOp::AddField {
                attr: "src".into(),
                value: Scalar::from("S"),
            },
            cur,
        );
        cur = b.unary(
            "σ",
            UnaryOp::filter(Predicate::in_list("src", ["S", "T"]).and(Predicate::not_null("a"))),
            cur,
        );
        b.target("T", Schema::of(["k", "a", "day", "a_bkt", "src"]), cur);
        let wf = b.build().unwrap();
        let text = render(&wf).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(wf.signature(), back.signature(), "{text}");
        assert!(equivalent(&wf, &back).unwrap());
        assert!(text.contains("keep noninjective"), "{text}");
    }

    #[test]
    fn binary_ops_roundtrip() {
        for op in [
            BinaryOp::Difference,
            BinaryOp::Intersection,
            BinaryOp::Join(vec!["k".into()]),
        ] {
            let mut b = WorkflowBuilder::new();
            let (lschema, rschema) = match &op {
                BinaryOp::Join(_) => (Schema::of(["k", "x"]), Schema::of(["k", "y"])),
                _ => (Schema::of(["k", "x"]), Schema::of(["k", "x"])),
            };
            let s1 = b.source("L", lschema, 10.0);
            let s2 = b.source("R", rschema, 10.0);
            let j = b.binary("op", op, s1, s2);
            b.target("T", Schema::empty(), j);
            let wf = b.build().unwrap();
            let text = render(&wf).unwrap();
            let back = parse(&text).unwrap();
            assert_eq!(wf.signature(), back.signature(), "{text}");
        }
    }

    #[test]
    fn merged_activities_are_rejected_with_guidance() {
        use crate::transition::{Merge, Transition};
        let wf = sample();
        let acts = wf.activities().unwrap();
        // Merge σ(€) and SK (the adjacent unary pair after the staging
        // recordset; index 3 is the union).
        let merged = Merge::new(acts[4], acts[5]).apply(&wf).unwrap();
        let err = render(&merged).unwrap_err();
        assert!(err.to_string().contains("Split"), "{err}");
    }

    #[test]
    fn parse_rejects_unknown_references_and_directives() {
        assert!(parse("activity a1 \"x\" = dedup <- ghost").is_err());
        assert!(parse("widget \"x\"").is_err());
        assert!(
            parse("source \"S\" table rows=1 (a)\nactivity a1 \"u\" = union <- \"S\"").is_err()
        );
    }

    #[test]
    fn fig1_example_from_module_docs_parses() {
        let text = r#"
            source "PARTS1" table rows=300 (pkey, source, date, euro_cost)
            source "PARTS2" table rows=9000 (pkey, source, date, dept, dollar_cost)
            activity a1 "NN" = not_null(euro_cost) sel=0.95 <- "PARTS1"
            activity a2 "$2E" = function dollar2euro(dollar_cost) -> euro_cost <- "PARTS2"
            activity a3 "A2E" = function am2eu(date) -> date <- a2
            activity a4 "γ" = aggregate group(pkey, source, date) sum(euro_cost -> euro_cost) sel=0.033 <- a3
            activity a5 "U" = union <- a1, a4
            activity a6 "σ(€)" = filter euro_cost >= 100.0 sel=0.4 <- a5
            target "DW" table (pkey, source, date, euro_cost) <- a6
        "#;
        let wf = parse(text).unwrap();
        assert_eq!(wf.signature().to_string(), "((1.3)//(2.4.5.6)).7.8.9");
    }

    #[test]
    fn family_digest_survives_swaps_and_calibration() {
        use crate::opt::enumerate_moves;
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 100.0);
        let f = b.unary(
            "σ",
            UnaryOp::filter(Predicate::gt("v", 1)).with_selectivity(0.5),
            s,
        );
        let sk = b.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), f);
        b.target("T", Schema::of(["sk", "v"]), sk);
        let wf = b.build().unwrap();
        let base = family_digest(&wf).unwrap();

        // A swapped sibling stays in the family (different signature,
        // same id → op binding).
        let swap = enumerate_moves(&wf)
            .unwrap()
            .into_iter()
            .find(|m| matches!(m, crate::opt::Move::Swap(_)))
            .expect("chain has a swap");
        let swapped = swap.apply(&wf).unwrap();
        assert_ne!(wf.signature(), swapped.signature());
        assert_eq!(family_digest(&swapped).unwrap(), base);

        // Re-seeded selectivities stay in the family.
        let acts = wf.activities().unwrap();
        let reseeded = wf.with_selectivity(acts[0], 0.123).unwrap();
        assert_eq!(family_digest(&reseeded).unwrap(), base);

        // A different operator payload leaves it.
        let mut b2 = WorkflowBuilder::new();
        let s = b2.source("S", Schema::of(["k", "v"]), 100.0);
        let f = b2.unary("σ", UnaryOp::filter(Predicate::gt("v", 2)), s);
        let sk = b2.unary("SK", UnaryOp::surrogate_key("k", "sk", "L"), f);
        b2.target("T", Schema::of(["sk", "v"]), sk);
        let other = b2.build().unwrap();
        assert_ne!(family_digest(&other).unwrap(), base);
    }

    #[test]
    fn family_digest_is_stable_across_parse_roundtrip() {
        let text = r#"
            source "S" table rows=10 (a, b)
            activity a1 "σ" = filter a >= 1.0 sel=0.5 <- "S"
            activity a2 "NN" = not_null(b) <- a1
            target "T" table (a, b) <- a2
        "#;
        let wf = parse(text).unwrap();
        let again = parse(&render(&wf).unwrap()).unwrap();
        assert_eq!(family_digest(&wf).unwrap(), family_digest(&again).unwrap());
    }
}
