//! Tokenizer for the workflow text format.

use crate::error::{CoreError, Result};

/// A token of the workflow DSL.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`filter`, `pkey`, …).
    Ident(String),
    /// Double-quoted string (escapes: `\"`, `\\`).
    Str(String),
    /// Numeric literal (held as text; the parser decides int vs float).
    Number(String),
    /// Punctuation / operator.
    Punct(&'static str),
}

impl Token {
    /// Identifier payload, if this is one.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }
}

const PUNCTS: &[&str] = &[
    "<-", "->", "<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ";", "{", "}",
];

/// Tokenize one logical line.
pub fn tokenize(line: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '#' {
            break; // trailing comment
        }
        if c == '"' {
            let mut s = String::new();
            i += 1;
            loop {
                match bytes.get(i) {
                    Some('"') => {
                        i += 1;
                        break;
                    }
                    Some('\\') => {
                        match bytes.get(i + 1) {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            other => {
                                return Err(CoreError::Schema(format!(
                                    "bad escape {other:?} in string literal"
                                )))
                            }
                        }
                        i += 2;
                    }
                    Some(&c) => {
                        s.push(c);
                        i += 1;
                    }
                    None => {
                        return Err(CoreError::Schema(format!(
                            "unterminated string in `{line}`"
                        )))
                    }
                }
            }
            out.push(Token::Str(s));
            continue;
        }
        // Multi-char puncts first.
        for p in PUNCTS {
            if line_at(&bytes, i, p) {
                out.push(Token::Punct(p));
                i += p.chars().count();
                continue 'outer;
            }
        }
        if c.is_ascii_digit()
            || (c == '-' && matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit()))
        {
            let start = i;
            i += 1;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == '.'
                    || bytes[i] == 'e'
                    || bytes[i] == 'E'
                    || (bytes[i] == '-' && matches!(bytes[i - 1], 'e' | 'E')))
            {
                i += 1;
            }
            out.push(Token::Number(bytes[start..i].iter().collect()));
            continue;
        }
        if c.is_alphanumeric() || c == '_' || c == '.' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '.')
            {
                i += 1;
            }
            out.push(Token::Ident(bytes[start..i].iter().collect()));
            continue;
        }
        return Err(CoreError::Schema(format!(
            "unexpected character `{c}` in `{line}`"
        )));
    }
    Ok(out)
}

fn line_at(bytes: &[char], i: usize, pat: &str) -> bool {
    let pat: Vec<char> = pat.chars().collect();
    bytes.len() >= i + pat.len() && bytes[i..i + pat.len()] == pat[..]
}

/// Cursor over a token list with expectation helpers.
pub struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
    line: String,
}

impl Cursor {
    /// Tokenize and wrap.
    pub fn new(line: &str) -> Result<Cursor> {
        Ok(Cursor {
            tokens: tokenize(line)?,
            pos: 0,
            line: line.to_owned(),
        })
    }

    /// Peek the next token.
    pub fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    /// Take the next token.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Error with line context.
    pub fn err(&self, msg: impl std::fmt::Display) -> CoreError {
        CoreError::Schema(format!("{msg} (in `{}`)", self.line.trim()))
    }

    /// Expect a specific punct.
    pub fn expect_punct(&mut self, p: &'static str) -> Result<()> {
        match self.next() {
            Some(Token::Punct(q)) if q == p => Ok(()),
            other => Err(self.err(format!("expected `{p}`, got {other:?}"))),
        }
    }

    /// Expect an identifier.
    pub fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }

    /// Expect a specific keyword.
    pub fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Token::Ident(s)) if s == kw => Ok(()),
            other => Err(self.err(format!("expected `{kw}`, got {other:?}"))),
        }
    }

    /// Expect a quoted string.
    pub fn expect_str(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(self.err(format!("expected string literal, got {other:?}"))),
        }
    }

    /// Expect a number, parsed as f64.
    pub fn expect_number(&mut self) -> Result<f64> {
        match self.next() {
            Some(Token::Number(s)) => s
                .parse()
                .map_err(|e| self.err(format!("bad number `{s}`: {e}"))),
            other => Err(self.err(format!("expected number, got {other:?}"))),
        }
    }

    /// Consume a punct if it is next; report whether it was.
    pub fn eat_punct(&mut self, p: &'static str) -> bool {
        if matches!(self.peek(), Some(Token::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume a keyword if it is next; report whether it was.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Are all tokens consumed?
    pub fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Fail unless at end.
    pub fn expect_end(&self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err(format!("trailing tokens from {:?}", self.peek())))
        }
    }

    /// Parse a parenthesized, comma-separated identifier list.
    pub fn ident_list(&mut self) -> Result<Vec<String>> {
        self.expect_punct("(")?;
        let mut out = Vec::new();
        if self.eat_punct(")") {
            return Ok(out);
        }
        loop {
            out.push(self.expect_ident()?);
            if self.eat_punct(")") {
                return Ok(out);
            }
            self.expect_punct(",")?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_mixed_line() {
        let toks = tokenize(r#"activity a3 "NN" = not_null(cost) sel=0.95 <- s1"#).unwrap();
        assert_eq!(toks[0], Token::Ident("activity".into()));
        assert_eq!(toks[2], Token::Str("NN".into()));
        assert!(toks.contains(&Token::Punct("<-")));
        assert!(toks.contains(&Token::Number("0.95".into())));
    }

    #[test]
    fn multichar_puncts_win_over_single() {
        let toks = tokenize("a <= b <> c <- d -> e").unwrap();
        let puncts: Vec<&Token> = toks
            .iter()
            .filter(|t| matches!(t, Token::Punct(_)))
            .collect();
        assert_eq!(
            puncts,
            vec![
                &Token::Punct("<="),
                &Token::Punct("<>"),
                &Token::Punct("<-"),
                &Token::Punct("->")
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize(r#""he said \"hi\" \\ back""#).unwrap();
        assert_eq!(toks, vec![Token::Str("he said \"hi\" \\ back".into())]);
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let toks = tokenize("-3 4.5 1e-3").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number("-3".into()),
                Token::Number("4.5".into()),
                Token::Number("1e-3".into())
            ]
        );
    }

    #[test]
    fn comments_are_stripped() {
        assert_eq!(tokenize("a b # rest ignored").unwrap().len(), 2);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn cursor_helpers() {
        let mut c = Cursor::new("filter (a, b)").unwrap();
        c.expect_keyword("filter").unwrap();
        assert_eq!(c.ident_list().unwrap(), vec!["a", "b"]);
        c.expect_end().unwrap();
    }
}
