//! Small, dependency-free pseudo-random number generator.
//!
//! The build environment is fully offline, so the workspace cannot pull
//! `rand`; everything that needs randomness — the workload generator, data
//! generation, randomized property tests — uses this module instead. The
//! generator is xoshiro256** seeded through SplitMix64: deterministic for a
//! given seed on every platform, which is exactly what seeded scenario
//! generation and reproducible test suites need. It is *not* cryptographic.

use std::ops::{Range, RangeInclusive};

/// A seeded xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Expand a 64-bit seed into a full generator state via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A float uniform in `[0, 1)` (53 significant bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `range` (half-open or inclusive, integer or float).
    /// Panics on an empty range, matching `rand`'s contract. Generic over
    /// the *output* type so integer literals infer from context
    /// (`Scalar::Int(rng.gen_range(1..200))` samples an `i64`).
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform index below `bound` (multiply-shift; bias is ≤ bound/2⁶⁴,
    /// irrelevant at the bounds used here).
    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Ranges [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draw one uniform value.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                assert!(span < u64::MAX, "gen_range: range too wide");
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i32, i64, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding onto the open bound.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(1..200i64);
            assert!((1..200).contains(&i));
            let u = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&u));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let neg = rng.gen_range(-100..100i32);
            assert!((-100..100).contains(&neg));
        }
    }

    #[test]
    fn every_inclusive_value_is_reachable() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = Rng::seed_from_u64(13);
        let mean: f64 = (0..10_000).map(|_| rng.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
