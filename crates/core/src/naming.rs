//! The naming principle (§3.1).
//!
//! Attribute names in source systems are unreliable: `PARTS1.COST` (Euros)
//! and `PARTS2.COST` (Dollars) are homonyms naming *different* real-world
//! entities, while `DATE` in American and European format are different names
//! for the *same* grouper entity. The paper resolves this with a set Σn of
//! **reference attribute names** and a mapping from every physical attribute
//! to exactly one reference name, under the principle:
//!
//! 1. all synonyms refer to the same real-world entity, and
//! 2. different reference names refer to different entities.
//!
//! [`NamingRegistry`] maintains that mapping and rejects violations. Once a
//! workflow is expressed purely in reference names the optimizer can rely on
//! name equality as semantic equality — this is what makes swap condition 3
//! sound (see the `$2€`/`σ(€)` discussion around Fig. 5 of the paper).

use std::collections::BTreeMap;

use crate::error::{CoreError, Result};
use crate::schema::Attr;

/// Maps physical attribute names (qualified by their recordset) to reference
/// attribute names in Σn.
#[derive(Debug, Clone, Default)]
pub struct NamingRegistry {
    /// (recordset, physical name) → reference name.
    map: BTreeMap<(String, String), Attr>,
    /// Reference names registered so far (Σn).
    reference: BTreeMap<String, ReferenceEntry>,
}

#[derive(Debug, Clone)]
struct ReferenceEntry {
    /// Free-text description of the real-world entity, used to detect
    /// accidental re-use of a reference name for a different entity.
    entity: String,
}

impl NamingRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a reference attribute name for a real-world `entity`
    /// description. Declaring the same name twice is fine if the entity
    /// matches; mapping one name to two entities violates principle (2).
    pub fn declare(
        &mut self,
        reference: impl Into<String>,
        entity: impl Into<String>,
    ) -> Result<Attr> {
        let name = reference.into();
        let entity = entity.into();
        match self.reference.get(&name) {
            Some(existing) if existing.entity != entity => Err(CoreError::Naming(format!(
                "reference name `{name}` already denotes entity `{}`; cannot re-declare it as `{entity}`",
                existing.entity
            ))),
            Some(_) => Ok(Attr::new(&name)),
            None => {
                self.reference.insert(name.clone(), ReferenceEntry { entity });
                Ok(Attr::new(&name))
            }
        }
    }

    /// Map a physical attribute (`recordset`.`physical`) to a declared
    /// reference name. Each physical attribute maps to exactly one reference
    /// name; remapping to a different one violates principle (1).
    pub fn map(
        &mut self,
        recordset: impl Into<String>,
        physical: impl Into<String>,
        reference: &Attr,
    ) -> Result<()> {
        if !self.reference.contains_key(reference.name()) {
            return Err(CoreError::Naming(format!(
                "reference name `{reference}` was never declared"
            )));
        }
        let key = (recordset.into(), physical.into());
        match self.map.get(&key) {
            Some(prev) if prev != reference => Err(CoreError::Naming(format!(
                "attribute `{}.{}` is already mapped to `{prev}`; cannot remap to `{reference}`",
                key.0, key.1
            ))),
            _ => {
                self.map.insert(key, reference.clone());
                Ok(())
            }
        }
    }

    /// Resolve a physical attribute to its reference name.
    pub fn resolve(&self, recordset: &str, physical: &str) -> Option<&Attr> {
        self.map.get(&(recordset.to_owned(), physical.to_owned()))
    }

    /// Is `name` a declared reference name?
    pub fn is_reference(&self, name: &str) -> bool {
        self.reference.contains_key(name)
    }

    /// The entity a reference name denotes.
    pub fn entity_of(&self, name: &str) -> Option<&str> {
        self.reference.get(name).map(|e| e.entity.as_str())
    }

    /// All physical attributes mapped to `reference` (its synonym set).
    pub fn synonyms(&self, reference: &Attr) -> Vec<(&str, &str)> {
        self.map
            .iter()
            .filter(|(_, r)| *r == reference)
            .map(|((rs, ph), _)| (rs.as_str(), ph.as_str()))
            .collect()
    }

    /// Number of declared reference names.
    pub fn reference_count(&self) -> usize {
        self.reference.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> NamingRegistry {
        NamingRegistry::new()
    }

    #[test]
    fn declare_and_map_roundtrip() {
        let mut r = registry();
        let cost_eur = r.declare("euro_cost", "part cost in Euros").unwrap();
        r.map("PARTS1", "COST", &cost_eur).unwrap();
        assert_eq!(r.resolve("PARTS1", "COST"), Some(&cost_eur));
        assert!(r.is_reference("euro_cost"));
    }

    #[test]
    fn homonyms_map_to_distinct_references() {
        // The paper's example: PARTS1.COST is Euros, PARTS2.COST is Dollars.
        let mut r = registry();
        let eur = r.declare("euro_cost", "part cost in Euros").unwrap();
        let usd = r.declare("dollar_cost", "part cost in Dollars").unwrap();
        r.map("PARTS1", "COST", &eur).unwrap();
        r.map("PARTS2", "COST", &usd).unwrap();
        assert_ne!(r.resolve("PARTS1", "COST"), r.resolve("PARTS2", "COST"));
    }

    #[test]
    fn synonyms_map_to_one_reference() {
        // American and European dates are the same grouper entity (§3.1).
        let mut r = registry();
        let date = r.declare("date", "supply date (as grouper)").unwrap();
        r.map("PARTS1", "DATE", &date).unwrap();
        r.map("PARTS2", "DATE", &date).unwrap();
        let mut syn = r.synonyms(&date);
        syn.sort();
        assert_eq!(syn, vec![("PARTS1", "DATE"), ("PARTS2", "DATE")]);
    }

    #[test]
    fn redeclaring_same_entity_is_idempotent() {
        let mut r = registry();
        r.declare("pkey", "part key").unwrap();
        assert!(r.declare("pkey", "part key").is_ok());
    }

    #[test]
    fn redeclaring_different_entity_fails() {
        let mut r = registry();
        r.declare("cost", "Euros").unwrap();
        let err = r.declare("cost", "Dollars").unwrap_err();
        assert!(matches!(err, CoreError::Naming(_)));
    }

    #[test]
    fn remapping_physical_attr_fails() {
        let mut r = registry();
        let eur = r.declare("euro_cost", "Euros").unwrap();
        let usd = r.declare("dollar_cost", "Dollars").unwrap();
        r.map("P", "COST", &eur).unwrap();
        let err = r.map("P", "COST", &usd).unwrap_err();
        assert!(matches!(err, CoreError::Naming(_)));
        // Idempotent remap to the same reference is allowed.
        assert!(r.map("P", "COST", &eur).is_ok());
    }

    #[test]
    fn mapping_to_undeclared_reference_fails() {
        let mut r = registry();
        let ghost = Attr::new("ghost");
        assert!(matches!(
            r.map("P", "X", &ghost).unwrap_err(),
            CoreError::Naming(_)
        ));
    }

    #[test]
    fn entity_lookup() {
        let mut r = registry();
        r.declare("qty", "quantity supplied").unwrap();
        assert_eq!(r.entity_of("qty"), Some("quantity supplied"));
        assert_eq!(r.entity_of("nope"), None);
        assert_eq!(r.reference_count(), 1);
    }
}
