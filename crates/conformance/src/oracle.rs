//! The execution-backed equivalence oracle.
//!
//! An [`Oracle`] is built once per scenario from the *original* workflow
//! and an executor over seeded data; [`Oracle::check`] then judges any
//! candidate state the optimizer (or a replayed chain) produced from it:
//!
//! 1. **Multiset equality** — the candidate must load exactly the same bag
//!    of rows into every target recordset, order-insensitive, with
//!    surrogate-key columns rank-normalized (two runs may number
//!    surrogates differently; only the key *structure* must match).
//! 2. **Cost cross-validation** — the row-count cost model, seeded with
//!    the selectivities *observed* on the original run, must predict the
//!    candidate's observed per-target cardinalities within a tight
//!    tolerance, and its per-activity processed-row counts within a loose
//!    one. Target-level drift is failure-grade: on the union-only corpus
//!    the model's propagation is exact, so drift means either a broken
//!    rewrite or a broken model. Activity-level drift is warning-grade
//!    (correlated predicates legitimately break the independence
//!    assumption mid-pipeline).

use std::collections::{BTreeMap, BTreeSet};

use etlopt_core::activity::{ActivityId, Op};
use etlopt_core::cost::RowCountModel;
use etlopt_core::graph::Node;
use etlopt_core::oracle::{
    cross_validate, predicted_processed_rows, predicted_target_rows, RowCountMismatch, Tolerance,
};
use etlopt_core::schema::Attr;
use etlopt_core::semantics::{BinaryOp, UnaryOp};
use etlopt_core::trace::ExecCounters;
use etlopt_core::workflow::Workflow;
use etlopt_engine::{Catalog, ExecResult, ExecStats, Executor, Result, StreamConfig};
use etlopt_workload::calibrate::MIN_SELECTIVITY;
use etlopt_workload::datagen;

/// One way a candidate state failed conformance.
#[derive(Debug, Clone)]
pub enum Failure {
    /// The candidate would not execute at all.
    Execution(String),
    /// The candidate loads a different set of target recordsets.
    TargetSet {
        /// Targets of the original.
        expected: Vec<String>,
        /// Targets of the candidate.
        actual: Vec<String>,
    },
    /// A target's bag of rows differs from the original's.
    Multiset {
        /// Target recordset name.
        target: String,
        /// Rows the original loaded.
        expected_rows: usize,
        /// Rows the candidate loaded.
        actual_rows: usize,
    },
    /// Predicted target cardinalities drifted outside tolerance.
    RowCountDrift(Vec<RowCountMismatch>),
    /// Adjustable activities in the candidate that the original run never
    /// observed, so no selectivity could be transferred. Cross-validating
    /// such a candidate would silently price the unobserved activities as
    /// selectivity-1 pass-throughs — an unsound baseline.
    Uncalibrated(Vec<String>),
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Execution(e) => write!(f, "candidate failed to execute: {e}"),
            Failure::TargetSet { expected, actual } => {
                write!(
                    f,
                    "target set differs: expected {expected:?}, got {actual:?}"
                )
            }
            Failure::Multiset {
                target,
                expected_rows,
                actual_rows,
            } => write!(
                f,
                "target `{target}` multiset differs ({expected_rows} vs {actual_rows} rows)"
            ),
            Failure::RowCountDrift(ms) => {
                write!(f, "cost model drift: ")?;
                for (i, m) in ms.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{m}")?;
                }
                Ok(())
            }
            Failure::Uncalibrated(acts) => {
                write!(
                    f,
                    "no observed statistics for activities {acts:?}; cannot calibrate"
                )
            }
        }
    }
}

/// The oracle's judgement of one candidate.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Failure-grade findings; empty means the candidate conforms.
    pub failures: Vec<Failure>,
    /// Warning-grade per-activity prediction drift (reported, not fatal).
    pub warnings: Vec<RowCountMismatch>,
}

impl Verdict {
    /// Did the candidate pass?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line summaries of all failures.
    pub fn failure_lines(&self) -> Vec<String> {
        self.failures.iter().map(Failure::to_string).collect()
    }
}

/// The standard executor for a seeded scenario: attribute-convention
/// random data for every source, `rows_per_source` rows each. The data
/// seed is derived from the scenario seed so a (seed, category, rows)
/// triple fully determines the oracle's inputs.
pub fn scenario_executor(wf: &Workflow, rows_per_source: usize, seed: u64) -> Executor {
    Executor::new(datagen::catalog_for(
        wf,
        rows_per_source,
        seed ^ 0xD1FF_C0DE,
    ))
}

/// Run one scenario through **both executor backends** and demand exact
/// agreement: identical target tables (schema, rows, *and* row order) and
/// bit-identical [`ExecStats`]. This is stricter than the multiset oracle
/// on purpose — the streaming runtime must be observationally
/// indistinguishable from the materializing one, not merely equivalent.
/// Returns the streaming run's pool counters (so callers can additionally
/// assert that a small frame budget really spilled) or a one-line
/// description of the first divergence.
pub fn backend_differential(
    wf: &Workflow,
    rows_per_source: usize,
    seed: u64,
    cfg: StreamConfig,
) -> std::result::Result<ExecCounters, String> {
    let exec = scenario_executor(wf, rows_per_source, seed).with_stream_config(cfg);
    let mat = exec
        .run_materialize(wf)
        .map_err(|e| format!("materialize backend failed: {e}"))?;
    let stream = exec
        .run_stream(wf)
        .map_err(|e| format!("stream backend failed: {e}"))?;
    for (name, want) in &mat.targets {
        match stream.result.targets.get(name) {
            None => return Err(format!("stream backend lost target `{name}`")),
            Some(got) if got != want => {
                return Err(format!(
                    "target `{name}` diverges: materialize loaded {} rows, stream {} \
                     (tables must be identical including row order)",
                    want.len(),
                    got.len(),
                ));
            }
            Some(_) => {}
        }
    }
    if stream.result.targets.len() != mat.targets.len() {
        return Err(format!(
            "stream backend produced {} targets, materialize {}",
            stream.result.targets.len(),
            mat.targets.len(),
        ));
    }
    if stream.result.stats != mat.stats {
        return Err(format!(
            "ExecStats diverge: materialize {:?} vs stream {:?}",
            mat.stats, stream.result.stats,
        ));
    }
    // A partition-parallel stream must also be indistinguishable from the
    // sequential stream — checked directly, not just via materialize, so a
    // divergence names the thread count that introduced it.
    if cfg.parallelism > 1 {
        let seq = scenario_executor(wf, rows_per_source, seed)
            .with_stream_config(StreamConfig {
                parallelism: 1,
                ..cfg
            })
            .run_stream(wf)
            .map_err(|e| format!("1-thread stream backend failed: {e}"))?;
        if seq.result.targets != stream.result.targets {
            return Err(format!(
                "targets diverge between 1 and {} stream workers",
                cfg.parallelism,
            ));
        }
        if seq.result.stats != stream.result.stats {
            return Err(format!(
                "ExecStats diverge between 1 and {} stream workers: {:?} vs {:?}",
                cfg.parallelism, seq.result.stats, stream.result.stats,
            ));
        }
        // Both parallel coordinators — pipelined (the default) and
        // round-synchronous — must agree with each other too, so a
        // divergence names the backend that introduced it.
        let other = scenario_executor(wf, rows_per_source, seed)
            .with_stream_config(StreamConfig {
                pipeline: !cfg.pipeline,
                ..cfg
            })
            .run_stream(wf)
            .map_err(|e| format!("alternate parallel backend failed: {e}"))?;
        if other.result.targets != stream.result.targets {
            return Err(format!(
                "targets diverge between the pipelined and round-synchronous \
                 coordinators at {} workers",
                cfg.parallelism,
            ));
        }
        if other.result.stats != stream.result.stats {
            return Err(format!(
                "ExecStats diverge between the pipelined and round-synchronous \
                 coordinators at {} workers: {:?} vs {:?}",
                cfg.parallelism, other.result.stats, stream.result.stats,
            ));
        }
    }
    Ok(stream.counters)
}

/// Execution-backed equivalence oracle for one original workflow.
#[derive(Debug)]
pub struct Oracle {
    exec: Executor,
    original: Workflow,
    base: ExecResult,
    /// Surrogate columns of the original, rank-normalized before multiset
    /// comparison.
    surrogates: Vec<Attr>,
    /// Failure-grade tolerance for per-target predictions.
    target_tol: Tolerance,
    /// Warning-grade tolerance for per-activity predictions.
    activity_tol: Tolerance,
}

impl Oracle {
    /// Build an oracle: runs the original once and caches its result.
    pub fn new(original: &Workflow, exec: Executor) -> Result<Self> {
        let base = exec.run(original)?;
        Ok(Oracle {
            exec,
            original: original.clone(),
            surrogates: surrogate_attrs(original),
            base,
            // Target predictions telescope exactly on union-only corpora
            // (products of observed ratios are order-invariant), so even a
            // one-row drift is failure-grade; the absolute slack only
            // absorbs float noise and the MIN_SELECTIVITY clamp.
            target_tol: Tolerance::new(0.002, 0.5),
            // Per-activity predictions legitimately drift mid-pipeline
            // (clone-pooled selectivities, correlated predicates) — loose,
            // and warning-grade only.
            activity_tol: Tolerance::new(0.25, 8.0),
        })
    }

    /// The executor (and with it the catalog) this oracle judges against.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The original workflow the oracle was built from.
    pub fn original(&self) -> &Workflow {
        &self.original
    }

    /// The cached original-run result.
    pub fn baseline(&self) -> &ExecResult {
        &self.base
    }

    /// Judge one candidate state against the original.
    pub fn check(&self, candidate: &Workflow) -> Verdict {
        let mut failures = Vec::new();
        let mut warnings = Vec::new();

        let run = match self.exec.run(candidate) {
            Ok(run) => run,
            Err(e) => {
                return Verdict {
                    failures: vec![Failure::Execution(e.to_string())],
                    warnings,
                }
            }
        };

        // 1. Per-target multiset equality, surrogates rank-normalized.
        let expected: Vec<String> = self.base.targets.keys().cloned().collect();
        let actual: Vec<String> = run.targets.keys().cloned().collect();
        if expected != actual {
            failures.push(Failure::TargetSet { expected, actual });
        } else {
            let mut norm_cols = self.surrogates.clone();
            for a in surrogate_attrs(candidate) {
                if !norm_cols.contains(&a) {
                    norm_cols.push(a);
                }
            }
            for (name, want) in &self.base.targets {
                let got = &run.targets[name];
                let same = want
                    .rank_normalized(&norm_cols)
                    .same_bag(&got.rank_normalized(&norm_cols))
                    .unwrap_or(false);
                if !same {
                    failures.push(Failure::Multiset {
                        target: name.clone(),
                        expected_rows: want.len(),
                        actual_rows: got.len(),
                    });
                }
            }
        }

        // 2. Cost cross-validation: predictions for the candidate topology
        // under the original run's observed statistics.
        match self.cross_validate_candidate(candidate, &run) {
            Ok((unobserved, target_drift, activity_drift)) => {
                if !unobserved.is_empty() {
                    failures.push(Failure::Uncalibrated(unobserved));
                }
                if !target_drift.is_empty() {
                    failures.push(Failure::RowCountDrift(target_drift));
                }
                warnings.extend(activity_drift);
            }
            Err(e) => failures.push(Failure::Execution(format!("cross-validation: {e}"))),
        }

        Verdict { failures, warnings }
    }

    /// Predicted-vs-observed row counts for a candidate: `(unobserved
    /// adjustable activities, failure-grade target drift, warning-grade
    /// activity drift)`. A non-empty unobserved list is failure-grade: it
    /// means the baseline itself would rest on uncalibrated priors.
    #[allow(clippy::type_complexity)]
    fn cross_validate_candidate(
        &self,
        candidate: &Workflow,
        run: &ExecResult,
    ) -> std::result::Result<(Vec<String>, Vec<RowCountMismatch>, Vec<RowCountMismatch>), String>
    {
        let transfer = transfer_calibration(&self.base.stats, candidate, self.exec.catalog())
            .map_err(|e| e.to_string())?;
        let calibrated = transfer.workflow;
        let model = RowCountModel::default();
        let skip = estimate_only_tokens(candidate).map_err(|e| e.to_string())?;

        let predicted_targets =
            predicted_target_rows(&calibrated, &model).map_err(|e| e.to_string())?;
        let observed_targets: BTreeMap<String, u64> = run
            .targets
            .iter()
            .map(|(name, t)| (name.clone(), t.len() as u64))
            .collect();
        let target_drift = cross_validate(
            &predicted_targets,
            &observed_targets,
            self.target_tol,
            |key| skip.contains(key),
        );

        let predicted_acts =
            predicted_processed_rows(&calibrated, &model).map_err(|e| e.to_string())?;
        let activity_drift = cross_validate(
            &predicted_acts,
            &run.stats.rows_processed,
            self.activity_tol,
            |key| skip.contains(key),
        );
        Ok((transfer.unobserved, target_drift, activity_drift))
    }
}

/// Every surrogate attribute a workflow's SK activities generate and its
/// targets still carry.
fn surrogate_attrs(wf: &Workflow) -> Vec<Attr> {
    let g = wf.graph();
    let mut out = Vec::new();
    let Ok(acts) = wf.activities() else {
        return out;
    };
    for id in acts {
        if let Ok(act) = g.activity(id) {
            collect_surrogates(&act.op, &mut out);
        }
    }
    out
}

fn collect_surrogates(op: &Op, out: &mut Vec<Attr>) {
    match op {
        Op::Unary(UnaryOp::SurrogateKey { surrogate, .. }) if !out.contains(surrogate) => {
            out.push(surrogate.clone());
        }
        Op::Merged(chain) => {
            for link in chain {
                if let UnaryOp::SurrogateKey { surrogate, .. } = link {
                    if !out.contains(surrogate) {
                        out.push(surrogate.clone());
                    }
                }
            }
        }
        _ => {}
    }
}

/// Stat keys whose cardinality the model only *estimates*: merged chains
/// (stats count every link) and everything downstream of a non-union
/// binary (join/difference/intersection cardinalities are guesses, union
/// is exact `l + r`).
fn estimate_only_tokens(wf: &Workflow) -> etlopt_core::error::Result<BTreeSet<String>> {
    let g = wf.graph();
    let mut starts = Vec::new();
    let mut out = BTreeSet::new();
    for id in wf.activities()? {
        let act = g.activity(id)?;
        match &act.op {
            Op::Binary(op) if !matches!(op, BinaryOp::Union) => starts.push(id),
            Op::Merged(_) => {
                out.insert(act.id.to_string());
            }
            _ => {}
        }
    }
    if starts.is_empty() {
        return Ok(out);
    }
    for id in etlopt_core::schema_gen::downstream_of(g, &starts)? {
        match g.node(id)? {
            Node::Activity(a) => {
                out.insert(a.id.to_string());
            }
            Node::Recordset(rs) => {
                out.insert(rs.name.clone());
            }
        }
    }
    Ok(out)
}

/// Resolve a candidate activity id to the original base activities whose
/// observed statistics should parameterize it: a distribution clone
/// inherits its template's stats, a factorization product pools both of
/// its originators' (row-weighted — exactly the combined selectivity of
/// the factored activity).
fn stat_leaves(id: &ActivityId, observed: &ExecStats, out: &mut Vec<ActivityId>) {
    if observed.rows_processed.contains_key(&id.to_string()) {
        out.push(id.clone());
        return;
    }
    match id {
        ActivityId::Cloned(base, _) => stat_leaves(base, observed, out),
        ActivityId::Factored(a, b) => {
            stat_leaves(a, observed, out);
            stat_leaves(b, observed, out);
        }
        ActivityId::Merged(parts) => {
            for p in parts {
                stat_leaves(p, observed, out);
            }
        }
        ActivityId::Base(_) => {}
    }
}

/// The result of transferring observed statistics onto a candidate
/// topology: the re-estimated workflow, plus every adjustable activity the
/// observations could not reach.
#[derive(Debug, Clone)]
pub struct CalibrationTransfer {
    /// The candidate with observed source cardinalities and selectivities.
    pub workflow: Workflow,
    /// Adjustable activities with **no** observed statistic — neither the
    /// activity itself nor any originating base activity appears in the
    /// run's `rows_processed`. These keep their a-priori selectivity, so
    /// predictions through them are estimates, not transfers; callers must
    /// decide whether that is acceptable rather than have it papered over.
    pub unobserved: Vec<String>,
}

/// Re-estimate a candidate topology from the original run's observations:
/// every source recordset gets its actual catalog cardinality, every
/// cardinality-changing unary activity gets the selectivity observed for
/// its originating activities on the original run. The workflow in the
/// result is the state the cost model *should* price exactly on a
/// union-only workflow — the cross-validation baseline. Activities no
/// observation resolves for are reported in
/// [`CalibrationTransfer::unobserved`] instead of being silently left at
/// their (unvalidated) priors.
pub fn transfer_calibration(
    observed: &ExecStats,
    candidate: &Workflow,
    catalog: &Catalog,
) -> etlopt_core::error::Result<CalibrationTransfer> {
    let g = candidate.graph();
    let mut out = candidate.clone();
    let mut unobserved = Vec::new();

    for src in candidate.sources() {
        let name = g.recordset(src)?.name.clone();
        if let Some(table) = catalog.table(&name) {
            out = out.with_row_estimate(src, table.len() as f64)?;
        }
    }

    for node in candidate.activities()? {
        let act = g.activity(node)?;
        let adjustable = matches!(
            act.op,
            Op::Unary(
                UnaryOp::Filter { .. }
                    | UnaryOp::NotNull { .. }
                    | UnaryOp::PkCheck { .. }
                    | UnaryOp::Dedup { .. }
                    | UnaryOp::Aggregate { .. }
            )
        );
        if !adjustable {
            continue;
        }
        let mut leaves = Vec::new();
        stat_leaves(&act.id, observed, &mut leaves);
        if leaves.is_empty() {
            unobserved.push(act.id.to_string());
            continue;
        }
        let (mut inp, mut outp) = (0u64, 0u64);
        for leaf in &leaves {
            let key = leaf.to_string();
            inp += observed.rows_processed.get(&key).copied().unwrap_or(0);
            outp += observed.rows_out.get(&key).copied().unwrap_or(0);
        }
        if inp > 0 {
            let s = (outp as f64 / inp as f64).clamp(MIN_SELECTIVITY, 1.0);
            out = out.with_selectivity(node, s)?;
        }
    }
    Ok(CalibrationTransfer {
        workflow: out,
        unobserved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::opt::enumerate_moves;
    use etlopt_core::oracle::{apply_faulty_pushdown, faulty_pushdown_sites};
    use etlopt_workload::{Generator, GeneratorConfig, SizeCategory};

    fn scenario_oracle(seed: u64) -> (Workflow, Oracle) {
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let exec = scenario_executor(&s.workflow, 80, seed);
        let oracle = Oracle::new(&s.workflow, exec).expect("original executes");
        (s.workflow, oracle)
    }

    #[test]
    fn original_passes_its_own_oracle() {
        let (wf, oracle) = scenario_oracle(3);
        let v = oracle.check(&wf);
        assert!(v.passed(), "{:?}", v.failures);
        // On the original topology the transferred predictions are exact:
        // no warning-grade drift either.
        assert!(v.warnings.is_empty(), "{:?}", v.warnings);
    }

    #[test]
    fn legitimate_transitions_pass() {
        let (wf, oracle) = scenario_oracle(5);
        let mut checked = 0;
        for mv in enumerate_moves(&wf).unwrap() {
            if let Ok(next) = mv.apply(&wf) {
                let v = oracle.check(&next);
                assert!(v.passed(), "{} failed: {:?}", mv.describe(&wf), v.failures);
                checked += 1;
            }
        }
        assert!(checked > 0, "scenario had no applicable moves");
    }

    #[test]
    fn faulty_pushdown_is_caught() {
        // Seed chosen so the seeded catalog has rows in the decision
        // boundary the faulty rewrite flips — without such rows the mutant
        // is extensionally identical and *no* execution oracle could (or
        // should) flag it.
        let (wf, oracle) = scenario_oracle(2);
        let sites = faulty_pushdown_sites(&wf).unwrap();
        assert!(!sites.is_empty(), "generated trap must provide a site");
        let bad = apply_faulty_pushdown(&wf, sites[0]).unwrap();
        let v = oracle.check(&bad);
        assert!(!v.passed(), "oracle must catch the $2€ pushdown");
        assert!(
            v.failures
                .iter()
                .any(|f| matches!(f, Failure::Multiset { .. })),
            "expected a multiset failure, got {:?}",
            v.failures
        );
    }

    #[test]
    fn transfer_reports_unobserved_activities() {
        // Doctor the stats so one filter was never observed — e.g. because
        // the plan that produced them had pruned it. The transfer must name
        // the miss instead of silently pricing it as a pass-through.
        use etlopt_core::prelude::*;

        let mut b = WorkflowBuilder::new();
        let src = b.source("S", Schema::of(["id", "v"]), 10.0);
        let f1 = b.unary("sa", UnaryOp::filter(Predicate::gt("v", 1)), src);
        let f2 = b.unary("sb", UnaryOp::filter(Predicate::gt("id", 1)), f1);
        b.target("T", Schema::of(["id", "v"]), f2);
        let wf = b.build().unwrap();

        let g = wf.graph();
        let mut ids: Vec<String> = wf
            .activities()
            .unwrap()
            .into_iter()
            .map(|n| g.activity(n).unwrap().id.to_string())
            .collect();
        ids.sort();
        let (observed_id, pruned_id) = (ids[0].clone(), ids[1].clone());

        let mut stats = ExecStats::default();
        stats.rows_processed.insert(observed_id, 10);
        stats.rows_out.insert(ids[0].clone(), 6);

        let transfer = transfer_calibration(&stats, &wf, &Catalog::new()).unwrap();
        assert_eq!(
            transfer.unobserved,
            vec![pruned_id],
            "the unobserved filter must be reported, not defaulted to selectivity 1"
        );
    }

    #[test]
    fn foreign_workflow_fails_target_set() {
        let (_, oracle) = scenario_oracle(11);
        let mut b = etlopt_core::workflow::WorkflowBuilder::new();
        let s = b.source("SRC1", etlopt_core::schema::Schema::of(["pkey"]), 10.0);
        b.target("ELSEWHERE", etlopt_core::schema::Schema::of(["pkey"]), s);
        let other = b.build().unwrap();
        let v = oracle.check(&other);
        assert!(v
            .failures
            .iter()
            .any(|f| matches!(f, Failure::TargetSet { .. })));
    }
}
