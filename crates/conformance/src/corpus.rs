//! The conformance corpus sweep.
//!
//! For every seeded scenario, the sweep (1) builds the oracle from the
//! original workflow over seeded data, (2) runs each search algorithm
//! (ES, HS, HS-Greedy, Beam) and judges its best state, (3) replays a seeded
//! random transition chain and judges its end state. Failing chains are
//! shrunk by [`crate::minimize`] into replayable repros. The outcome is a
//! [`CorpusReport`] the driver serializes to `CONFORMANCE.json`.

use std::time::Instant;

use etlopt_core::cost::RowCountModel;
use etlopt_core::opt::{
    run_adaptive, AdaptiveConfig, BeamSearch, ExhaustiveSearch, HeuristicSearch, HsGreedy,
    Optimizer, SearchBudget,
};
use etlopt_core::trace::SearchStats;
use etlopt_engine::Harvester;
use etlopt_workload::{CalibrationStore, Generator, Scenario, SizeCategory};

use crate::chain::{format_steps, random_chain, replay};
use crate::minimize::minimize_failure;
use crate::oracle::{scenario_executor, Oracle};

/// Sweep parameters. The defaults are the CI profile: 200 scenarios
/// (120 small / 60 medium / 20 large), four search algorithms plus one
/// random chain each.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Base seed; every scenario seed derives from it.
    pub base_seed: u64,
    /// Scenario counts per size band.
    pub small: usize,
    /// Medium-band scenario count.
    pub medium: usize,
    /// Large-band scenario count.
    pub large: usize,
    /// Rows generated per source recordset.
    pub rows_per_source: usize,
    /// State budget for each search run.
    pub search_states: usize,
    /// Worker threads for the searches (`1` = sequential).
    pub parallelism: usize,
    /// Length of the random transition chain per scenario.
    pub chain_len: usize,
    /// Round budget for the adaptive calibrate → re-optimize check per
    /// scenario (`0` disables the check — the default; the `--adaptive`
    /// flag enables it).
    pub adaptive_rounds: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            base_seed: 2005,
            small: 120,
            medium: 60,
            large: 20,
            rows_per_source: 64,
            search_states: 600,
            parallelism: 1,
            chain_len: 8,
            adaptive_rounds: 0,
        }
    }
}

impl CorpusConfig {
    /// Total scenario count.
    pub fn scenarios(&self) -> usize {
        self.small + self.medium + self.large
    }
}

/// One judged check within a scenario.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// `"ES"`, `"HS"`, `"HS-Greedy"` or `"chain"`.
    pub kind: String,
    /// Did the oracle pass the produced state?
    pub passed: bool,
    /// Failure one-liners (empty when passed).
    pub failures: Vec<String>,
    /// Warning-grade per-activity drift count.
    pub warnings: usize,
}

/// All checks of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario display name.
    pub name: String,
    /// Generator seed.
    pub seed: u64,
    /// Size band label.
    pub category: SizeCategory,
    /// Judged checks (one per algorithm + the chain).
    pub checks: Vec<CheckOutcome>,
    /// Step string of the scenario's random chain (for replay).
    pub chain_steps: String,
}

/// A failing check, carried up to the report (and, for chains, minimized).
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// Scenario name.
    pub scenario: String,
    /// Generator seed.
    pub seed: u64,
    /// Size band.
    pub category: SizeCategory,
    /// Which check failed.
    pub kind: String,
    /// Failure one-liners.
    pub failures: Vec<String>,
    /// For chain failures: the minimized replay command.
    pub repro: Option<String>,
}

/// The sweep summary.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// The configuration the sweep ran with.
    pub config: CorpusConfig,
    /// Scenarios swept.
    pub scenarios: Vec<ScenarioOutcome>,
    /// All failing checks, minimized where possible.
    pub failed: Vec<FailureRecord>,
    /// Total checks judged.
    pub checks: usize,
    /// Checks that passed.
    pub passed: usize,
    /// Total warning-grade drift observations.
    pub warnings: usize,
    /// Adaptive-loop checks judged (0 unless the sweep ran `--adaptive`).
    pub adaptive_checks: usize,
    /// Adaptive-loop checks that converged *and* passed the oracle.
    pub adaptive_passed: usize,
    /// Wall-clock seconds of the whole sweep.
    pub elapsed_secs: f64,
    /// Search telemetry aggregated per algorithm (ES, HS, HS-Greedy, Beam)
    /// across every scenario, via [`SearchStats::absorb`].
    pub search_stats: Vec<SearchStats>,
}

impl CorpusReport {
    /// Pass rate in `[0, 1]`.
    pub fn pass_rate(&self) -> f64 {
        if self.checks == 0 {
            1.0
        } else {
            self.passed as f64 / self.checks as f64
        }
    }

    /// Pass rate of the adaptive-loop checks alone, in `[0, 1]`.
    pub fn adaptive_pass_rate(&self) -> f64 {
        if self.adaptive_checks == 0 {
            1.0
        } else {
            self.adaptive_passed as f64 / self.adaptive_checks as f64
        }
    }

    /// Serialize the aggregated per-algorithm search telemetry — the
    /// `--trace-json` artifact: one full [`SearchStats::to_json`] object
    /// per algorithm, summed over every scenario of the sweep.
    pub fn trace_json(&self) -> String {
        let entries: Vec<String> = self
            .search_stats
            .iter()
            .map(|s| {
                let body = s.to_json().lines().collect::<Vec<_>>().join("\n  ");
                format!("  \"{}\": {}", s.algorithm, body)
            })
            .collect();
        format!(
            "{{\n  \"scenarios\": {},\n{}\n}}\n",
            self.scenarios.len(),
            entries.join(",\n")
        )
    }

    /// Serialize to the `CONFORMANCE.json` document.
    pub fn to_json(&self) -> String {
        let mut failures = String::new();
        for (i, f) in self.failed.iter().enumerate() {
            if i > 0 {
                failures.push_str(",\n");
            }
            failures.push_str(&format!(
                concat!(
                    "    {{\"scenario\": \"{}\", \"seed\": {}, \"category\": \"{}\", ",
                    "\"kind\": \"{}\", \"failures\": [{}], \"repro\": {}}}"
                ),
                f.scenario,
                f.seed,
                f.category.label(),
                f.kind,
                f.failures
                    .iter()
                    .map(|s| format!("\"{}\"", json_escape(s)))
                    .collect::<Vec<_>>()
                    .join(", "),
                match &f.repro {
                    Some(cmd) => format!("\"{}\"", json_escape(cmd)),
                    None => "null".to_owned(),
                },
            ));
        }
        format!(
            concat!(
                "{{\n",
                "  \"base_seed\": {},\n",
                "  \"scenarios\": {},\n",
                "  \"bands\": {{\"small\": {}, \"medium\": {}, \"large\": {}}},\n",
                "  \"rows_per_source\": {},\n",
                "  \"search_states\": {},\n",
                "  \"parallelism\": {},\n",
                "  \"checks\": {},\n",
                "  \"passed\": {},\n",
                "  \"failed\": {},\n",
                "  \"pass_rate\": {:.4},\n",
                "  \"activity_warnings\": {},\n",
                "  \"adaptive\": {{\"rounds\": {}, \"checks\": {}, \"passed\": {}, ",
                "\"pass_rate\": {:.4}}},\n",
                "  \"elapsed_secs\": {:.2},\n",
                "  \"failures\": [\n{}\n  ]\n",
                "}}\n"
            ),
            self.config.base_seed,
            self.scenarios.len(),
            self.config.small,
            self.config.medium,
            self.config.large,
            self.config.rows_per_source,
            self.config.search_states,
            self.config.parallelism,
            self.checks,
            self.passed,
            self.failed.len(),
            self.pass_rate(),
            self.warnings,
            self.config.adaptive_rounds,
            self.adaptive_checks,
            self.adaptive_passed,
            self.adaptive_pass_rate(),
            self.elapsed_secs,
            failures,
        )
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Run one scenario through all its checks. Each search run's telemetry is
/// absorbed into `agg` (indexed in ES, HS, HS-Greedy, Beam order).
fn sweep_scenario(s: &Scenario, cfg: &CorpusConfig, agg: &mut [SearchStats; 4]) -> ScenarioOutcome {
    let exec = scenario_executor(&s.workflow, cfg.rows_per_source, s.seed);
    let oracle = match Oracle::new(&s.workflow, exec) {
        Ok(o) => o,
        Err(e) => {
            return ScenarioOutcome {
                name: s.name.clone(),
                seed: s.seed,
                category: s.category,
                checks: vec![CheckOutcome {
                    kind: "original".into(),
                    passed: false,
                    failures: vec![format!("original failed to execute: {e}")],
                    warnings: 0,
                }],
                chain_steps: String::new(),
            }
        }
    };

    let model = RowCountModel::default();
    let budget = SearchBudget::states(cfg.search_states).with_parallelism(cfg.parallelism);
    let algos: [(&str, Box<dyn Optimizer>); 4] = [
        ("ES", Box::new(ExhaustiveSearch::with_budget(budget))),
        ("HS", Box::new(HeuristicSearch::with_budget(budget))),
        ("HS-Greedy", Box::new(HsGreedy::with_budget(budget))),
        ("Beam", Box::new(BeamSearch::with_budget(budget))),
    ];

    let mut checks = Vec::new();
    for (i, (name, algo)) in algos.iter().enumerate() {
        let outcome = match algo.run(&s.workflow, &model) {
            Ok(o) => o,
            Err(e) => {
                checks.push(CheckOutcome {
                    kind: (*name).into(),
                    passed: false,
                    failures: vec![format!("search failed: {e}")],
                    warnings: 0,
                });
                continue;
            }
        };
        agg[i].absorb(&outcome.stats);
        let v = oracle.check(&outcome.best);
        checks.push(CheckOutcome {
            kind: (*name).into(),
            passed: v.passed(),
            failures: v.failure_lines(),
            warnings: v.warnings.len(),
        });
    }

    // A seeded random chain, independent of the searches.
    let steps = random_chain(s.seed ^ 0xCAB1E, cfg.chain_len, false);
    let r = replay(&s.workflow, &steps);
    let v = oracle.check(&r.workflow);
    checks.push(CheckOutcome {
        kind: "chain".into(),
        passed: v.passed(),
        failures: v.failure_lines(),
        warnings: v.warnings.len(),
    });

    // The feedback loop: calibrate → re-optimize → converge, with the
    // final converged plan judged by the same oracle as the one-shot
    // searches. Failing to converge within the budget is itself a failure.
    if cfg.adaptive_rounds > 0 {
        checks.push(adaptive_check(s, cfg, &oracle));
    }

    ScenarioOutcome {
        name: s.name.clone(),
        seed: s.seed,
        category: s.category,
        checks,
        chain_steps: format_steps(&steps),
    }
}

/// Run the adaptive loop on one scenario and judge its converged plan.
/// The loop gets a fresh executor (same derived data seed as the oracle's,
/// so ground truth matches), a cold [`CalibrationStore`], and the HS
/// optimizer under the sweep's state budget.
fn adaptive_check(s: &Scenario, cfg: &CorpusConfig, oracle: &Oracle) -> CheckOutcome {
    let budget = SearchBudget::states(cfg.search_states).with_parallelism(cfg.parallelism);
    let optimizer = HeuristicSearch::with_budget(budget);
    let mut harvester = Harvester::new(scenario_executor(&s.workflow, cfg.rows_per_source, s.seed));
    let mut store = CalibrationStore::new();
    let model = RowCountModel::default();

    let report = match run_adaptive(
        &s.workflow,
        &model,
        &optimizer,
        &mut harvester,
        &mut store,
        AdaptiveConfig::rounds(cfg.adaptive_rounds),
    ) {
        Ok(r) => r,
        Err(e) => {
            return CheckOutcome {
                kind: "adaptive".into(),
                passed: false,
                failures: vec![format!("adaptive loop failed: {e}")],
                warnings: 0,
            }
        }
    };

    let mut failures = Vec::new();
    let mut warnings = 0;
    if !report.converged {
        failures.push(format!(
            "adaptive loop did not converge within {} rounds",
            cfg.adaptive_rounds
        ));
    }
    match report.final_plan() {
        Some(plan) => {
            let v = oracle.check(plan);
            warnings = v.warnings.len();
            failures.extend(v.failure_lines());
        }
        None => failures.push("adaptive loop produced no plan".to_owned()),
    }
    CheckOutcome {
        kind: "adaptive".into(),
        passed: failures.is_empty(),
        failures,
        warnings,
    }
}

/// Seeds whose small-band scenario + seeded catalog make the `$2€`
/// faulty pushdown *observable* (boundary rows exist at 64 rows/source).
/// The harness tests itself against these: every injected fault here MUST
/// be caught. Seeds outside this list may produce mutants that are
/// extensionally identical on the sampled data — undetectable by any
/// execution oracle and deliberately not part of the smoke contract.
pub const SMOKE_SEEDS: [u64; 10] = [2, 4, 10, 11, 13, 19, 21, 22, 27, 32];

/// Result of the self-test: inject a known-bad rewrite per pinned seed and
/// demand the oracle flags it.
#[derive(Debug, Clone)]
pub struct SmokeReport {
    /// Faults injected (seeds where a faulty site existed).
    pub injected: usize,
    /// Faults the oracle caught.
    pub caught: usize,
    /// Seeds whose injected fault escaped (must be empty).
    pub escaped: Vec<u64>,
}

/// Run the mutation smoke-test over [`SMOKE_SEEDS`].
pub fn mutation_smoke(rows_per_source: usize) -> SmokeReport {
    let mut report = SmokeReport {
        injected: 0,
        caught: 0,
        escaped: Vec::new(),
    };
    for &seed in &SMOKE_SEEDS {
        let s = Generator::generate(etlopt_workload::GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let exec = scenario_executor(&s.workflow, rows_per_source, seed);
        let Ok(oracle) = Oracle::new(&s.workflow, exec) else {
            report.escaped.push(seed);
            continue;
        };
        let r = replay(&s.workflow, &[crate::chain::Step::Faulty(0)]);
        if r.faulty_applied == 0 {
            report.escaped.push(seed);
            continue;
        }
        report.injected += 1;
        if oracle.check(&r.workflow).passed() {
            report.escaped.push(seed);
        } else {
            report.caught += 1;
        }
    }
    report
}

/// Run the full corpus. `progress` is called once per finished scenario
/// with `(index, total, name)` — the driver uses it for a live ticker.
pub fn run_corpus(
    cfg: &CorpusConfig,
    mut progress: impl FnMut(usize, usize, &str),
) -> CorpusReport {
    let started = Instant::now();
    let suite = Generator::suite(cfg.base_seed, cfg.small, cfg.medium, cfg.large);
    let total = suite.len();

    let mut scenarios = Vec::with_capacity(total);
    let mut failed = Vec::new();
    let (mut checks, mut passed, mut warnings) = (0usize, 0usize, 0usize);
    let mut agg = [
        SearchStats::new("ES"),
        SearchStats::new("HS"),
        SearchStats::new("HS-Greedy"),
        SearchStats::new("Beam"),
    ];

    let (mut adaptive_checks, mut adaptive_passed) = (0usize, 0usize);
    for (i, s) in suite.iter().enumerate() {
        let outcome = sweep_scenario(s, cfg, &mut agg);
        for c in &outcome.checks {
            checks += 1;
            warnings += c.warnings;
            if c.kind == "adaptive" {
                adaptive_checks += 1;
                if c.passed {
                    adaptive_passed += 1;
                }
            }
            if c.passed {
                passed += 1;
            } else {
                let repro = if c.kind == "chain" {
                    crate::chain::parse_steps(&outcome.chain_steps)
                        .ok()
                        .and_then(|steps| {
                            minimize_failure(s.seed, s.category, cfg.rows_per_source, &steps)
                        })
                        .map(|r| r.command)
                } else {
                    None
                };
                failed.push(FailureRecord {
                    scenario: outcome.name.clone(),
                    seed: s.seed,
                    category: s.category,
                    kind: c.kind.clone(),
                    failures: c.failures.clone(),
                    repro,
                });
            }
        }
        progress(i + 1, total, &outcome.name);
        scenarios.push(outcome);
    }

    CorpusReport {
        config: cfg.clone(),
        scenarios,
        failed,
        checks,
        passed,
        warnings,
        adaptive_checks,
        adaptive_passed,
        elapsed_secs: started.elapsed().as_secs_f64(),
        search_stats: agg.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trimmed sweep: every check must pass and the JSON document must
    /// carry the headline numbers. (The full ≥200-scenario corpus runs in
    /// the `conformance` binary / CI job.)
    #[test]
    fn mini_corpus_is_clean() {
        let cfg = CorpusConfig {
            small: 3,
            medium: 1,
            large: 0,
            search_states: 150,
            chain_len: 5,
            ..CorpusConfig::default()
        };
        let report = run_corpus(&cfg, |_, _, _| {});
        assert_eq!(report.scenarios.len(), 4);
        assert_eq!(report.checks, 20, "4 scenarios x (4 algos + 1 chain)");
        assert!(
            report.failed.is_empty(),
            "conformance failures: {:#?}",
            report.failed
        );
        assert!((report.pass_rate() - 1.0).abs() < 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"pass_rate\": 1.0000"));
        assert!(json.contains("\"checks\": 20"));
        // The aggregated telemetry covers all four algorithms and its
        // summed accounting still reconciles.
        assert_eq!(report.search_stats.len(), 4);
        for s in &report.search_stats {
            assert!(s.generated > 0, "{} absorbed no runs", s.algorithm);
            assert!(s.reconciles(), "{}: {}", s.algorithm, s.counters_json());
        }
        let trace = report.trace_json();
        for algo in ["\"ES\"", "\"HS\"", "\"HS-Greedy\"", "\"Beam\""] {
            assert!(trace.contains(algo), "{trace}");
        }
    }

    /// With `adaptive_rounds` set, every scenario gains an adaptive-loop
    /// check, its pass rate is accounted separately, and the converged
    /// plans pass the same oracle as the one-shot searches.
    #[test]
    fn mini_corpus_adaptive_checks_pass() {
        let cfg = CorpusConfig {
            small: 2,
            medium: 0,
            large: 0,
            search_states: 150,
            chain_len: 5,
            adaptive_rounds: 4,
            ..CorpusConfig::default()
        };
        let report = run_corpus(&cfg, |_, _, _| {});
        assert_eq!(
            report.checks, 12,
            "2 scenarios x (4 algos + chain + adaptive)"
        );
        assert_eq!(report.adaptive_checks, 2);
        assert!(
            report.failed.is_empty(),
            "conformance failures: {:#?}",
            report.failed
        );
        assert_eq!(report.adaptive_passed, 2);
        let json = report.to_json();
        assert!(
            json.contains("\"adaptive\": {\"rounds\": 4, \"checks\": 2, \"passed\": 2, \"pass_rate\": 1.0000}"),
            "{json}"
        );
    }
}
