//! Replayable transition chains.
//!
//! A chain is a list of [`Step`]s applied to a workflow state in order.
//! Steps are indices, not node ids, so the same step string replays
//! deterministically on any regeneration of the same seeded scenario:
//! `Pick(p)` applies the `p mod n`-th of the `n` currently enumerable
//! moves, `Faulty(p)` commits the `p mod n`-th faulty-pushdown site
//! (the deliberately wrong `$2€` rewrite the oracle must catch).
//!
//! The textual form is comma-separated: `"12,7,!3"` = pick 12, pick 7,
//! faulty-pushdown 3. This is what the corpus driver prints for failures
//! and what `conformance replay --steps` parses back.

use etlopt_core::opt::enumerate_moves;
use etlopt_core::oracle::{apply_faulty_pushdown, faulty_pushdown_sites};
use etlopt_core::rng::Rng;
use etlopt_core::workflow::Workflow;

/// One replayable chain step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Apply the `p mod n`-th enumerated move.
    Pick(u8),
    /// Commit the `p mod n`-th faulty-pushdown site.
    Faulty(u8),
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Pick(p) => write!(f, "{p}"),
            Step::Faulty(p) => write!(f, "!{p}"),
        }
    }
}

/// Render a chain as its comma-separated step string.
pub fn format_steps(steps: &[Step]) -> String {
    steps
        .iter()
        .map(Step::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Parse a `"12,7,!3"`-style step string.
pub fn parse_steps(s: &str) -> Result<Vec<Step>, String> {
    let mut out = Vec::new();
    for tok in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let (faulty, digits) = match tok.strip_prefix('!') {
            Some(rest) => (true, rest),
            None => (false, tok),
        };
        let p: u8 = digits
            .parse()
            .map_err(|_| format!("bad step `{tok}` (expected 0-255, optionally `!`-prefixed)"))?;
        out.push(if faulty {
            Step::Faulty(p)
        } else {
            Step::Pick(p)
        });
    }
    Ok(out)
}

/// The result of replaying a chain.
#[derive(Debug, Clone)]
pub struct ChainReplay {
    /// The final state.
    pub workflow: Workflow,
    /// Human-readable description of each step that changed the state.
    pub applied: Vec<String>,
    /// How many `Pick` steps had an enumerable move that failed its full
    /// applicability re-check (legal: `enumerate_moves` is a pre-filter).
    pub rejected: usize,
    /// Steps that found nothing to act on (no moves / no faulty sites).
    pub skipped: usize,
    /// How many `Faulty` steps actually committed a mutation.
    pub faulty_applied: usize,
}

/// Replay `steps` from `wf`. Never fails: a step that cannot act leaves
/// the state unchanged and is counted in `rejected`/`skipped`, so every
/// step string is a valid (if possibly benign) chain.
pub fn replay(wf: &Workflow, steps: &[Step]) -> ChainReplay {
    let mut cur = wf.clone();
    let mut out = ChainReplay {
        workflow: wf.clone(),
        applied: Vec::new(),
        rejected: 0,
        skipped: 0,
        faulty_applied: 0,
    };
    for step in steps {
        match step {
            Step::Pick(p) => {
                let moves = enumerate_moves(&cur).unwrap_or_default();
                if moves.is_empty() {
                    out.skipped += 1;
                    continue;
                }
                let mv = moves[*p as usize % moves.len()];
                match mv.apply(&cur) {
                    Ok(next) => {
                        out.applied.push(mv.describe(&cur));
                        cur = next;
                    }
                    Err(_) => out.rejected += 1,
                }
            }
            Step::Faulty(p) => {
                let sites = faulty_pushdown_sites(&cur).unwrap_or_default();
                if sites.is_empty() {
                    out.skipped += 1;
                    continue;
                }
                let site = sites[*p as usize % sites.len()];
                match apply_faulty_pushdown(&cur, site) {
                    Ok(next) => {
                        out.applied.push(format!(
                            "FAULTY-PUSHDOWN({}, {})",
                            cur.priority_token(site.filter),
                            cur.priority_token(site.function),
                        ));
                        out.faulty_applied += 1;
                        cur = next;
                    }
                    Err(_) => out.rejected += 1,
                }
            }
        }
    }
    out.workflow = cur;
    out
}

/// A seeded random chain of `len` picks; with `with_fault`, one pick is
/// replaced by a faulty-pushdown step at a random position.
pub fn random_chain(seed: u64, len: usize, with_fault: bool) -> Vec<Step> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut steps: Vec<Step> = (0..len)
        .map(|_| Step::Pick(rng.gen_range(0..=255u32) as u8))
        .collect();
    if with_fault && !steps.is_empty() {
        let at = rng.gen_range(0..steps.len());
        steps[at] = Step::Faulty(rng.gen_range(0..=255u32) as u8);
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_workload::{Generator, GeneratorConfig, SizeCategory};

    #[test]
    fn steps_round_trip_through_text() {
        let steps = vec![Step::Pick(12), Step::Faulty(3), Step::Pick(255)];
        let s = format_steps(&steps);
        assert_eq!(s, "12,!3,255");
        assert_eq!(parse_steps(&s).unwrap(), steps);
        assert!(parse_steps("1,,2").unwrap().len() == 2);
        assert!(parse_steps("x").is_err());
        assert!(parse_steps("!999").is_err());
    }

    #[test]
    fn replay_is_deterministic_and_equivalence_preserving() {
        let s = Generator::generate(GeneratorConfig {
            seed: 7,
            category: SizeCategory::Small,
        });
        let steps = random_chain(99, 8, false);
        let a = replay(&s.workflow, &steps);
        let b = replay(&s.workflow, &steps);
        assert_eq!(a.workflow, b.workflow);
        assert!(a.faulty_applied == 0);
        assert!(etlopt_core::postcond::equivalent(&s.workflow, &a.workflow).unwrap());
    }

    #[test]
    fn faulty_step_breaks_equivalence_when_a_site_exists() {
        let s = Generator::generate(GeneratorConfig {
            seed: 7,
            category: SizeCategory::Small,
        });
        // Generated branch traps guarantee a scale→filter site.
        let r = replay(&s.workflow, &[Step::Faulty(0)]);
        assert_eq!(r.faulty_applied, 1, "{r:?}");
        assert!(!etlopt_core::postcond::equivalent(&s.workflow, &r.workflow).unwrap());
    }
}
