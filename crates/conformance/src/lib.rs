//! Differential conformance harness for the ETL optimizer.
//!
//! The post-condition calculus proves transition chains equivalence-
//! preserving *formally*; this crate proves it *empirically*, the way
//! Kougka & Gounaris argue reordering optimizers must be trusted: by
//! executing every optimizer-produced state on the real engine over seeded
//! data and comparing what actually lands in the warehouse.
//!
//! The harness has four parts:
//!
//! * [`oracle::Oracle`] — runs an original/candidate pair through
//!   [`etlopt_engine::Executor`] and demands (a) per-target **multiset
//!   equality** (row order ignored, surrogate-key columns rank-normalized)
//!   and (b) that the row-count cost model's predicted cardinalities,
//!   seeded with the original run's observed selectivities, match the
//!   engine's observed counts within tolerance — plus
//!   [`oracle::backend_differential`], which cross-checks the streaming
//!   executor backend against the materializing one (identical targets
//!   and bit-identical stats) on the same seeded scenarios;
//! * [`chain`] — a replayable encoding of transition chains
//!   (`"12,7,!3"`-style step strings) so any failure is a one-liner to
//!   reproduce;
//! * [`minimize`] — a delta-debugging shrinker that reduces a failing
//!   chain to the fewest steps and the smallest generator size category
//!   that still fail, and prints the replay command;
//! * [`corpus`] — the sweep driver: ≥200 seeded scenarios × {ES, HS,
//!   HS-Greedy, random chains}, summarized into `CONFORMANCE.json`.
//!
//! The harness tests itself through deliberate mutations: committing the
//! paper's `$2€` pushdown error ([`etlopt_core::oracle::apply_faulty_pushdown`])
//! must trip the oracle.

pub mod chain;
pub mod corpus;
pub mod minimize;
pub mod oracle;

pub use chain::{format_steps, parse_steps, replay, ChainReplay, Step};
pub use corpus::{
    mutation_smoke, run_corpus, CorpusConfig, CorpusReport, SmokeReport, SMOKE_SEEDS,
};
pub use minimize::{minimize_failure, Repro};
pub use oracle::{
    backend_differential, scenario_executor, transfer_calibration, CalibrationTransfer, Failure,
    Oracle, Verdict,
};
