//! Failure minimization: shrink a failing chain to the smallest repro.
//!
//! Two axes are minimized, in order:
//!
//! 1. **Steps** — Zeller's ddmin ([`etlopt_core::oracle::ddmin`]) removes
//!    every chain step that is not needed for the oracle to fail;
//! 2. **Scenario size** — the generator category is downgraded
//!    (Large → Medium → Small) as long as the surviving steps still fail
//!    on the smaller seeded scenario.
//!
//! The result is a [`Repro`] whose `command` replays the failure from a
//! clean checkout: regenerating the scenario from `(seed, category)`,
//! rebuilding the seeded catalog, replaying the minimized steps and
//! re-judging with the oracle are all deterministic.

use etlopt_core::oracle::ddmin;
use etlopt_workload::{Generator, GeneratorConfig, SizeCategory};

use crate::chain::{format_steps, replay, Step};
use crate::oracle::{scenario_executor, Oracle};

/// A minimized, replayable failure.
#[derive(Debug, Clone)]
pub struct Repro {
    /// Generator seed of the failing scenario.
    pub seed: u64,
    /// Smallest size category that still fails.
    pub category: SizeCategory,
    /// Rows per source in the seeded catalog.
    pub rows_per_source: usize,
    /// Minimized chain.
    pub steps: Vec<Step>,
    /// One-liner that replays the failure.
    pub command: String,
}

impl Repro {
    fn command_for(
        seed: u64,
        category: SizeCategory,
        rows_per_source: usize,
        steps: &[Step],
    ) -> String {
        format!(
            "cargo run --release --bin conformance -- replay --seed {seed} --category {} --rows {rows_per_source} --steps '{}'",
            category.label(),
            format_steps(steps),
        )
    }
}

/// Does this `(seed, category, steps)` triple still fail its oracle?
/// Scenario, catalog and replay are all regenerated from scratch, so the
/// predicate is exactly what the replay command will evaluate.
pub fn chain_fails(
    seed: u64,
    category: SizeCategory,
    rows_per_source: usize,
    steps: &[Step],
) -> bool {
    let s = Generator::generate(GeneratorConfig { seed, category });
    let exec = scenario_executor(&s.workflow, rows_per_source, seed);
    let Ok(oracle) = Oracle::new(&s.workflow, exec) else {
        // An original that cannot execute is itself a (different) bug;
        // don't attribute it to the chain.
        return false;
    };
    let r = replay(&s.workflow, steps);
    !oracle.check(&r.workflow).passed()
}

/// Shrink a failing chain to a minimal [`Repro`]. Returns `None` if the
/// chain does not actually fail on regeneration (not reproducible — the
/// caller should report that as its own defect).
pub fn minimize_failure(
    seed: u64,
    category: SizeCategory,
    rows_per_source: usize,
    steps: &[Step],
) -> Option<Repro> {
    if !chain_fails(seed, category, rows_per_source, steps) {
        return None;
    }

    let mut category = category;
    let mut steps = ddmin(steps, |sub| {
        chain_fails(seed, category, rows_per_source, sub)
    });

    // Downgrade the scenario band while the shrunk chain keeps failing,
    // re-shrinking after each successful downgrade (a smaller workflow may
    // need even fewer steps).
    let rank = |c: SizeCategory| match c {
        SizeCategory::Small => 0u8,
        SizeCategory::Medium => 1,
        SizeCategory::Large => 2,
    };
    for smaller in [SizeCategory::Medium, SizeCategory::Small] {
        if rank(smaller) >= rank(category) {
            continue;
        }
        if chain_fails(seed, smaller, rows_per_source, &steps) {
            category = smaller;
            steps = ddmin(&steps, |sub| {
                chain_fails(seed, category, rows_per_source, sub)
            });
        }
    }

    let command = Repro::command_for(seed, category, rows_per_source, &steps);
    Some(Repro {
        seed,
        category,
        rows_per_source,
        steps,
        command,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::parse_steps;

    #[test]
    fn benign_chains_are_not_reproducible_failures() {
        let steps = parse_steps("1,2,3").unwrap();
        assert!(minimize_failure(7, SizeCategory::Small, 64, &steps).is_none());
    }

    #[test]
    fn faulty_chain_shrinks_to_the_faulty_core() {
        // Noise picks around one faulty step: the minimizer must strip the
        // noise and keep a ≤3-step chain containing the faulty step. Seed 2
        // is one where the fault is observable on the seeded catalog.
        let steps = parse_steps("4,9,!0,6,2").unwrap();
        let repro = minimize_failure(2, SizeCategory::Small, 64, &steps).expect("chain must fail");
        assert!(
            repro.steps.len() <= 3,
            "expected ≤3 steps, got {:?}",
            repro.steps
        );
        assert!(repro.steps.iter().any(|s| matches!(s, Step::Faulty(_))));
        // The printed command's parameters replay to a failure.
        assert!(chain_fails(
            repro.seed,
            repro.category,
            repro.rows_per_source,
            &repro.steps
        ));
        assert!(repro.command.contains("--steps"));
    }
}
