//! Backend-differential conformance: every smoke-corpus scenario must
//! produce identical targets and bit-identical `ExecStats` on the
//! streaming backend and the materializing backend — both with the
//! default stream configuration and with a frame budget small enough to
//! force the buffer pool through its spill path.

use etlopt_conformance::{backend_differential, SMOKE_SEEDS};
use etlopt_core::trace::ExecCounters;
use etlopt_engine::StreamConfig;
use etlopt_workload::{Generator, GeneratorConfig, SizeCategory};

const ROWS_PER_SOURCE: usize = 96;

fn sweep(cfg: StreamConfig) -> ExecCounters {
    let mut total = ExecCounters::default();
    for &seed in &SMOKE_SEEDS {
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let counters = backend_differential(&s.workflow, ROWS_PER_SOURCE, seed, cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        total.absorb(&counters);
    }
    total
}

#[test]
fn smoke_corpus_agrees_under_default_config() {
    let counters = sweep(StreamConfig::default());
    assert!(counters.batches > 0);
    // The default budget comfortably holds the smoke volumes in memory.
    assert_eq!(counters.pages_spilled, 0, "{counters:?}");
}

#[test]
fn smoke_corpus_agrees_under_tiny_frame_budget() {
    let counters = sweep(StreamConfig {
        batch_rows: 8,
        frame_budget: 2,
        parallelism: 1,
        ..StreamConfig::default()
    });
    // A 2-frame pool over 96-row sources in 8-row pages cannot hold any
    // materialization boundary: the spill path must actually run.
    assert!(counters.spilled(), "{counters:?}");
    assert!(counters.pages_reloaded > 0, "{counters:?}");
}

#[test]
fn smoke_corpus_agrees_under_partition_parallelism() {
    // 4 workers over the sharded pool: `backend_differential` checks the
    // parallel stream against materialize *and* the 1-thread stream.
    let counters = sweep(StreamConfig {
        batch_rows: 8,
        frame_budget: 4,
        parallelism: 4,
        ..StreamConfig::default()
    });
    assert_eq!(counters.worker_rows.len(), 4, "{counters:?}");
    assert!(counters.worker_rows.iter().sum::<u64>() > 0, "{counters:?}");
}
