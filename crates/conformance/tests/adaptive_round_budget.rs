//! Round-budget regression for the adaptive sweep.
//!
//! Three small-band sweep scenarios (seeds derived from base seed 2005)
//! converge in exactly 5 rounds under the sweep's HS/600-state
//! configuration: their calibration only completes (zero misses) in round
//! 4, so the earliest possible consecutive-fingerprint repeat is round 5.
//! The sweep's original 4-round default flagged all three as failures even
//! though every converged plan passes the oracle. The `--adaptive` default
//! is therefore 6 rounds; this test pins the three offenders (and the
//! budget they actually need) so a future default cut reintroducing the
//! false failures is caught here, not in CI's full sweep.

use etlopt_conformance::{scenario_executor, Oracle};
use etlopt_core::cost::RowCountModel;
use etlopt_core::opt::{run_adaptive, AdaptiveConfig, HeuristicSearch, SearchBudget};
use etlopt_engine::Harvester;
use etlopt_workload::{CalibrationStore, Generator, GeneratorConfig, SizeCategory};

/// The sweep scenarios that need 5 rounds: `2005016513` (small-1fc1),
/// `2005032641` (small-5ec1), `2005035457` (small-69c1).
const SLOW_CONVERGERS: [u64; 3] = [2005016513, 2005032641, 2005035457];

/// Sweep configuration the failures reproduced under.
const ROWS_PER_SOURCE: usize = 64;
const SEARCH_STATES: usize = 600;

#[test]
fn slow_convergers_fit_the_six_round_default() {
    for seed in SLOW_CONVERGERS {
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let oracle = Oracle::new(
            &s.workflow,
            scenario_executor(&s.workflow, ROWS_PER_SOURCE, seed),
        )
        .expect("original must execute");
        let budget = SearchBudget::states(SEARCH_STATES).with_parallelism(1);
        let optimizer = HeuristicSearch::with_budget(budget);
        let mut harvester = Harvester::new(scenario_executor(&s.workflow, ROWS_PER_SOURCE, seed));
        let mut store = CalibrationStore::new();
        let report = run_adaptive(
            &s.workflow,
            &RowCountModel::default(),
            &optimizer,
            &mut harvester,
            &mut store,
            AdaptiveConfig::rounds(6),
        )
        .expect("adaptive loop");
        assert!(
            report.converged,
            "seed {seed} must converge within the 6-round sweep default \
             (used {} rounds)",
            report.rounds_used()
        );
        assert_eq!(
            report.rounds_used(),
            5,
            "seed {seed} documented as a 5-round converger; a change here \
             means the sweep default needs re-deriving"
        );
        let verdict = oracle.check(report.final_plan().expect("converged plan"));
        assert!(
            verdict.passed(),
            "seed {seed} converged plan failed the oracle: {:?}",
            verdict.failure_lines()
        );
    }
}
