//! Oracle-checked server responses: the optimizer-as-a-service daemon's
//! answers are judged by the same execution-backed equivalence oracle
//! that judges the one-shot sweep.
//!
//! One wire-protocol subtlety shapes the test: the text DSL normalizes
//! activity identifiers to fresh topological priorities on parse, so a
//! *re-parsed* optimized plan no longer carries the structured ids
//! (clones, factored pairs) the oracle's calibration transfer maps
//! observed statistics through. The oracle therefore judges the
//! *id-preserving* in-memory plan — after proving, byte-for-byte, that
//! the server returned exactly that plan: the same search construction
//! on the same parsed workflow must render to the server's `plan` text.
//! Target row counts and multiset digests are additionally cross-checked
//! against an independent execution of the returned plan text.

use etlopt_conformance::{scenario_executor, Oracle};
use etlopt_core::cost::RowCountModel;
use etlopt_core::opt::{BeamSearch, HeuristicSearch, Optimizer, SearchBudget};
use etlopt_core::text;
use etlopt_server::{json, run_request, table_digest, Code, Op, Registry, Request, ServerConfig};
use etlopt_workload::{Generator, GeneratorConfig, SizeCategory};

const ROWS_PER_SOURCE: usize = 64;
const SEARCH_STATES: usize = 600;

fn request(op: Op, workflow: &str, seed: u64, algo: &str) -> Request {
    Request {
        id: "oracle".to_owned(),
        tenant: "public".to_owned(),
        op,
        algo: algo.to_owned(),
        states: SEARCH_STATES,
        time_ms: 30_000,
        parallelism: 1,
        rows: ROWS_PER_SOURCE,
        seed,
        rounds: 6,
        warm: true,
        workflow: workflow.to_owned(),
    }
}

#[test]
fn server_execute_responses_pass_the_oracle() {
    // A shared registry across all scenarios and algorithms — the server
    // configuration under which sharing is most aggressive. The oracle
    // must hold anyway.
    let registry = Registry::new(ServerConfig::default());
    for seed in [2005, 2006, 2007, 2008] {
        let s = Generator::generate(GeneratorConfig {
            seed,
            category: SizeCategory::Small,
        });
        let wf_text = text::render(&s.workflow).expect("render workflow");
        // The workflow exactly as the server sees it (parse normalizes
        // activity ids, so the oracle's base must be this view too).
        let wf = text::parse(&wf_text).expect("parse workflow");
        let oracle = Oracle::new(&wf, scenario_executor(&wf, ROWS_PER_SOURCE, seed))
            .expect("original must execute");
        for algo in ["hs", "beam"] {
            let resp = run_request(&registry, &request(Op::Execute, &wf_text, seed, algo));
            assert_eq!(resp.code, Code::Ok, "seed {seed} {algo}: {}", resp.error);
            let body = json::parse(&resp.body).expect("parse body");
            let plan_text = body
                .get("plan")
                .and_then(json::Value::as_str)
                .expect("body has plan");

            // (a) The server returned exactly the plan the same search
            // construction produces in-memory…
            let budget = SearchBudget::states(SEARCH_STATES).with_parallelism(1);
            let optimizer: Box<dyn Optimizer> = match algo {
                "hs" => Box::new(HeuristicSearch::with_budget(budget)),
                _ => Box::new(BeamSearch::with_budget(budget)),
            };
            let best = optimizer
                .run(&wf, &RowCountModel::default())
                .expect("search")
                .best;
            assert_eq!(
                text::render(&best).expect("render best"),
                plan_text,
                "seed {seed} {algo}: server plan differs from the reference search"
            );

            // …(b) and that plan passes the execution-backed oracle.
            let verdict = oracle.check(&best);
            assert!(
                verdict.passed(),
                "seed {seed} {algo}: server plan failed the oracle: {:?}",
                verdict.failure_lines()
            );

            // (c) The reported targets match an independent execution of
            // the returned plan *text*, row counts and digests both.
            let plan = text::parse(plan_text).expect("parse returned plan");
            let run = scenario_executor(&wf, ROWS_PER_SOURCE, seed)
                .run(&plan)
                .expect("reference execution");
            let targets = body.get("targets").expect("body has targets");
            for (name, table) in &run.targets {
                let entry = targets
                    .get(name)
                    .unwrap_or_else(|| panic!("seed {seed}: body missing target {name}"));
                assert_eq!(
                    entry.get("rows").and_then(json::Value::as_u64),
                    Some(table.len() as u64),
                    "seed {seed} {algo}: row count mismatch for target {name}"
                );
                assert_eq!(
                    entry.get("digest").and_then(json::Value::as_str),
                    Some(format!("{:016x}", table_digest(table)).as_str()),
                    "seed {seed} {algo}: digest mismatch for target {name}"
                );
            }
        }
    }
}

#[test]
fn shared_registry_never_changes_a_body_the_oracle_approved() {
    // Same request against a warm shared registry and a fresh one: every
    // body byte-identical (the conformance statement of the server's
    // determinism contract).
    let s = Generator::generate(GeneratorConfig {
        seed: 2005,
        category: SizeCategory::Small,
    });
    let wf_text = text::render(&s.workflow).expect("render workflow");
    let req = request(Op::Execute, &wf_text, 2005, "hs");

    let shared = Registry::new(ServerConfig::default());
    let warm_bodies: Vec<String> = (0..3)
        .map(|_| {
            let r = run_request(&shared, &req);
            assert_eq!(r.code, Code::Ok, "{}", r.error);
            r.body
        })
        .collect();
    let fresh = run_request(&Registry::new(ServerConfig::default()), &req);
    for (i, body) in warm_bodies.iter().enumerate() {
        assert_eq!(
            body, &fresh.body,
            "warm run {i} diverged from the fresh-registry body"
        );
    }
}
