//! Batch iterators: the pull-based operator pipeline of the streaming
//! backend.
//!
//! Every operator is a [`BatchIter`]: pulling `next_batch` pulls input
//! batches from its child, transforms them, and counts the same
//! per-activity statistics the materializing executor counts — so both
//! backends report bit-identical [`crate::executor::ExecStats`]. Row-wise
//! operators reuse the materializing implementations verbatim on each
//! batch; stateful operators (key checks, dedup, aggregation, the binary
//! ops) carry their state across batches, draining a side through the
//! buffer pool where the materializing path would hold a whole table.
//!
//! `counters.batches` counts batches *born* into a pipeline: source-table
//! scans, buffer re-reads, cached-table scans, and aggregate output
//! emissions. Transformed batches flowing through row-wise operators are
//! not re-counted.
//!
//! This module is the 1-worker pull pipeline; at
//! `StreamConfig::parallelism > 1` execution moves to the partitioned
//! coordinators instead — push-based pipelined segments in
//! [`super::partition`] (default) or the round-synchronous plan in
//! [`super::roundsync`] — both bit-identical to this backend.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use etlopt_core::schema::Schema;
use etlopt_core::semantics::{BinaryOp, UnaryOp};

use crate::error::{EngineError, Result};
use crate::ops::{self, tuple_key, AggState, ExecCtx};
use crate::pool::BufferId;
use crate::table::{Row, Table};

use super::Runtime;

/// One streaming operator: a pull-based producer of row batches.
pub(crate) trait BatchIter {
    /// The schema of every batch this iterator emits.
    fn schema(&self) -> &Schema;
    /// Produce the next batch, or `None` once exhausted.
    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Vec<Row>>>;
}

/// A boxed operator in a pipeline.
pub(crate) type BoxIter = Box<dyn BatchIter>;

fn internal(reason: impl Into<String>) -> EngineError {
    EngineError::FunctionFailed {
        function: "exec::stream".into(),
        reason: reason.into(),
    }
}

/// Scan over an owned table (source recordsets), emitting
/// `batch_rows`-sized chunks.
pub(crate) struct TableScan {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl TableScan {
    pub(crate) fn new(table: Table) -> TableScan {
        TableScan {
            schema: table.schema().clone(),
            rows: table.into_rows().into_iter(),
        }
    }
}

impl BatchIter for TableScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Vec<Row>>> {
        let batch: Vec<Row> = self.rows.by_ref().take(rt.batch_rows).collect();
        if batch.is_empty() {
            return Ok(None);
        }
        rt.counters.batches += 1;
        Ok(Some(batch))
    }
}

/// Scan over a cached table shared via `Arc` (cache hits).
pub(crate) struct CachedScan {
    table: Arc<Table>,
    schema: Schema,
    pos: usize,
}

impl CachedScan {
    pub(crate) fn new(table: Arc<Table>) -> CachedScan {
        CachedScan {
            schema: table.schema().clone(),
            table,
            pos: 0,
        }
    }
}

impl BatchIter for CachedScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Vec<Row>>> {
        let rows = self.table.rows();
        if self.pos >= rows.len() {
            return Ok(None);
        }
        let end = (self.pos + rt.batch_rows).min(rows.len());
        let batch = rows[self.pos..end].to_vec();
        self.pos = end;
        rt.counters.batches += 1;
        Ok(Some(batch))
    }
}

/// Re-read a pool buffer page-at-a-time (each appended batch is one page,
/// so pages come back in the batch granularity they were drained at).
pub(crate) struct BufferScan {
    buf: BufferId,
    schema: Schema,
    page: usize,
}

impl BufferScan {
    pub(crate) fn new(buf: BufferId, schema: Schema) -> BufferScan {
        BufferScan {
            buf,
            schema,
            page: 0,
        }
    }
}

impl BatchIter for BufferScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Vec<Row>>> {
        if self.page >= rt.pool.pages(self.buf) {
            return Ok(None);
        }
        let rows = rt.pool.page(self.buf, self.page)?;
        self.page += 1;
        rt.counters.batches += 1;
        Ok(Some(rows.as_ref().clone()))
    }
}

/// Column permutation (recordset nodes present their provider's output
/// under the recordset's declared schema).
struct Reorder {
    inner: BoxIter,
    perm: Vec<usize>,
    schema: Schema,
}

impl BatchIter for Reorder {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Vec<Row>>> {
        let Some(batch) = self.inner.next_batch(rt)? else {
            return Ok(None);
        };
        Ok(Some(
            batch
                .iter()
                .map(|r| self.perm.iter().map(|&i| r[i].clone()).collect())
                .collect(),
        ))
    }
}

/// Wrap `inner` so its batches come out in `target` column order; a no-op
/// when the schema already matches.
pub(crate) fn reorder(inner: BoxIter, target: &Schema) -> Result<BoxIter> {
    if inner.schema() == target {
        return Ok(inner);
    }
    let probe = Table::empty(inner.schema().clone());
    let mut perm = Vec::with_capacity(target.len());
    for a in target.iter() {
        perm.push(probe.col(a)?);
    }
    Ok(Box::new(Reorder {
        inner,
        perm,
        schema: target.clone(),
    }))
}

/// A stateless row-wise operator applied batch-at-a-time through the
/// materializing implementation (`ops::exec_unary`), counting stats under
/// the owning activity's key.
struct OpIter {
    inner: BoxIter,
    op: UnaryOp,
    key: String,
    counts_out: bool,
    in_schema: Schema,
    schema: Schema,
}

impl BatchIter for OpIter {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Vec<Row>>> {
        let Some(batch) = self.inner.next_batch(rt)? else {
            return Ok(None);
        };
        rt.add_processed(&self.key, batch.len() as u64);
        let t = Table::from_rows(self.in_schema.clone(), batch)?;
        let out = ops::exec_unary(&self.op, &t, &rt.ctx)?;
        let rows = out.into_rows();
        if self.counts_out {
            rt.add_out(&self.key, rows.len() as u64);
        }
        Ok(Some(rows))
    }
}

/// Keep-first filtering with a seen-set persisted across batches: `PK`
/// (key columns) and `DD` (whole rows).
struct KeepFirst {
    inner: BoxIter,
    /// Key columns, or `None` for whole-row dedup.
    cols: Option<Vec<usize>>,
    seen: HashMap<String, ()>,
    key: String,
    counts_out: bool,
    schema: Schema,
}

impl BatchIter for KeepFirst {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Vec<Row>>> {
        let Some(batch) = self.inner.next_batch(rt)? else {
            return Ok(None);
        };
        rt.add_processed(&self.key, batch.len() as u64);
        let mut out = Vec::new();
        for row in batch {
            let k = match &self.cols {
                Some(cols) => tuple_key(cols.iter().map(|&i| &row[i])),
                None => tuple_key(row.iter()),
            };
            if let Entry::Vacant(e) = self.seen.entry(k) {
                e.insert(());
                out.push(row);
            }
        }
        if self.counts_out {
            rt.add_out(&self.key, out.len() as u64);
        }
        Ok(Some(out))
    }
}

/// Streaming aggregation: folds every input batch into bounded
/// accumulator state (one entry per group), then emits the result in
/// batches. The only buffered data is the group table itself.
struct Agg {
    inner: BoxIter,
    state: Option<AggState>,
    out: Option<std::vec::IntoIter<Row>>,
    key: String,
    counts_out: bool,
    schema: Schema,
}

impl BatchIter for Agg {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Vec<Row>>> {
        if let Some(mut state) = self.state.take() {
            while let Some(batch) = self.inner.next_batch(rt)? {
                rt.add_processed(&self.key, batch.len() as u64);
                state.feed(&batch)?;
            }
            self.out = Some(state.finish()?.into_rows().into_iter());
        }
        let Some(it) = self.out.as_mut() else {
            return Ok(None);
        };
        let batch: Vec<Row> = it.by_ref().take(rt.batch_rows).collect();
        if batch.is_empty() {
            return Ok(None);
        }
        rt.counters.batches += 1;
        if self.counts_out {
            rt.add_out(&self.key, batch.len() as u64);
        }
        Ok(Some(batch))
    }
}

/// Counts `rows_out` only — stands in for an empty merged chain, whose
/// materializing counterpart emits its input unchanged but still records
/// the output cardinality.
struct Tally {
    inner: BoxIter,
    key: String,
}

impl BatchIter for Tally {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Vec<Row>>> {
        let Some(batch) = self.inner.next_batch(rt)? else {
            return Ok(None);
        };
        rt.add_out(&self.key, batch.len() as u64);
        Ok(Some(batch))
    }
}

/// Build a pipeline of unary links under one activity key: every link
/// counts `rows_processed` (matching how `ops::exec_chain` prices merged
/// chains per link), only the last counts `rows_out`.
pub(crate) fn unary_pipeline(
    chain: &[UnaryOp],
    input: BoxIter,
    key: &str,
    ctx: &ExecCtx<'_>,
) -> Result<BoxIter> {
    if chain.is_empty() {
        return Ok(Box::new(Tally {
            inner: input,
            key: key.to_owned(),
        }));
    }
    let mut cur = input;
    let last = chain.len() - 1;
    for (i, op) in chain.iter().enumerate() {
        let counts_out = i == last;
        let in_schema = cur.schema().clone();
        cur = match op {
            UnaryOp::PkCheck { key: pk, .. } => {
                let probe = Table::empty(in_schema.clone());
                let cols: Vec<usize> = pk.iter().map(|a| probe.col(a)).collect::<Result<_>>()?;
                Box::new(KeepFirst {
                    inner: cur,
                    cols: Some(cols),
                    seen: HashMap::new(),
                    key: key.to_owned(),
                    counts_out,
                    schema: in_schema,
                })
            }
            UnaryOp::Dedup { .. } => Box::new(KeepFirst {
                inner: cur,
                cols: None,
                seen: HashMap::new(),
                key: key.to_owned(),
                counts_out,
                schema: in_schema,
            }),
            UnaryOp::Aggregate { agg, .. } => {
                let state = AggState::new(agg, &in_schema)?;
                let schema = state.output_schema();
                Box::new(Agg {
                    inner: cur,
                    state: Some(state),
                    out: None,
                    key: key.to_owned(),
                    counts_out,
                    schema,
                })
            }
            op => {
                // Row-wise: derive the output schema (and surface schema
                // errors exactly like the materializing path) by probing
                // the operator with an empty table.
                let schema = ops::exec_unary(op, &Table::empty(in_schema.clone()), ctx)?
                    .schema()
                    .clone();
                Box::new(OpIter {
                    inner: cur,
                    op: op.clone(),
                    key: key.to_owned(),
                    counts_out,
                    in_schema,
                    schema,
                })
            }
        };
    }
    Ok(cur)
}

/// Bag union: every left batch, then every right batch (reordered to the
/// left layout at build time) — the exact row order of the materializing
/// union.
struct Union {
    left: BoxIter,
    right: BoxIter,
    left_done: bool,
    key: String,
    schema: Schema,
}

impl BatchIter for Union {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Vec<Row>>> {
        if !self.left_done {
            if let Some(batch) = self.left.next_batch(rt)? {
                rt.add_processed(&self.key, batch.len() as u64);
                rt.add_out(&self.key, batch.len() as u64);
                return Ok(Some(batch));
            }
            self.left_done = true;
        }
        let Some(batch) = self.right.next_batch(rt)? else {
            return Ok(None);
        };
        rt.add_processed(&self.key, batch.len() as u64);
        rt.add_out(&self.key, batch.len() as u64);
        Ok(Some(batch))
    }
}

/// Streaming hash join: the build (right) side drains into a pool buffer
/// plus a key → row-index map on the first pull, then probe (left)
/// batches stream through, fetching matches back via random row access —
/// so the build side is frame-budget-bounded, not memory-resident.
struct HashJoin {
    left: BoxIter,
    right: Option<BoxIter>,
    built: Option<(BufferId, HashMap<String, Vec<usize>>)>,
    lcols: Vec<usize>,
    rcols: Vec<usize>,
    /// Right columns appended to matched left rows.
    extra: Vec<usize>,
    key: String,
    schema: Schema,
}

impl BatchIter for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Vec<Row>>> {
        if self.built.is_none() {
            let mut right = self
                .right
                .take()
                .ok_or_else(|| internal("join build side already consumed"))?;
            let buf = rt.pool.create(right.schema().clone());
            let mut index: HashMap<String, Vec<usize>> = HashMap::new();
            let mut base = 0usize;
            while let Some(batch) = right.next_batch(rt)? {
                rt.add_processed(&self.key, batch.len() as u64);
                for (i, row) in batch.iter().enumerate() {
                    // NULL keys never join.
                    if self.rcols.iter().any(|&c| row[c].is_null()) {
                        continue;
                    }
                    index
                        .entry(tuple_key(self.rcols.iter().map(|&c| &row[c])))
                        .or_default()
                        .push(base + i);
                }
                base += batch.len();
                rt.pool.append(buf, batch)?;
            }
            self.built = Some((buf, index));
        }
        let Some(lbatch) = self.left.next_batch(rt)? else {
            return Ok(None);
        };
        rt.add_processed(&self.key, lbatch.len() as u64);
        let (buf, index) = self
            .built
            .as_ref()
            .ok_or_else(|| internal("join probed before build"))?;
        let mut out = Vec::new();
        for lrow in &lbatch {
            if self.lcols.iter().any(|&c| lrow[c].is_null()) {
                continue;
            }
            let k = tuple_key(self.lcols.iter().map(|&c| &lrow[c]));
            if let Some(matches) = index.get(&k) {
                for &ri in matches {
                    let rrow = rt.pool.row(*buf, ri)?;
                    let mut row = lrow.clone();
                    row.extend(self.extra.iter().map(|&c| rrow[c].clone()));
                    out.push(row);
                }
            }
        }
        rt.add_out(&self.key, out.len() as u64);
        Ok(Some(out))
    }
}

/// Bag difference / intersection: the right side (reordered to the left
/// layout) drains into a multiplicity map on the first pull, then left
/// batches stream through cancelling against it.
struct DiffIntersect {
    left: BoxIter,
    right: Option<BoxIter>,
    counts: Option<HashMap<String, usize>>,
    intersect: bool,
    key: String,
    schema: Schema,
}

impl BatchIter for DiffIntersect {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self, rt: &mut Runtime<'_>) -> Result<Option<Vec<Row>>> {
        if self.counts.is_none() {
            let mut right = self
                .right
                .take()
                .ok_or_else(|| internal("diff/intersect right side already consumed"))?;
            let mut counts: HashMap<String, usize> = HashMap::new();
            while let Some(batch) = right.next_batch(rt)? {
                rt.add_processed(&self.key, batch.len() as u64);
                for row in &batch {
                    *counts.entry(tuple_key(row.iter())).or_insert(0) += 1;
                }
            }
            self.counts = Some(counts);
        }
        let Some(batch) = self.left.next_batch(rt)? else {
            return Ok(None);
        };
        rt.add_processed(&self.key, batch.len() as u64);
        let counts = self
            .counts
            .as_mut()
            .ok_or_else(|| internal("diff/intersect streamed before build"))?;
        let mut out = Vec::new();
        for row in batch {
            let k = tuple_key(row.iter());
            if self.intersect {
                if let Some(c) = counts.get_mut(&k) {
                    if *c > 0 {
                        *c -= 1;
                        out.push(row);
                    }
                }
            } else {
                match counts.get_mut(&k) {
                    Some(c) if *c > 0 => *c -= 1,
                    _ => out.push(row),
                }
            }
        }
        rt.add_out(&self.key, out.len() as u64);
        Ok(Some(out))
    }
}

/// Build the streaming counterpart of one binary activity. The operator is
/// probed with empty inputs first, so schema validation and output-schema
/// derivation go through the exact materializing code path.
pub(crate) fn binary_pipeline(
    op: &BinaryOp,
    left: BoxIter,
    right: BoxIter,
    key: &str,
) -> Result<BoxIter> {
    let lschema = left.schema().clone();
    let rschema = right.schema().clone();
    let schema = ops::exec_binary(
        op,
        &Table::empty(lschema.clone()),
        &Table::empty(rschema.clone()),
    )?
    .schema()
    .clone();
    match op {
        BinaryOp::Union => Ok(Box::new(Union {
            left,
            right: reorder(right, &lschema)?,
            left_done: false,
            key: key.to_owned(),
            schema,
        })),
        BinaryOp::Join(on) => {
            let lprobe = Table::empty(lschema.clone());
            let rprobe = Table::empty(rschema.clone());
            let lcols: Vec<usize> = on.iter().map(|a| lprobe.col(a)).collect::<Result<_>>()?;
            let rcols: Vec<usize> = on.iter().map(|a| rprobe.col(a)).collect::<Result<_>>()?;
            let extra: Vec<usize> = rschema
                .iter()
                .enumerate()
                .filter(|(_, a)| !lschema.contains(a))
                .map(|(i, _)| i)
                .collect();
            Ok(Box::new(HashJoin {
                left,
                right: Some(right),
                built: None,
                lcols,
                rcols,
                extra,
                key: key.to_owned(),
                schema,
            }))
        }
        BinaryOp::Difference | BinaryOp::Intersection => Ok(Box::new(DiffIntersect {
            left,
            right: Some(reorder(right, &lschema)?),
            counts: None,
            intersect: matches!(op, BinaryOp::Intersection),
            key: key.to_owned(),
            schema,
        })),
    }
}
