//! The streaming execution backend: pull-based, batch-at-a-time workflow
//! evaluation over the buffer pool (`crate::pool`).
//!
//! Where the materializing executor holds every node's full output table,
//! the streaming backend builds one [`stream::BatchIter`] pipeline per
//! workflow and moves fixed-size row batches through it. Rows materialize
//! only at **boundaries** — fan-out nodes (≥ 2 consumers), targets, join
//! build sides — and those drains go through the frame-budget-bounded
//! [`BufferPool`], spilling to disk past the budget. Both backends
//! produce bag-identical targets in the same row order and bit-identical
//! [`ExecStats`]; the conformance harness cross-checks this on every
//! smoke scenario.
//!
//! An optional [`SharedCache`] (see
//! [`crate::Executor::run_stream_cached`]) reuses boundary tables across
//! runs keyed by the per-node structural fingerprints of
//! [`etlopt_core::signature::hash_state`], so states sharing a subgraph
//! execute the common prefix once. Those fingerprints digest activity
//! *identity*, not operator content, so a cache is sound only across
//! states of one workflow family (states derived from a common initial
//! workflow by transitions, where the id ↔ operator binding is fixed)
//! over one catalog. A cached run's stats cover only the work actually
//! performed — the cross-backend stats guarantee applies to uncached
//! runs.

mod cache;
pub(crate) mod channel;
pub(crate) mod partition;
pub(crate) mod roundsync;
pub(crate) mod stream;

pub use cache::{SharedCache, SharedCacheHandle};

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use etlopt_core::activity::Op;
use etlopt_core::error::CoreError;
use etlopt_core::graph::{Node, NodeId};
use etlopt_core::signature::{hash_state, NodeHashes};
use etlopt_core::trace::ExecCounters;
use etlopt_core::workflow::Workflow;

use crate::error::{EngineError, Result};
use crate::executor::{ExecResult, ExecStats};
use crate::ops::ExecCtx;
use crate::pool::{BufferId, BufferPool, PoolConfig};
use crate::table::Table;

use stream::BoxIter;

/// Which execution strategy [`crate::Executor::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Evaluate node-at-a-time, holding every intermediate table whole.
    #[default]
    Materialize,
    /// Stream batches through operator pipelines over the buffer pool.
    Stream,
}

/// Streaming backend knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Rows per batch moving through a pipeline.
    pub batch_rows: usize,
    /// Buffer-pool frame budget: pages resident before eviction/spill.
    pub frame_budget: usize,
    /// Worker threads for partition-parallel execution (≥ 1). At 1 the
    /// classic single-threaded pipeline runs; above 1 every node's rows
    /// are hash-partitioned across this many scoped workers
    /// (`partition`), with targets, row order, and [`ExecStats`] kept
    /// bit-identical to the sequential run.
    pub parallelism: usize,
    /// Capacity (in batches) of each bounded channel between a segment
    /// feeder and a partition worker in the pipelined executor — the
    /// backpressure knob. Clamped to ≥ 1. Targets, row order, and
    /// [`ExecStats`] are identical at every capacity; only scheduling
    /// telemetry (channel high-water, blocked tallies) varies.
    pub channel_batches: usize,
    /// Select the pipelined partition executor (`true`, default) or the
    /// legacy round-synchronous coordinator (`false`) above
    /// `parallelism = 1`. Both are bit-identical to the sequential
    /// stream; the round-sync path exists as a benchmarking baseline and
    /// a differential reference.
    pub pipeline: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            batch_rows: 1024,
            frame_budget: 256,
            parallelism: 1,
            channel_batches: 4,
            pipeline: true,
        }
    }
}

/// A streaming run's outcome: the same [`ExecResult`] the materializing
/// backend produces, plus the runtime's page/batch/cache traffic.
#[derive(Debug, Clone)]
pub struct StreamRun {
    /// Targets and per-activity statistics.
    pub result: ExecResult,
    /// Pool, batch and cache counters.
    pub counters: ExecCounters,
}

/// Shared mutable state threaded through every `next_batch` pull.
pub(crate) struct Runtime<'a> {
    pub(crate) pool: BufferPool,
    pub(crate) stats: ExecStats,
    pub(crate) counters: ExecCounters,
    pub(crate) ctx: ExecCtx<'a>,
    pub(crate) batch_rows: usize,
}

impl Runtime<'_> {
    pub(crate) fn add_processed(&mut self, key: &str, n: u64) {
        *self.stats.rows_processed.entry(key.to_owned()).or_insert(0) += n;
    }

    pub(crate) fn add_out(&mut self, key: &str, n: u64) {
        *self.stats.rows_out.entry(key.to_owned()).or_insert(0) += n;
    }
}

/// How a produced node output is handed to its consumers.
enum Out {
    /// Single consumer: the pipeline is passed on whole (no
    /// materialization).
    Pipe(Option<BoxIter>),
    /// Fan-out: drained into a pool buffer, re-read per consumer.
    Buffered(BufferId),
    /// Served from the shared cache.
    Cached(Arc<Table>),
}

fn internal(reason: impl Into<String>) -> EngineError {
    EngineError::FunctionFailed {
        function: "exec::plan".into(),
        reason: reason.into(),
    }
}

fn take_iter(outs: &mut HashMap<NodeId, Out>, id: NodeId, pool: &BufferPool) -> Result<BoxIter> {
    match outs.get_mut(&id) {
        Some(Out::Pipe(slot)) => slot
            .take()
            .ok_or_else(|| internal(format!("pipeline of node {id:?} consumed twice"))),
        Some(Out::Buffered(buf)) => Ok(Box::new(stream::BufferScan::new(*buf, pool.schema(*buf)))),
        Some(Out::Cached(t)) => Ok(Box::new(stream::CachedScan::new(Arc::clone(t)))),
        None => Err(internal(format!("provider {id:?} has no planned output"))),
    }
}

/// Drain a pipeline into a fresh pool buffer.
fn drain(rt: &mut Runtime<'_>, mut iter: BoxIter) -> Result<BufferId> {
    let buf = rt.pool.create(iter.schema().clone());
    while let Some(batch) = iter.next_batch(rt)? {
        rt.pool.append(buf, batch)?;
    }
    Ok(buf)
}

/// Cache planning: fingerprints, boundary hits, and the node set that
/// still executes. Shared by the sequential and partition-parallel
/// executors so a cache populated by either serves the other.
pub(crate) struct CachePlan {
    pub(crate) hashes: Option<NodeHashes>,
    pub(crate) cached: HashMap<NodeId, Arc<Table>>,
    needed: Option<HashSet<NodeId>>,
}

impl CachePlan {
    /// Does this node execute (i.e. is it not cut off by a cache hit)?
    pub(crate) fn runs(&self, id: NodeId) -> bool {
        self.needed.as_ref().is_none_or(|n| n.contains(&id))
    }
}

/// Walk back from the targets, consulting the cache at materialization
/// boundaries (the only admission points). A hit cuts off its whole
/// upstream subgraph — the returned `needed` set is what actually
/// executes. Without a cache every node runs, like materialize.
pub(crate) fn plan_cache(
    wf: &Workflow,
    order: &[NodeId],
    cache: Option<&mut SharedCache>,
    counters: &mut ExecCounters,
) -> Result<CachePlan> {
    let graph = wf.graph();
    let mut plan = CachePlan {
        hashes: None,
        cached: HashMap::new(),
        needed: None,
    };
    if let Some(c) = cache {
        let (h, _) = hash_state(wf);
        let mut keep: HashSet<NodeId> = HashSet::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for &id in order {
            if graph.consumers(id)?.is_empty() {
                stack.push(id);
            }
        }
        while let Some(id) = stack.pop() {
            if !keep.insert(id) {
                continue;
            }
            let consumers = graph.consumers(id)?.len();
            let is_target = consumers == 0 && matches!(graph.node(id)?, Node::Recordset(_));
            if consumers >= 2 || is_target {
                if let Some(t) = c.get(h.of(id)) {
                    counters.cache_hits += 1;
                    plan.cached.insert(id, t);
                    continue;
                }
                counters.cache_misses += 1;
            }
            for p in graph.providers(id)?.into_iter().flatten() {
                stack.push(p);
            }
        }
        plan.hashes = Some(h);
        plan.needed = Some(keep);
    }
    Ok(plan)
}

/// Execute `wf` with the streaming backend. With a cache, boundary
/// lookups may serve whole subgraphs from prior runs (the cache must
/// belong to this catalog — fingerprints hash structure, not data).
pub(crate) fn run_stream(
    ctx: ExecCtx<'_>,
    wf: &Workflow,
    cfg: StreamConfig,
    mut cache: Option<&mut SharedCache>,
) -> Result<StreamRun> {
    if cfg.parallelism > 1 {
        return if cfg.pipeline {
            partition::run_parallel(ctx, wf, cfg, cache)
        } else {
            roundsync::run_round_sync(ctx, wf, cfg, cache)
        };
    }
    let graph = wf.graph();
    let order = graph.topo_order()?;
    let mut rt = Runtime {
        pool: BufferPool::new(PoolConfig::with_budget(cfg.frame_budget)),
        stats: ExecStats::default(),
        counters: ExecCounters::default(),
        ctx,
        batch_rows: cfg.batch_rows.max(1),
    };

    let plan = plan_cache(wf, &order, cache.as_deref_mut(), &mut rt.counters)?;
    let runs = |id: &NodeId| plan.runs(*id);

    // Pre-seed a zero entry per executing activity: the materializing
    // executor creates entries unconditionally, and bit-identical stats
    // include the key set.
    for &id in &order {
        if !runs(&id) || plan.cached.contains_key(&id) {
            continue;
        }
        if let Node::Activity(act) = graph.node(id)? {
            let key = act.id.to_string();
            rt.stats.rows_processed.entry(key.clone()).or_insert(0);
            rt.stats.rows_out.entry(key).or_insert(0);
        }
    }

    let mut outs: HashMap<NodeId, Out> = HashMap::new();
    let mut targets: BTreeMap<String, Table> = BTreeMap::new();

    for &id in &order {
        if !runs(&id) {
            continue;
        }
        if let Some(t) = plan.cached.get(&id) {
            if let Node::Recordset(rs) = graph.node(id)? {
                if graph.consumers(id)?.is_empty() {
                    targets.insert(rs.name.clone(), (**t).clone());
                }
            }
            outs.insert(id, Out::Cached(Arc::clone(t)));
            continue;
        }
        let consumers = graph.consumers(id)?.len();
        match graph.node(id)? {
            Node::Recordset(rs) => {
                let iter: BoxIter = match graph.provider(id, 0)? {
                    None => {
                        let t = rt
                            .ctx
                            .catalog
                            .table(&rs.name)
                            .ok_or_else(|| EngineError::MissingSource(rs.name.clone()))?;
                        // Present the source under its declared schema
                        // (reference attribute names / order).
                        Box::new(stream::TableScan::new(t.reordered(&rs.schema)?))
                    }
                    Some(p) => stream::reorder(take_iter(&mut outs, p, &rt.pool)?, &rs.schema)?,
                };
                if consumers == 0 {
                    // Target: drain through the pool (bounding the
                    // resident set), materialize at the API boundary.
                    let buf = drain(&mut rt, iter)?;
                    let table = rt.pool.to_table(buf)?;
                    if let (Some(c), Some(h)) = (cache.as_deref_mut(), plan.hashes.as_ref()) {
                        c.insert(h.of(id), Arc::new(table.clone()));
                        rt.counters.cache_insertions += 1;
                    }
                    targets.insert(rs.name.clone(), table);
                } else if consumers == 1 {
                    outs.insert(id, Out::Pipe(Some(iter)));
                } else {
                    let buf = drain(&mut rt, iter)?;
                    if let (Some(c), Some(h)) = (cache.as_deref_mut(), plan.hashes.as_ref()) {
                        c.insert(h.of(id), Arc::new(rt.pool.to_table(buf)?));
                        rt.counters.cache_insertions += 1;
                    }
                    outs.insert(id, Out::Buffered(buf));
                }
            }
            Node::Activity(act) => {
                let mut inputs: Vec<BoxIter> = Vec::new();
                for p in graph.providers(id)? {
                    let p = p.ok_or(EngineError::Core(CoreError::MissingProvider {
                        node: id,
                        port: 0,
                    }))?;
                    inputs.push(take_iter(&mut outs, p, &rt.pool)?);
                }
                let key = act.id.to_string();
                let iter: BoxIter = match &act.op {
                    Op::Unary(op) => {
                        let input = pop_input(&mut inputs, id)?;
                        stream::unary_pipeline(std::slice::from_ref(op), input, &key, &rt.ctx)?
                    }
                    Op::Merged(chain) => {
                        let input = pop_input(&mut inputs, id)?;
                        stream::unary_pipeline(chain, input, &key, &rt.ctx)?
                    }
                    Op::Binary(op) => {
                        let right = inputs
                            .pop()
                            .ok_or_else(|| internal(format!("binary node {id:?} lacks inputs")))?;
                        let left = pop_input(&mut inputs, id)?;
                        stream::binary_pipeline(op, left, right, &key)?
                    }
                };
                if consumers == 0 {
                    // Dangling activity: run it for stats parity with the
                    // materializing executor, discard the rows.
                    let mut iter = iter;
                    while iter.next_batch(&mut rt)?.is_some() {}
                } else if consumers == 1 {
                    outs.insert(id, Out::Pipe(Some(iter)));
                } else {
                    let buf = drain(&mut rt, iter)?;
                    if let (Some(c), Some(h)) = (cache.as_deref_mut(), plan.hashes.as_ref()) {
                        c.insert(h.of(id), Arc::new(rt.pool.to_table(buf)?));
                        rt.counters.cache_insertions += 1;
                    }
                    outs.insert(id, Out::Buffered(buf));
                }
            }
        }
    }

    let pool_traffic = rt.pool.counters();
    rt.counters.absorb(&pool_traffic);
    Ok(StreamRun {
        result: ExecResult {
            targets,
            stats: rt.stats,
        },
        counters: rt.counters,
    })
}

fn pop_input(inputs: &mut Vec<BoxIter>, id: NodeId) -> Result<BoxIter> {
    if inputs.is_empty() {
        return Err(internal(format!("node {id:?} lacks an input pipeline")));
    }
    Ok(inputs.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::executor::Executor;
    use crate::table::Table;
    use etlopt_core::predicate::Predicate;
    use etlopt_core::scalar::Scalar;
    use etlopt_core::schema::Schema;
    use etlopt_core::semantics::{Aggregation, BinaryOp, UnaryOp};
    use etlopt_core::workflow::WorkflowBuilder;

    fn wide_table(rows: i64) -> Table {
        Table::from_rows(
            Schema::of(["k", "v"]),
            (0..rows)
                .map(|i| {
                    vec![
                        Scalar::Int(i % 17),
                        if i % 11 == 0 {
                            Scalar::Null
                        } else {
                            Scalar::Float(i as f64)
                        },
                    ]
                })
                .collect(),
        )
        .unwrap()
    }

    fn pipeline_wf() -> etlopt_core::workflow::Workflow {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 500.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("v", 100.0)), nn);
        let g = b.unary(
            "γ",
            UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")),
            f,
        );
        b.target("T", Schema::of(["k", "v"]), g);
        b.build().unwrap()
    }

    fn executor(rows: i64) -> Executor {
        let mut cat = Catalog::new();
        cat.insert("S", wide_table(rows));
        Executor::new(cat)
    }

    fn assert_backends_agree(exec: &Executor, wf: &etlopt_core::workflow::Workflow) -> StreamRun {
        let mat = exec.run_materialize(wf).unwrap();
        let run = exec.run_stream(wf).unwrap();
        assert_eq!(
            mat.targets, run.result.targets,
            "targets must be identical (schema, rows, order)"
        );
        assert_eq!(mat.stats, run.result.stats, "stats must be bit-identical");
        run
    }

    #[test]
    fn linear_pipeline_matches_materialize() {
        let exec = executor(500);
        let run = assert_backends_agree(&exec, &pipeline_wf());
        assert!(run.counters.batches > 0);
    }

    #[test]
    fn small_frame_budget_spills_and_still_matches() {
        // No aggregate here: the target drain must carry the full filtered
        // volume (~1700 rows in 64-row pages) so a 2-frame budget is forced
        // to spill. An aggregating pipeline would collapse to one page.
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 2000.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        let f = b.unary("σ", UnaryOp::filter(Predicate::gt("v", 100.0)), nn);
        b.target("T", Schema::of(["k", "v"]), f);
        let wf = b.build().unwrap();
        let exec = executor(2000).with_stream_config(StreamConfig {
            batch_rows: 64,
            frame_budget: 2,
            parallelism: 1,
            ..StreamConfig::default()
        });
        let run = assert_backends_agree(&exec, &wf);
        assert!(run.counters.spilled(), "{:?}", run.counters);
        assert!(run.counters.pages_reloaded > 0);
        assert!(run.counters.peak_resident_frames <= 2);
    }

    #[test]
    fn fan_out_and_binary_ops_match() {
        let mut b = WorkflowBuilder::new();
        let s1 = b.source("S", Schema::of(["k", "v"]), 300.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s1);
        let hi = b.unary("HI", UnaryOp::filter(Predicate::gt("v", 150.0)), nn);
        let lo = b.unary("LO", UnaryOp::filter(Predicate::le("v", 150.0)), nn);
        let u = b.binary("U", BinaryOp::Union, hi, lo);
        b.target("ALL", Schema::of(["k", "v"]), u);
        b.target("HIGH", Schema::of(["k", "v"]), hi);
        let wf = b.build().unwrap();
        let exec = executor(300).with_stream_config(StreamConfig {
            batch_rows: 32,
            frame_budget: 4,
            parallelism: 1,
            ..StreamConfig::default()
        });
        assert_backends_agree(&exec, &wf);
    }

    #[test]
    fn run_dispatches_on_backend() {
        let wf = pipeline_wf();
        let exec = executor(200);
        let mat = exec.run(&wf).unwrap();
        let stream = executor(200)
            .with_backend(Backend::Stream)
            .run(&wf)
            .unwrap();
        assert_eq!(mat.targets, stream.targets);
        assert_eq!(mat.stats, stream.stats);
    }

    #[test]
    fn missing_source_errors_like_materialize() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("GHOST", Schema::of(["a"]), 1.0);
        b.target("T", Schema::of(["a"]), s);
        let wf = b.build().unwrap();
        let exec = Executor::new(Catalog::new());
        assert!(matches!(
            exec.run_stream(&wf).unwrap_err(),
            EngineError::MissingSource(_)
        ));
    }

    #[test]
    fn shared_prefix_hits_the_cache_across_states() {
        // Plant a shared subgraph: NN fans out to a two-filter branch and a
        // direct target. A sibling state of the same family (derived by
        // swapping the two filters — the optimizer-search move) shares the
        // NN prefix and the untouched T2 target; both must be served from
        // the cache, not re-executed.
        use etlopt_core::transition::{Swap, Transition};
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 300.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        let fa = b.unary("σa", UnaryOp::filter(Predicate::gt("v", 150.0)), nn);
        let fb = b.unary("σb", UnaryOp::filter(Predicate::le("k", 8.0)), fa);
        b.target("T1", Schema::of(["k", "v"]), fb);
        b.target("T2", Schema::of(["k", "v"]), nn);
        let wf1 = b.build().unwrap();
        let wf2 = Swap::new(fa, fb).apply(&wf1).unwrap();

        let exec = executor(300);
        let mut cache = SharedCache::new();
        let first = exec.run_stream_cached(&wf1, &mut cache).unwrap();
        assert_eq!(first.counters.cache_hits, 0);
        assert!(first.counters.cache_insertions > 0);

        let second = exec.run_stream_cached(&wf2, &mut cache).unwrap();
        assert!(second.counters.cache_hits > 0, "{:?}", second.counters);
        // The reordered branch has a new fingerprint and is recomputed.
        assert!(second.counters.cache_misses > 0, "{:?}", second.counters);
        // The shared fan-out prefix was not re-executed: its activity
        // does not appear in the second run's stats.
        let nn_key = "2".to_string();
        assert!(first.result.stats.rows_processed.contains_key(&nn_key));
        assert!(!second.result.stats.rows_processed.contains_key(&nn_key));
        // And the cached run still produces correct targets.
        let mat = exec.run_materialize(&wf2).unwrap();
        assert_eq!(mat.targets, second.result.targets);
    }

    #[test]
    fn rerunning_the_same_workflow_serves_targets_from_cache() {
        let wf = pipeline_wf();
        let exec = executor(400);
        let mut cache = SharedCache::new();
        let first = exec.run_stream_cached(&wf, &mut cache).unwrap();
        let second = exec.run_stream_cached(&wf, &mut cache).unwrap();
        assert!(second.counters.cache_hits > 0);
        assert_eq!(second.counters.batches, 0, "no pipeline work on a full hit");
        assert_eq!(first.result.targets, second.result.targets);
    }
}
