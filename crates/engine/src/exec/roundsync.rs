//! Round-synchronous partition-parallel execution (the PR 6 coordinator).
//!
//! This is the original partitioned backend: the coordinator walks the
//! workflow topologically one node at a time, fans workers out per
//! operator round (`per_part`), joins them at a barrier, and holds every
//! node's partition set in coordinator memory between rounds. It is kept
//! as a selectable backend (`StreamConfig { pipeline: false, .. }`) for
//! two reasons:
//!
//! * `engine_bench` compares it against the pipelined executor
//!   (`pipelined_vs_roundsync`), keeping the claimed win honest.
//! * The conformance oracle cross-checks it as a third independent
//!   implementation of the same determinism contract.
//!
//! The determinism machinery (order tags, the scheme lattice, FNV
//! routing, worker-index-order absorption) lives in
//! [`super::partition`] and is shared with the pipelined executor.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use etlopt_core::activity::Op;
use etlopt_core::error::CoreError;
use etlopt_core::graph::{Node, NodeId};
use etlopt_core::schema::{Attr, Schema};
use etlopt_core::semantics::{BinaryOp, UnaryOp};
use etlopt_core::trace::ExecCounters;
use etlopt_core::workflow::Workflow;

use crate::error::{EngineError, Result};
use crate::executor::{ExecResult, ExecStats};
use crate::ops::{self, tuple_key, ExecCtx};
use crate::pool::{BufferId, BufferPool, PoolConfig};
use crate::table::{Row, Table};

use super::partition::{
    add, apply_link, distribute, exchange, internal, max_tag, merge_rows, per_part, plan_chain,
    reorder_set, retag_dense, scheme_after, set_rows, PartSet, Require, Scheme,
};
use super::{plan_cache, SharedCache, StreamConfig, StreamRun};

/// Shared state of one round-synchronous partition-parallel run.
struct ParRuntime<'a> {
    pool: BufferPool,
    stats: ExecStats,
    counters: ExecCounters,
    ctx: ExecCtx<'a>,
    batch_rows: usize,
    nparts: usize,
}

impl ParRuntime<'_> {
    /// Exchange `set` if its scheme cannot prove the required
    /// co-location.
    fn exchange_for(&mut self, set: PartSet, req: &Require) -> Result<PartSet> {
        let satisfied = match req {
            Require::Keys(k) => set.scheme.colocates(k),
            Require::WholeRow => set.scheme.is_keys(),
        };
        if satisfied {
            return Ok(set);
        }
        let keys: Vec<Attr> = match req {
            Require::Keys(k) => k.clone(),
            Require::WholeRow => set.schema.iter().cloned().collect(),
        };
        exchange(&set, &keys, self.nparts, &mut self.counters)
    }

    /// Run a unary chain (a single op is a one-link chain) under one
    /// activity key: every link counts `rows_processed`, only the last
    /// counts `rows_out` — the sequential pipeline's pricing.
    fn run_chain(&mut self, chain: &[UnaryOp], mut set: PartSet, key: &str) -> Result<PartSet> {
        let links = plan_chain(chain, &set.schema, &self.ctx)?;
        if links.is_empty() {
            // Empty merged chain: pass rows through, count output only
            // (the sequential `Tally`).
            add(&mut self.stats.rows_out, key, set_rows(&set));
            return Ok(set);
        }
        let last = links.len() - 1;
        for (i, link) in links.iter().enumerate() {
            if let Some(req) = &link.require {
                set = self.exchange_for(set, req)?;
            }
            add(&mut self.stats.rows_processed, key, set_rows(&set));
            let scheme = scheme_after(&link.plan, set.scheme.clone());
            let ctx = &self.ctx;
            let input = &set;
            let parts = per_part(self.nparts, |j| apply_link(link, &input.parts[j], ctx))?;
            set = PartSet {
                schema: link.out_schema.clone(),
                scheme,
                parts,
            };
            if i == last {
                add(&mut self.stats.rows_out, key, set_rows(&set));
            }
        }
        Ok(set)
    }

    /// Run one binary activity: partitioned hash join, union, or bag
    /// difference/intersection.
    fn run_binary(
        &mut self,
        op: &BinaryOp,
        left: PartSet,
        right: PartSet,
        key: &str,
    ) -> Result<PartSet> {
        // Probe with empty inputs first: schema validation and output
        // derivation go through the exact materializing code path, like
        // the sequential `binary_pipeline`.
        let out_schema = ops::exec_binary(
            op,
            &Table::empty(left.schema.clone()),
            &Table::empty(right.schema.clone()),
        )?
        .schema()
        .clone();
        match op {
            BinaryOp::Union => {
                let right = reorder_set(right, &left.schema)?;
                let total = set_rows(&left) + set_rows(&right);
                add(&mut self.stats.rows_processed, key, total);
                add(&mut self.stats.rows_out, key, total);
                // Sequential union order: every left row, then every
                // right row — realized by offsetting right tags past
                // the left tag space.
                let lbase = max_tag(&left).map_or(0, |t| t + 1);
                let scheme = if left.scheme == right.scheme {
                    left.scheme.clone()
                } else {
                    Scheme::Arbitrary
                };
                let parts = left
                    .parts
                    .into_iter()
                    .zip(right.parts)
                    .map(|(mut l, r)| {
                        l.extend(r.into_iter().map(|(t, row)| (t + lbase, row)));
                        l
                    })
                    .collect();
                Ok(PartSet {
                    schema: out_schema,
                    scheme,
                    parts,
                })
            }
            BinaryOp::Join(on) => self.run_join(on, left, right, out_schema, key),
            BinaryOp::Difference | BinaryOp::Intersection => {
                let intersect = matches!(op, BinaryOp::Intersection);
                let right = reorder_set(right, &left.schema)?;
                // Whole-row bag arithmetic: both sides must share one
                // key scheme. Prefer aligning the right side to the
                // left's existing scheme over re-routing both.
                let (left, right) = match (&left.scheme, &right.scheme) {
                    (Scheme::Keys(a), Scheme::Keys(b)) if a == b => (left, right),
                    (Scheme::Keys(a), _) => {
                        let k = a.clone();
                        let right = exchange(&right, &k, self.nparts, &mut self.counters)?;
                        (left, right)
                    }
                    _ => {
                        let all: Vec<Attr> = left.schema.iter().cloned().collect();
                        (
                            exchange(&left, &all, self.nparts, &mut self.counters)?,
                            exchange(&right, &all, self.nparts, &mut self.counters)?,
                        )
                    }
                };
                add(&mut self.stats.rows_processed, key, set_rows(&right));
                add(&mut self.stats.rows_processed, key, set_rows(&left));
                let (lref, rref) = (&left, &right);
                let parts = per_part(self.nparts, |j| {
                    // Equal rows co-locate, so this partition's
                    // multiplicity map is the sequential map restricted
                    // to its keys; left rows cancel in tag order.
                    let mut counts: HashMap<String, usize> = HashMap::new();
                    for (_, row) in &rref.parts[j] {
                        *counts.entry(tuple_key(row.iter())).or_insert(0) += 1;
                    }
                    let mut out = Vec::new();
                    for (tag, row) in &lref.parts[j] {
                        let k = tuple_key(row.iter());
                        if intersect {
                            if let Some(c) = counts.get_mut(&k) {
                                if *c > 0 {
                                    *c -= 1;
                                    out.push((*tag, row.clone()));
                                }
                            }
                        } else {
                            match counts.get_mut(&k) {
                                Some(c) if *c > 0 => *c -= 1,
                                _ => out.push((*tag, row.clone())),
                            }
                        }
                    }
                    Ok(out)
                })?;
                let set = PartSet {
                    schema: out_schema,
                    scheme: left.scheme.clone(),
                    parts,
                };
                add(&mut self.stats.rows_out, key, set_rows(&set));
                Ok(set)
            }
        }
    }

    /// Partitioned hash join: align both sides on (a subset of) the join
    /// key, then each worker builds its shard's right side through the
    /// buffer pool and probes its shard's left side independently.
    fn run_join(
        &mut self,
        on: &[Attr],
        left: PartSet,
        right: PartSet,
        out_schema: Schema,
        key: &str,
    ) -> Result<PartSet> {
        let lprobe = Table::empty(left.schema.clone());
        let rprobe = Table::empty(right.schema.clone());
        let lcols: Vec<usize> = on.iter().map(|a| lprobe.col(a)).collect::<Result<_>>()?;
        let rcols: Vec<usize> = on.iter().map(|a| rprobe.col(a)).collect::<Result<_>>()?;
        let extra: Vec<usize> = right
            .schema
            .iter()
            .enumerate()
            .filter(|(_, a)| !left.schema.contains(a))
            .map(|(i, _)| i)
            .collect();
        let subset = |s: &[Attr]| s.iter().all(|a| on.contains(a));
        // Matching rows must co-locate: both sides hashed on the same
        // attribute list, which must be a subset of the join key. Reuse
        // an existing side's scheme where possible.
        let (left, right) = match (&left.scheme, &right.scheme) {
            (Scheme::Keys(a), Scheme::Keys(b)) if a == b && subset(a) => (left, right),
            (Scheme::Keys(a), _) if subset(a) => {
                let k = a.clone();
                let right = exchange(&right, &k, self.nparts, &mut self.counters)?;
                (left, right)
            }
            (_, Scheme::Keys(b)) if subset(b) => {
                let k = b.clone();
                let left = exchange(&left, &k, self.nparts, &mut self.counters)?;
                (left, right)
            }
            _ => (
                exchange(&left, on, self.nparts, &mut self.counters)?,
                exchange(&right, on, self.nparts, &mut self.counters)?,
            ),
        };
        // Sequential pricing: the whole build side, then the whole
        // probe side.
        add(&mut self.stats.rows_processed, key, set_rows(&right));
        add(&mut self.stats.rows_processed, key, set_rows(&left));
        // Composite output tag (left tag, right tag), lexicographic —
        // the sequential probe emission order (left rows in order, each
        // row's matches in right insertion order).
        let rbound = max_tag(&right).map_or(1u128, |t| u128::from(t) + 1);
        let scheme = left.scheme.clone();
        // Build buffers are created in partition order by the
        // coordinator so buffer → shard placement is deterministic;
        // worker `j` only ever touches `bufs[j]`.
        let bufs: Vec<BufferId> = (0..self.nparts)
            .map(|_| self.pool.create(right.schema.clone()))
            .collect();
        let pool = &self.pool;
        let batch_rows = self.batch_rows;
        let (lref, rref) = (&left, &right);
        let emitted: Vec<Vec<(u128, Row)>> = per_part(self.nparts, |j| {
            let buf = bufs[j];
            let rpart = &rref.parts[j];
            // Drain the build side through the pool in page-sized
            // chunks (bounding residency like the sequential join) and
            // index key → (row position, right tag). NULL keys are
            // stored but never indexed — they never join.
            let mut index: HashMap<String, Vec<(usize, u64)>> = HashMap::new();
            for (pos, (rtag, row)) in rpart.iter().enumerate() {
                if !rcols.iter().any(|&c| row[c].is_null()) {
                    index
                        .entry(tuple_key(rcols.iter().map(|&c| &row[c])))
                        .or_default()
                        .push((pos, *rtag));
                }
            }
            for chunk in rpart.chunks(batch_rows) {
                pool.append(buf, chunk.iter().map(|(_, r)| r.clone()).collect())?;
            }
            let mut out: Vec<(u128, Row)> = Vec::new();
            for (ltag, lrow) in &lref.parts[j] {
                if lcols.iter().any(|&c| lrow[c].is_null()) {
                    continue;
                }
                if let Some(matches) = index.get(&tuple_key(lcols.iter().map(|&c| &lrow[c]))) {
                    for &(pos, rtag) in matches {
                        let rrow = pool.row(buf, pos)?;
                        let mut row = lrow.clone();
                        row.extend(extra.iter().map(|&c| rrow[c].clone()));
                        out.push((u128::from(*ltag) * rbound + u128::from(rtag), row));
                    }
                }
            }
            pool.free(buf);
            Ok(out)
        })?;
        let out_total: u64 = emitted.iter().map(|p| p.len() as u64).sum();
        add(&mut self.stats.rows_out, key, out_total);
        Ok(PartSet {
            schema: out_schema,
            scheme,
            parts: retag_dense(emitted),
        })
    }

    /// Merge a set and drain it through the pool (bounding the resident
    /// set like a sequential target drain), materializing a table.
    fn drain_merged(&mut self, set: PartSet) -> Result<Table> {
        let schema = set.schema.clone();
        let rows = merge_rows(set);
        let buf = self.pool.create(schema);
        let mut it = rows.into_iter();
        loop {
            let chunk: Vec<Row> = it.by_ref().take(self.batch_rows).collect();
            if chunk.is_empty() {
                break;
            }
            self.counters.batches += 1;
            self.pool.append(buf, chunk)?;
        }
        let table = self.pool.to_table(buf)?;
        self.pool.free(buf);
        Ok(table)
    }
}

/// A produced node output awaiting its consumers: cloned out per
/// consumer, moved out to the last one.
struct Slot {
    set: PartSet,
    left: usize,
}

fn take_set(outs: &mut HashMap<NodeId, Slot>, id: NodeId) -> Result<PartSet> {
    match outs.get_mut(&id) {
        Some(slot) => {
            slot.left -= 1;
            if slot.left == 0 {
                Ok(outs
                    .remove(&id)
                    .map(|s| s.set)
                    .unwrap_or_else(unreachable_set))
            } else {
                Ok(slot.set.clone())
            }
        }
        None => Err(internal(format!("provider {id:?} has no planned output"))),
    }
}

fn unreachable_set() -> PartSet {
    PartSet {
        schema: Schema::default(),
        scheme: Scheme::Arbitrary,
        parts: Vec::new(),
    }
}

fn take_first(inputs: &mut Vec<PartSet>, id: NodeId) -> Result<PartSet> {
    if inputs.is_empty() {
        return Err(internal(format!("node {id:?} lacks an input pipeline")));
    }
    Ok(inputs.remove(0))
}

/// Execute `wf` with the round-synchronous partition-parallel backend.
/// Targets, row order, and stats are bit-identical to the sequential
/// stream (and hence to the pipelined executor); counters are
/// deterministic for a given `cfg.parallelism`.
pub(crate) fn run_round_sync(
    ctx: ExecCtx<'_>,
    wf: &Workflow,
    cfg: StreamConfig,
    mut cache: Option<&mut SharedCache>,
) -> Result<StreamRun> {
    let nparts = cfg.parallelism.max(2);
    let graph = wf.graph();
    let order = graph.topo_order()?;
    let mut rt = ParRuntime {
        pool: BufferPool::new(PoolConfig {
            frame_budget: cfg.frame_budget,
            shards: nparts,
        }),
        stats: ExecStats::default(),
        counters: ExecCounters::default(),
        ctx,
        batch_rows: cfg.batch_rows.max(1),
        nparts,
    };
    rt.counters.worker_rows = vec![0; nparts];

    let plan = plan_cache(wf, &order, cache.as_deref_mut(), &mut rt.counters)?;

    // Pre-seed a zero entry per executing activity (bit-identical stats
    // include the key set).
    for &id in &order {
        if !plan.runs(id) || plan.cached.contains_key(&id) {
            continue;
        }
        if let Node::Activity(act) = graph.node(id)? {
            let key = act.id.to_string();
            rt.stats.rows_processed.entry(key.clone()).or_insert(0);
            rt.stats.rows_out.entry(key).or_insert(0);
        }
    }

    let mut outs: HashMap<NodeId, Slot> = HashMap::new();
    let mut targets: BTreeMap<String, Table> = BTreeMap::new();

    for &id in &order {
        if !plan.runs(id) {
            continue;
        }
        let consumers = graph.consumers(id)?.len();
        if let Some(t) = plan.cached.get(&id) {
            if consumers == 0 {
                if let Node::Recordset(rs) = graph.node(id)? {
                    targets.insert(rs.name.clone(), (**t).clone());
                }
            } else {
                let set = distribute((**t).clone(), rt.nparts, &mut rt.counters);
                outs.insert(
                    id,
                    Slot {
                        set,
                        left: consumers,
                    },
                );
            }
            continue;
        }
        match graph.node(id)? {
            Node::Recordset(rs) => {
                let set = match graph.provider(id, 0)? {
                    None => {
                        let t = rt
                            .ctx
                            .catalog
                            .table(&rs.name)
                            .ok_or_else(|| EngineError::MissingSource(rs.name.clone()))?;
                        let source = t.reordered(&rs.schema)?;
                        distribute(source, rt.nparts, &mut rt.counters)
                    }
                    Some(p) => reorder_set(take_set(&mut outs, p)?, &rs.schema)?,
                };
                if consumers == 0 {
                    let table = rt.drain_merged(set)?;
                    if let (Some(c), Some(h)) = (cache.as_deref_mut(), plan.hashes.as_ref()) {
                        c.insert(h.of(id), Arc::new(table.clone()));
                        rt.counters.cache_insertions += 1;
                    }
                    targets.insert(rs.name.clone(), table);
                } else {
                    if consumers >= 2 {
                        if let (Some(c), Some(h)) = (cache.as_deref_mut(), plan.hashes.as_ref()) {
                            c.insert(h.of(id), Arc::new(rt.drain_merged(set.clone())?));
                            rt.counters.cache_insertions += 1;
                        }
                    }
                    outs.insert(
                        id,
                        Slot {
                            set,
                            left: consumers,
                        },
                    );
                }
            }
            Node::Activity(act) => {
                let mut inputs: Vec<PartSet> = Vec::new();
                for p in graph.providers(id)? {
                    let p = p.ok_or(EngineError::Core(CoreError::MissingProvider {
                        node: id,
                        port: 0,
                    }))?;
                    inputs.push(take_set(&mut outs, p)?);
                }
                let key = act.id.to_string();
                let set = match &act.op {
                    Op::Unary(op) => {
                        let input = take_first(&mut inputs, id)?;
                        rt.run_chain(std::slice::from_ref(op), input, &key)?
                    }
                    Op::Merged(chain) => {
                        let input = take_first(&mut inputs, id)?;
                        rt.run_chain(chain, input, &key)?
                    }
                    Op::Binary(op) => {
                        let right = inputs
                            .pop()
                            .ok_or_else(|| internal(format!("binary node {id:?} lacks inputs")))?;
                        let left = take_first(&mut inputs, id)?;
                        rt.run_binary(op, left, right, &key)?
                    }
                };
                rt.counters.batches += set.parts.iter().filter(|p| !p.is_empty()).count() as u64;
                if consumers == 0 {
                    // Dangling activity: executed for stats parity, rows
                    // discarded.
                    drop(set);
                } else {
                    if consumers >= 2 {
                        if let (Some(c), Some(h)) = (cache.as_deref_mut(), plan.hashes.as_ref()) {
                            c.insert(h.of(id), Arc::new(rt.drain_merged(set.clone())?));
                            rt.counters.cache_insertions += 1;
                        }
                    }
                    outs.insert(
                        id,
                        Slot {
                            set,
                            left: consumers,
                        },
                    );
                }
            }
        }
    }

    let pool_traffic = rt.pool.counters();
    rt.counters.absorb(&pool_traffic);
    Ok(StreamRun {
        result: ExecResult {
            targets,
            stats: rt.stats,
        },
        counters: rt.counters,
    })
}

#[cfg(test)]
mod tests {
    use crate::catalog::Catalog;
    use crate::exec::StreamConfig;
    use crate::executor::Executor;
    use etlopt_core::predicate::Predicate;
    use etlopt_core::scalar::Scalar;
    use etlopt_core::schema::{Attr, Schema};
    use etlopt_core::semantics::{Aggregation, BinaryOp, UnaryOp};
    use etlopt_core::workflow::WorkflowBuilder;

    fn keyed_table(rows: i64) -> crate::table::Table {
        crate::table::Table::from_rows(
            Schema::of(["k", "v"]),
            (0..rows)
                .map(|i| {
                    vec![
                        Scalar::Int(i % 13),
                        if i % 7 == 0 {
                            Scalar::Null
                        } else {
                            Scalar::Float(i as f64)
                        },
                    ]
                })
                .collect(),
        )
        .expect("fixture rows match schema")
    }

    #[test]
    fn round_sync_backend_is_bit_identical_to_sequential() {
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 300.0);
        let d = b.source("D", Schema::of(["k", "name"]), 40.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        let hi = b.unary("HI", UnaryOp::filter(Predicate::gt("v", 150.0)), nn);
        let lo = b.unary("LO", UnaryOp::filter(Predicate::le("v", 150.0)), nn);
        let u = b.binary("U", BinaryOp::Union, hi, lo);
        let dd = b.unary("DD", UnaryOp::Dedup { selectivity: 1.0 }, u);
        let j = b.binary("J", BinaryOp::Join(vec![Attr::new("k")]), dd, d);
        let g = b.unary(
            "G",
            UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")),
            j,
        );
        b.target("T1", Schema::of(["k", "v"]), g);
        b.target("T2", Schema::of(["k", "v"]), hi);
        let wf = b.build().expect("workflow builds");

        let mut cat = Catalog::new();
        cat.insert("S", keyed_table(300));
        cat.insert(
            "D",
            crate::table::Table::from_rows(
                Schema::of(["k", "name"]),
                (0..13)
                    .map(|i| vec![Scalar::Int(i), Scalar::from(format!("d{i}"))])
                    .collect(),
            )
            .expect("dimension fixture"),
        );

        let seq = Executor::new(cat.clone())
            .run_stream(&wf)
            .expect("sequential run");
        for threads in [2, 4] {
            let rs = Executor::new(cat.clone())
                .with_stream_config(StreamConfig {
                    parallelism: threads,
                    pipeline: false,
                    ..StreamConfig::default()
                })
                .run_stream(&wf)
                .expect("round-sync run");
            assert_eq!(seq.result.targets, rs.result.targets, "{threads} threads");
            assert_eq!(seq.result.stats, rs.result.stats, "{threads} threads");
        }
    }
}
