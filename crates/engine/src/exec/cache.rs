//! The shared intermediate-result cache: fingerprint-keyed tables reused
//! across streaming runs, so equivalent states (or DAGs sharing a
//! subgraph) execute the common prefix once.
//!
//! Keys are the per-node structural hashes of
//! [`etlopt_core::signature::hash_state`] — a node's hash digests its
//! whole upstream subgraph *by activity identity*, so two states agree on
//! a key exactly when they compute the same intermediate from the same
//! sources. Because identity, not operator content, is hashed, the cache
//! is **scoped to one workflow family** (states derived from a common
//! initial workflow by transitions, which keep the id ↔ operator binding
//! fixed) — exactly the optimizer-search use case. And because the hash
//! says nothing about the *data*, it is also **scoped to one catalog**.
//! Callers create one `SharedCache` per (family, catalog) pair and must
//! not reuse it across either.
//!
//! Admission happens only at materialization boundaries (fan-out drains
//! and target drains), where the streaming runtime holds the full table
//! anyway — caching never forces extra materialization. Eviction is FIFO
//! over a total-row budget.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::table::Table;

/// Fingerprint-keyed result cache shared across streaming runs.
#[derive(Debug)]
pub struct SharedCache {
    max_rows: usize,
    rows: usize,
    entries: HashMap<u128, Arc<Table>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u128>,
    hits: u64,
    misses: u64,
    insertions: u64,
}

impl SharedCache {
    /// Default total-row budget: enough for every conformance scenario
    /// while staying far below any realistic catalog.
    pub const DEFAULT_MAX_ROWS: usize = 1 << 20;

    /// An empty cache with the default row budget.
    pub fn new() -> SharedCache {
        SharedCache::with_max_rows(SharedCache::DEFAULT_MAX_ROWS)
    }

    /// An empty cache holding at most `max_rows` total rows (≥ 1).
    pub fn with_max_rows(max_rows: usize) -> SharedCache {
        SharedCache {
            max_rows: max_rows.max(1),
            rows: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            insertions: 0,
        }
    }

    /// Look up a node fingerprint, counting a hit or miss.
    pub fn get(&mut self, key: u128) -> Option<Arc<Table>> {
        match self.entries.get(&key) {
            Some(t) => {
                self.hits += 1;
                Some(Arc::clone(t))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Admit a table under a fingerprint, evicting oldest entries past the
    /// row budget. Tables larger than the whole budget and already-present
    /// keys are ignored.
    pub fn insert(&mut self, key: u128, table: Arc<Table>) {
        if table.len() > self.max_rows || self.entries.contains_key(&key) {
            return;
        }
        while self.rows + table.len() > self.max_rows {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            if let Some(t) = self.entries.remove(&old) {
                self.rows -= t.len();
            }
        }
        self.rows += table.len();
        self.entries.insert(key, table);
        self.order.push_back(key);
        self.insertions += 1;
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total rows currently cached.
    pub fn cached_rows(&self) -> usize {
        self.rows
    }

    /// Lifetime (hits, misses, insertions).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.insertions)
    }
}

impl Default for SharedCache {
    fn default() -> Self {
        SharedCache::new()
    }
}

/// A clonable, thread-safe handle to one [`SharedCache`], so several
/// executors — concurrent server jobs, the adaptive loop's observer, a
/// warm-up pass — can populate and probe the same cache. The scoping
/// contract is unchanged: one handle per (workflow family, catalog) pair.
///
/// Locking is per *run*, not per lookup: [`crate::Executor::run_stream_shared`]
/// holds the lock for the whole execution, which keeps a run's hit/miss
/// accounting exact (the closure sees the cache quiescent) and costs
/// nothing across families, since distinct families use distinct handles.
#[derive(Debug, Clone, Default)]
pub struct SharedCacheHandle {
    inner: Arc<std::sync::Mutex<SharedCache>>,
}

impl SharedCacheHandle {
    /// Wrap a cache for sharing.
    pub fn new(cache: SharedCache) -> SharedCacheHandle {
        SharedCacheHandle {
            inner: Arc::new(std::sync::Mutex::new(cache)),
        }
    }

    /// Run `f` with exclusive access to the cache.
    pub fn with_cache<R>(&self, f: impl FnOnce(&mut SharedCache) -> R) -> R {
        let mut guard = self.inner.lock().expect("shared cache lock poisoned");
        f(&mut guard)
    }

    /// `(hits, misses, insertions)` accumulated over every run so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        self.with_cache(|c| c.counters())
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.with_cache(|c| c.len())
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.with_cache(|c| c.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etlopt_core::schema::Schema;

    fn table(rows: usize) -> Arc<Table> {
        Arc::new(
            Table::from_rows(
                Schema::of(["x"]),
                (0..rows).map(|i| vec![(i as i64).into()]).collect(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn get_counts_hits_and_misses() {
        let mut c = SharedCache::new();
        assert!(c.get(7).is_none());
        c.insert(7, table(3));
        assert_eq!(c.get(7).unwrap().len(), 3);
        assert_eq!(c.counters(), (1, 1, 1));
    }

    #[test]
    fn fifo_eviction_respects_row_budget() {
        let mut c = SharedCache::with_max_rows(10);
        c.insert(1, table(4));
        c.insert(2, table(4));
        c.insert(3, table(4)); // evicts key 1
        assert_eq!(c.len(), 2);
        assert_eq!(c.cached_rows(), 8);
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn oversized_tables_and_duplicate_keys_are_ignored() {
        let mut c = SharedCache::with_max_rows(5);
        c.insert(1, table(6));
        assert!(c.is_empty());
        c.insert(2, table(2));
        c.insert(2, table(3)); // duplicate key: first wins
        assert_eq!(c.get(2).unwrap().len(), 2);
        assert_eq!(c.counters(), (1, 0, 1));
    }

    #[test]
    fn empty_tables_cache_fine() {
        let mut c = SharedCache::with_max_rows(1);
        c.insert(9, table(0));
        assert_eq!(c.get(9).unwrap().len(), 0);
    }
}
