//! Partition-parallel streaming execution.
//!
//! Above `parallelism = 1` the streaming backend switches from one
//! single-threaded pipeline to a **hash-partitioned** plan: every node's
//! rows are split across N partitions, each partition is processed by its
//! own scoped worker thread (the `opt/parallel.rs::Threads` discipline:
//! spawn per round, join before the coordinator proceeds), and fan-in
//! points merge partitions back deterministically.
//!
//! # The determinism contract
//!
//! Targets, row order, and [`ExecStats`] must stay **bit-identical** to
//! the sequential stream and materializing backends at every thread
//! count. Three mechanisms carry that guarantee:
//!
//! 1. **Order tags.** Every row carries a `u64` tag recording its
//!    position in the node's sequential output order. Partitions keep
//!    their rows tag-ascending, so a k-way **merge by tag** at any fan-in
//!    (targets, cache boundaries) reconstructs the exact sequential row
//!    order. Operators preserve the invariant: filters keep tags,
//!    keep-first operators keep the *minimum* tag per key (= the
//!    sequential keep-first decision), aggregation tags each group with
//!    its first-seen input tag (= first-appearance emission order), and
//!    joins compose `(left tag, right tag)` lexicographically (= the
//!    sequential probe order) before re-densifying.
//! 2. **Co-location.** Each [`PartSet`] tracks its partitioning
//!    [`Scheme`]. Key-based operators (PK check, dedup, aggregation,
//!    join, bag difference/intersection) demand that equal keys share a
//!    partition; when the current scheme cannot prove that, an
//!    **exchange** re-routes rows by an FNV-1a hash of the canonical key
//!    string (never the process-randomized `HashMap` hasher). Because
//!    equal keys co-locate, each worker's keyed state is exactly the
//!    sequential state restricted to its shard, and because partition
//!    input stays tag-ascending, per-group accumulation order (and hence
//!    float aggregation) is bit-identical.
//! 3. **Worker-index-order absorption.** Workers never touch shared
//!    counters; the coordinator sums their outputs in partition-index
//!    order, and pool counters merge shard-by-shard — so the counter
//!    report is deterministic for a given thread count (the PR 4
//!    `Collector` discipline).
//!
//! Partition contents live in coordinator memory between nodes (the
//! parallel plan trades the sequential backend's strict streaming for
//! parallelism); the frame-budget-bounded [`BufferPool`] still bounds
//! join build sides and target drains, which is where the sequential
//! backend materializes too. The pool is sharded one-shard-per-worker
//! (see `crate::pool`), so workers evict without contending.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::{Arc, OnceLock};

use etlopt_core::activity::Op;
use etlopt_core::error::CoreError;
use etlopt_core::graph::{Node, NodeId};
use etlopt_core::predicate::Predicate;
use etlopt_core::schema::{Attr, Schema};
use etlopt_core::semantics::{Aggregation, BinaryOp, UnaryOp};
use etlopt_core::trace::ExecCounters;
use etlopt_core::workflow::Workflow;

use crate::error::{EngineError, Result};
use crate::eval;
use crate::executor::{ExecResult, ExecStats};
use crate::ops::{self, tuple_key, AggState, ExecCtx};
use crate::pool::{BufferId, BufferPool, PoolConfig};
use crate::table::{Row, Table};

use super::{plan_cache, SharedCache, StreamConfig, StreamRun};

/// A row plus its sequential-order tag.
type Tagged = (u64, Row);

fn internal(reason: impl Into<String>) -> EngineError {
    EngineError::FunctionFailed {
        function: "exec::partition".into(),
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------
// Partitioning scheme and routed row sets
// ---------------------------------------------------------------------

/// How a [`PartSet`]'s rows are distributed across partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Scheme {
    /// Hash-partitioned on the listed attributes: two rows agreeing on
    /// them are guaranteed to share a partition.
    Keys(Vec<Attr>),
    /// No co-location guarantee (round-robin source distribution, or a
    /// key-breaking operator ran).
    Arbitrary,
}

impl Scheme {
    /// Does this scheme co-locate rows that agree on `req`? Hashing on a
    /// *subset* of the required keys suffices: equal `req`-values imply
    /// equal subset-values, hence the same partition.
    fn colocates(&self, req: &[Attr]) -> bool {
        match self {
            Scheme::Keys(s) => s.iter().all(|a| req.contains(a)),
            Scheme::Arbitrary => false,
        }
    }

    /// Is this any key-based scheme (co-locates identical whole rows)?
    fn is_keys(&self) -> bool {
        matches!(self, Scheme::Keys(_))
    }
}

/// One node output, split across partitions. Every partition's rows are
/// tag-ascending; the tag space is node-local (only relative order
/// matters downstream).
#[derive(Debug, Clone)]
struct PartSet {
    schema: Schema,
    scheme: Scheme,
    parts: Vec<Vec<Tagged>>,
}

fn set_rows(set: &PartSet) -> u64 {
    set.parts.iter().map(|p| p.len() as u64).sum()
}

fn max_tag(set: &PartSet) -> Option<u64> {
    set.parts
        .iter()
        .filter_map(|p| p.last().map(|(t, _)| *t))
        .max()
}

/// Co-location demanded by a keyed operator.
enum Require {
    /// Equal values of these attributes must share a partition.
    Keys(Vec<Attr>),
    /// Identical whole rows must share a partition (any key scheme works).
    WholeRow,
}

// ---------------------------------------------------------------------
// Deterministic routing
// ---------------------------------------------------------------------

/// FNV-1a over the canonical key bytes. The partitioner must hash
/// identically on every run and every thread count — `HashMap`'s
/// `RandomState` is seeded per process and must never route rows.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Destination partition for a canonical key string.
fn route(key: &str, nparts: usize) -> usize {
    (fnv1a(key.as_bytes()) % nparts as u64) as usize
}

// ---------------------------------------------------------------------
// Scoped worker fan-out
// ---------------------------------------------------------------------

/// Run `f(partition_index)` for every partition on scoped threads and
/// return the results in partition order. When several workers fail, the
/// lowest partition index wins — deterministic at any thread count.
fn per_part<R, F>(nparts: usize, f: F) -> Result<Vec<R>>
where
    R: Send + Sync,
    F: Fn(usize) -> Result<R> + Sync,
{
    let slots: Vec<OnceLock<Result<R>>> = (0..nparts).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        let f = &f;
        for (i, slot) in slots.iter().enumerate() {
            scope.spawn(move || {
                let _ = slot.set(f(i));
            });
        }
    });
    let mut out = Vec::with_capacity(nparts);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner() {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            None => return Err(internal(format!("partition worker {i} produced no result"))),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Merge / exchange
// ---------------------------------------------------------------------

/// K-way merge of tag-ascending lanes into one tag-ascending vector.
/// Tags are unique across lanes, so the merge is a total order.
fn merge_tagged(lanes: Vec<Vec<Tagged>>) -> Vec<Tagged> {
    let total = lanes.iter().map(Vec::len).sum();
    let mut src: Vec<VecDeque<Tagged>> = lanes.into_iter().map(Into::into).collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (i, q) in src.iter().enumerate() {
            if let Some((tag, _)) = q.front() {
                if best.is_none_or(|(bt, _)| *tag < bt) {
                    best = Some((*tag, i));
                }
            }
        }
        let Some((_, i)) = best else { break };
        if let Some(t) = src[i].pop_front() {
            out.push(t);
        }
    }
    out
}

/// Merge a set back into sequential row order, dropping the tags.
fn merge_rows(set: PartSet) -> Vec<Row> {
    merge_tagged(set.parts)
        .into_iter()
        .map(|(_, r)| r)
        .collect()
}

/// Replace wide (composite) join tags with dense `u64` tags in global
/// composite order, keeping each row in its partition.
fn retag_dense(parts: Vec<Vec<(u128, Row)>>) -> Vec<Vec<Tagged>> {
    let mut out: Vec<Vec<Tagged>> = parts.iter().map(|p| Vec::with_capacity(p.len())).collect();
    let mut src: Vec<VecDeque<(u128, Row)>> = parts.into_iter().map(Into::into).collect();
    let mut next = 0u64;
    loop {
        let mut best: Option<(u128, usize)> = None;
        for (i, q) in src.iter().enumerate() {
            if let Some((tag, _)) = q.front() {
                if best.is_none_or(|(bt, _)| *tag < bt) {
                    best = Some((*tag, i));
                }
            }
        }
        let Some((_, i)) = best else { break };
        if let Some((_, row)) = src[i].pop_front() {
            out[i].push((next, row));
            next += 1;
        }
    }
    out
}

/// The exchange operator: re-route every row to `route(hash(keys))`,
/// preserving tags (so partitions stay tag-ascending). Worker `j` scans
/// all source partitions and keeps the rows destined for itself; the
/// per-source selections merge by tag.
fn exchange(
    set: &PartSet,
    keys: &[Attr],
    nparts: usize,
    counters: &mut ExecCounters,
) -> Result<PartSet> {
    let probe = Table::empty(set.schema.clone());
    let cols: Vec<usize> = keys.iter().map(|a| probe.col(a)).collect::<Result<_>>()?;
    let parts = per_part(nparts, |j| {
        let lanes: Vec<Vec<Tagged>> = set
            .parts
            .iter()
            .map(|src| {
                src.iter()
                    .filter(|(_, row)| {
                        route(&tuple_key(cols.iter().map(|&c| &row[c])), nparts) == j
                    })
                    .cloned()
                    .collect()
            })
            .collect();
        Ok(merge_tagged(lanes))
    })?;
    for (j, part) in parts.iter().enumerate() {
        counters.worker_rows[j] += part.len() as u64;
    }
    Ok(PartSet {
        schema: set.schema.clone(),
        scheme: Scheme::Keys(keys.to_vec()),
        parts,
    })
}

/// Split a source table round-robin across partitions, tagging rows with
/// their table order.
fn distribute(table: Table, nparts: usize, counters: &mut ExecCounters) -> PartSet {
    let schema = table.schema().clone();
    let mut parts: Vec<Vec<Tagged>> = vec![Vec::new(); nparts];
    for (i, row) in table.into_rows().into_iter().enumerate() {
        let j = i % nparts;
        parts[j].push((i as u64, row));
        counters.worker_rows[j] += 1;
    }
    PartSet {
        schema,
        scheme: Scheme::Arbitrary,
        parts,
    }
}

/// Permute every partition's rows into `target` column order (recordset
/// nodes present their provider under the declared schema). Tags and
/// scheme are untouched — attributes keep their names.
fn reorder_set(set: PartSet, target: &Schema) -> Result<PartSet> {
    if &set.schema == target {
        return Ok(set);
    }
    let probe = Table::empty(set.schema.clone());
    let mut perm = Vec::with_capacity(target.len());
    for a in target.iter() {
        perm.push(probe.col(a)?);
    }
    let parts = set
        .parts
        .into_iter()
        .map(|part| {
            part.into_iter()
                .map(|(tag, row)| (tag, perm.iter().map(|&i| row[i].clone()).collect()))
                .collect()
        })
        .collect();
    Ok(PartSet {
        schema: target.clone(),
        scheme: set.scheme,
        parts,
    })
}

// ---------------------------------------------------------------------
// Unary chains
// ---------------------------------------------------------------------

/// The per-partition execution plan of one chain link.
enum LinkPlan {
    /// Per-row predicate evaluation (tags pass through).
    Filter(Predicate),
    /// Keep rows whose column is non-NULL.
    NotNull(usize),
    /// Keep the first (minimum-tag) row per key: `Some(cols)` for the PK
    /// check, `None` for whole-row dedup.
    KeepFirst(Option<Vec<usize>>),
    /// Partitioned group-by aggregation.
    Aggregate {
        agg: Aggregation,
        group_cols: Vec<usize>,
    },
    /// 1:1 row-wise operator via the materializing implementation.
    RowWise(UnaryOp),
}

/// One planned chain link: its execution plan, schemas, and the
/// co-location it demands.
struct Link {
    plan: LinkPlan,
    in_schema: Schema,
    out_schema: Schema,
    require: Option<Require>,
}

/// Plan every link of a unary chain up front — probing each operator
/// against an empty table exactly like the sequential
/// `stream::unary_pipeline` does — so schema errors surface before any
/// data moves, in the same order the sequential backend raises them.
fn plan_chain(chain: &[UnaryOp], input_schema: &Schema, ctx: &ExecCtx<'_>) -> Result<Vec<Link>> {
    let mut links = Vec::with_capacity(chain.len());
    let mut cur = input_schema.clone();
    for op in chain {
        let probe = Table::empty(cur.clone());
        let (plan, out_schema, require) = match op {
            UnaryOp::PkCheck { key, .. } => {
                let cols: Vec<usize> = key.iter().map(|a| probe.col(a)).collect::<Result<_>>()?;
                (
                    LinkPlan::KeepFirst(Some(cols)),
                    cur.clone(),
                    Some(Require::Keys(key.clone())),
                )
            }
            UnaryOp::Dedup { .. } => (
                LinkPlan::KeepFirst(None),
                cur.clone(),
                Some(Require::WholeRow),
            ),
            UnaryOp::Aggregate { agg, .. } => {
                let state = AggState::new(agg, &cur)?;
                let out = state.output_schema();
                let group_cols: Vec<usize> = agg
                    .group_by
                    .iter()
                    .map(|a| probe.col(a))
                    .collect::<Result<_>>()?;
                (
                    LinkPlan::Aggregate {
                        agg: agg.clone(),
                        group_cols,
                    },
                    out,
                    Some(Require::Keys(agg.group_by.clone())),
                )
            }
            op => {
                // Row-wise and filtering operators: derive the output
                // schema (and surface schema errors) through the
                // materializing implementation on an empty probe.
                let out = ops::exec_unary(op, &probe, ctx)?.schema().clone();
                let plan = match op {
                    UnaryOp::Filter { predicate, .. } => LinkPlan::Filter(predicate.clone()),
                    UnaryOp::NotNull { attr, .. } => LinkPlan::NotNull(probe.col(attr)?),
                    other => LinkPlan::RowWise(other.clone()),
                };
                (plan, out, None)
            }
        };
        links.push(Link {
            plan,
            in_schema: cur.clone(),
            out_schema: out_schema.clone(),
            require,
        });
        cur = out_schema;
    }
    Ok(links)
}

/// How a link transforms the partitioning scheme. Soundness, not
/// precision: a preserved `Keys` claim must actually still co-locate;
/// degrading to `Arbitrary` merely forces a later exchange.
fn scheme_after(plan: &LinkPlan, scheme: Scheme) -> Scheme {
    let Scheme::Keys(keys) = scheme else {
        return Scheme::Arbitrary;
    };
    let broken = match plan {
        // Row filters never move or rewrite columns.
        LinkPlan::Filter(_) | LinkPlan::NotNull(_) | LinkPlan::KeepFirst(_) => false,
        // Group rows keep their groupers' values; other columns vanish.
        LinkPlan::Aggregate { agg, .. } => !keys.iter().all(|k| agg.group_by.contains(k)),
        LinkPlan::RowWise(op) => match op {
            UnaryOp::ProjectOut(attrs) => keys.iter().any(|k| attrs.contains(k)),
            UnaryOp::AddField { attr, .. } => keys.contains(attr),
            UnaryOp::Function(f) => {
                keys.contains(&f.output)
                    || (!f.keep_inputs && f.inputs.iter().any(|a| keys.contains(a)))
            }
            UnaryOp::SurrogateKey { key, surrogate, .. } => {
                keys.contains(key) || keys.contains(surrogate)
            }
            _ => false,
        },
    };
    if broken {
        Scheme::Arbitrary
    } else {
        Scheme::Keys(keys)
    }
}

/// Execute one planned link over one partition. Input is tag-ascending;
/// output must be too.
fn apply_link(link: &Link, part: &[Tagged], ctx: &ExecCtx<'_>) -> Result<Vec<Tagged>> {
    match &link.plan {
        LinkPlan::Filter(pred) => {
            let probe = Table::empty(link.in_schema.clone());
            let mut out = Vec::new();
            for (tag, row) in part {
                if eval::eval(pred, &probe, row)?.passes() {
                    out.push((*tag, row.clone()));
                }
            }
            Ok(out)
        }
        LinkPlan::NotNull(col) => Ok(part
            .iter()
            .filter(|(_, row)| !row[*col].is_null())
            .cloned()
            .collect()),
        LinkPlan::KeepFirst(cols) => {
            let mut seen: HashMap<String, ()> = HashMap::new();
            let mut out = Vec::new();
            for (tag, row) in part {
                let k = match cols {
                    Some(cols) => tuple_key(cols.iter().map(|&c| &row[c])),
                    None => tuple_key(row.iter()),
                };
                if let Entry::Vacant(e) = seen.entry(k) {
                    e.insert(());
                    out.push((*tag, row.clone()));
                }
            }
            Ok(out)
        }
        LinkPlan::Aggregate { agg, group_cols } => {
            // The whole group lives in this partition and arrives in
            // global input order, so accumulation order — and float
            // sums — match the sequential run bit-for-bit. Each group
            // is tagged with its first-seen input tag: ascending in
            // first-appearance order, the sequential emission order.
            let mut state = AggState::new(agg, &link.in_schema)?;
            let mut seen: HashSet<String> = HashSet::new();
            let mut first_tags: Vec<u64> = Vec::new();
            for (tag, row) in part {
                if seen.insert(tuple_key(group_cols.iter().map(|&c| &row[c]))) {
                    first_tags.push(*tag);
                }
                state.feed_row(row)?;
            }
            let rows = state.finish()?.into_rows();
            if rows.len() != first_tags.len() {
                return Err(internal("aggregate group count drifted from tag count"));
            }
            Ok(first_tags.into_iter().zip(rows).collect())
        }
        LinkPlan::RowWise(op) => {
            let (tags, rows): (Vec<u64>, Vec<Row>) = part.iter().cloned().unzip();
            let t = Table::from_rows(link.in_schema.clone(), rows)?;
            let out = ops::exec_unary(op, &t, ctx)?.into_rows();
            if out.len() != tags.len() {
                return Err(internal(format!(
                    "row-wise operator changed cardinality ({} -> {})",
                    tags.len(),
                    out.len()
                )));
            }
            Ok(tags.into_iter().zip(out).collect())
        }
    }
}

// ---------------------------------------------------------------------
// The coordinator
// ---------------------------------------------------------------------

/// Shared state of one partition-parallel run.
struct ParRuntime<'a> {
    pool: BufferPool,
    stats: ExecStats,
    counters: ExecCounters,
    ctx: ExecCtx<'a>,
    batch_rows: usize,
    nparts: usize,
}

fn add(map: &mut BTreeMap<String, u64>, key: &str, n: u64) {
    *map.entry(key.to_owned()).or_insert(0) += n;
}

impl ParRuntime<'_> {
    /// Exchange `set` if its scheme cannot prove the required
    /// co-location.
    fn exchange_for(&mut self, set: PartSet, req: &Require) -> Result<PartSet> {
        let satisfied = match req {
            Require::Keys(k) => set.scheme.colocates(k),
            Require::WholeRow => set.scheme.is_keys(),
        };
        if satisfied {
            return Ok(set);
        }
        let keys: Vec<Attr> = match req {
            Require::Keys(k) => k.clone(),
            Require::WholeRow => set.schema.iter().cloned().collect(),
        };
        exchange(&set, &keys, self.nparts, &mut self.counters)
    }

    /// Run a unary chain (a single op is a one-link chain) under one
    /// activity key: every link counts `rows_processed`, only the last
    /// counts `rows_out` — the sequential pipeline's pricing.
    fn run_chain(&mut self, chain: &[UnaryOp], mut set: PartSet, key: &str) -> Result<PartSet> {
        let links = plan_chain(chain, &set.schema, &self.ctx)?;
        if links.is_empty() {
            // Empty merged chain: pass rows through, count output only
            // (the sequential `Tally`).
            add(&mut self.stats.rows_out, key, set_rows(&set));
            return Ok(set);
        }
        let last = links.len() - 1;
        for (i, link) in links.iter().enumerate() {
            if let Some(req) = &link.require {
                set = self.exchange_for(set, req)?;
            }
            add(&mut self.stats.rows_processed, key, set_rows(&set));
            let scheme = scheme_after(&link.plan, set.scheme.clone());
            let ctx = &self.ctx;
            let input = &set;
            let parts = per_part(self.nparts, |j| apply_link(link, &input.parts[j], ctx))?;
            set = PartSet {
                schema: link.out_schema.clone(),
                scheme,
                parts,
            };
            if i == last {
                add(&mut self.stats.rows_out, key, set_rows(&set));
            }
        }
        Ok(set)
    }

    /// Run one binary activity: partitioned hash join, union, or bag
    /// difference/intersection.
    fn run_binary(
        &mut self,
        op: &BinaryOp,
        left: PartSet,
        right: PartSet,
        key: &str,
    ) -> Result<PartSet> {
        // Probe with empty inputs first: schema validation and output
        // derivation go through the exact materializing code path, like
        // the sequential `binary_pipeline`.
        let out_schema = ops::exec_binary(
            op,
            &Table::empty(left.schema.clone()),
            &Table::empty(right.schema.clone()),
        )?
        .schema()
        .clone();
        match op {
            BinaryOp::Union => {
                let right = reorder_set(right, &left.schema)?;
                let total = set_rows(&left) + set_rows(&right);
                add(&mut self.stats.rows_processed, key, total);
                add(&mut self.stats.rows_out, key, total);
                // Sequential union order: every left row, then every
                // right row — realized by offsetting right tags past
                // the left tag space.
                let lbase = max_tag(&left).map_or(0, |t| t + 1);
                let scheme = if left.scheme == right.scheme {
                    left.scheme.clone()
                } else {
                    Scheme::Arbitrary
                };
                let parts = left
                    .parts
                    .into_iter()
                    .zip(right.parts)
                    .map(|(mut l, r)| {
                        l.extend(r.into_iter().map(|(t, row)| (t + lbase, row)));
                        l
                    })
                    .collect();
                Ok(PartSet {
                    schema: out_schema,
                    scheme,
                    parts,
                })
            }
            BinaryOp::Join(on) => self.run_join(on, left, right, out_schema, key),
            BinaryOp::Difference | BinaryOp::Intersection => {
                let intersect = matches!(op, BinaryOp::Intersection);
                let right = reorder_set(right, &left.schema)?;
                // Whole-row bag arithmetic: both sides must share one
                // key scheme. Prefer aligning the right side to the
                // left's existing scheme over re-routing both.
                let (left, right) = match (&left.scheme, &right.scheme) {
                    (Scheme::Keys(a), Scheme::Keys(b)) if a == b => (left, right),
                    (Scheme::Keys(a), _) => {
                        let k = a.clone();
                        let right = exchange(&right, &k, self.nparts, &mut self.counters)?;
                        (left, right)
                    }
                    _ => {
                        let all: Vec<Attr> = left.schema.iter().cloned().collect();
                        (
                            exchange(&left, &all, self.nparts, &mut self.counters)?,
                            exchange(&right, &all, self.nparts, &mut self.counters)?,
                        )
                    }
                };
                add(&mut self.stats.rows_processed, key, set_rows(&right));
                add(&mut self.stats.rows_processed, key, set_rows(&left));
                let (lref, rref) = (&left, &right);
                let parts = per_part(self.nparts, |j| {
                    // Equal rows co-locate, so this partition's
                    // multiplicity map is the sequential map restricted
                    // to its keys; left rows cancel in tag order.
                    let mut counts: HashMap<String, usize> = HashMap::new();
                    for (_, row) in &rref.parts[j] {
                        *counts.entry(tuple_key(row.iter())).or_insert(0) += 1;
                    }
                    let mut out = Vec::new();
                    for (tag, row) in &lref.parts[j] {
                        let k = tuple_key(row.iter());
                        if intersect {
                            if let Some(c) = counts.get_mut(&k) {
                                if *c > 0 {
                                    *c -= 1;
                                    out.push((*tag, row.clone()));
                                }
                            }
                        } else {
                            match counts.get_mut(&k) {
                                Some(c) if *c > 0 => *c -= 1,
                                _ => out.push((*tag, row.clone())),
                            }
                        }
                    }
                    Ok(out)
                })?;
                let set = PartSet {
                    schema: out_schema,
                    scheme: left.scheme.clone(),
                    parts,
                };
                add(&mut self.stats.rows_out, key, set_rows(&set));
                Ok(set)
            }
        }
    }

    /// Partitioned hash join: align both sides on (a subset of) the join
    /// key, then each worker builds its shard's right side through the
    /// buffer pool and probes its shard's left side independently.
    fn run_join(
        &mut self,
        on: &[Attr],
        left: PartSet,
        right: PartSet,
        out_schema: Schema,
        key: &str,
    ) -> Result<PartSet> {
        let lprobe = Table::empty(left.schema.clone());
        let rprobe = Table::empty(right.schema.clone());
        let lcols: Vec<usize> = on.iter().map(|a| lprobe.col(a)).collect::<Result<_>>()?;
        let rcols: Vec<usize> = on.iter().map(|a| rprobe.col(a)).collect::<Result<_>>()?;
        let extra: Vec<usize> = right
            .schema
            .iter()
            .enumerate()
            .filter(|(_, a)| !left.schema.contains(a))
            .map(|(i, _)| i)
            .collect();
        let subset = |s: &[Attr]| s.iter().all(|a| on.contains(a));
        // Matching rows must co-locate: both sides hashed on the same
        // attribute list, which must be a subset of the join key. Reuse
        // an existing side's scheme where possible.
        let (left, right) = match (&left.scheme, &right.scheme) {
            (Scheme::Keys(a), Scheme::Keys(b)) if a == b && subset(a) => (left, right),
            (Scheme::Keys(a), _) if subset(a) => {
                let k = a.clone();
                let right = exchange(&right, &k, self.nparts, &mut self.counters)?;
                (left, right)
            }
            (_, Scheme::Keys(b)) if subset(b) => {
                let k = b.clone();
                let left = exchange(&left, &k, self.nparts, &mut self.counters)?;
                (left, right)
            }
            _ => (
                exchange(&left, on, self.nparts, &mut self.counters)?,
                exchange(&right, on, self.nparts, &mut self.counters)?,
            ),
        };
        // Sequential pricing: the whole build side, then the whole
        // probe side.
        add(&mut self.stats.rows_processed, key, set_rows(&right));
        add(&mut self.stats.rows_processed, key, set_rows(&left));
        // Composite output tag (left tag, right tag), lexicographic —
        // the sequential probe emission order (left rows in order, each
        // row's matches in right insertion order).
        let rbound = max_tag(&right).map_or(1u128, |t| u128::from(t) + 1);
        let scheme = left.scheme.clone();
        // Build buffers are created in partition order by the
        // coordinator so buffer → shard placement is deterministic;
        // worker `j` only ever touches `bufs[j]`.
        let bufs: Vec<BufferId> = (0..self.nparts)
            .map(|_| self.pool.create(right.schema.clone()))
            .collect();
        let pool = &self.pool;
        let batch_rows = self.batch_rows;
        let (lref, rref) = (&left, &right);
        let emitted: Vec<Vec<(u128, Row)>> = per_part(self.nparts, |j| {
            let buf = bufs[j];
            let rpart = &rref.parts[j];
            // Drain the build side through the pool in page-sized
            // chunks (bounding residency like the sequential join) and
            // index key → (row position, right tag). NULL keys are
            // stored but never indexed — they never join.
            let mut index: HashMap<String, Vec<(usize, u64)>> = HashMap::new();
            for (pos, (rtag, row)) in rpart.iter().enumerate() {
                if !rcols.iter().any(|&c| row[c].is_null()) {
                    index
                        .entry(tuple_key(rcols.iter().map(|&c| &row[c])))
                        .or_default()
                        .push((pos, *rtag));
                }
            }
            for chunk in rpart.chunks(batch_rows) {
                pool.append(buf, chunk.iter().map(|(_, r)| r.clone()).collect())?;
            }
            let mut out: Vec<(u128, Row)> = Vec::new();
            for (ltag, lrow) in &lref.parts[j] {
                if lcols.iter().any(|&c| lrow[c].is_null()) {
                    continue;
                }
                if let Some(matches) = index.get(&tuple_key(lcols.iter().map(|&c| &lrow[c]))) {
                    for &(pos, rtag) in matches {
                        let rrow = pool.row(buf, pos)?;
                        let mut row = lrow.clone();
                        row.extend(extra.iter().map(|&c| rrow[c].clone()));
                        out.push((u128::from(*ltag) * rbound + u128::from(rtag), row));
                    }
                }
            }
            pool.free(buf);
            Ok(out)
        })?;
        let out_total: u64 = emitted.iter().map(|p| p.len() as u64).sum();
        add(&mut self.stats.rows_out, key, out_total);
        Ok(PartSet {
            schema: out_schema,
            scheme,
            parts: retag_dense(emitted),
        })
    }

    /// Merge a set and drain it through the pool (bounding the resident
    /// set like a sequential target drain), materializing a table.
    fn drain_merged(&mut self, set: PartSet) -> Result<Table> {
        let schema = set.schema.clone();
        let rows = merge_rows(set);
        let buf = self.pool.create(schema);
        let mut it = rows.into_iter();
        loop {
            let chunk: Vec<Row> = it.by_ref().take(self.batch_rows).collect();
            if chunk.is_empty() {
                break;
            }
            self.counters.batches += 1;
            self.pool.append(buf, chunk)?;
        }
        let table = self.pool.to_table(buf)?;
        self.pool.free(buf);
        Ok(table)
    }
}

/// A produced node output awaiting its consumers: cloned out per
/// consumer, moved out to the last one.
struct Slot {
    set: PartSet,
    left: usize,
}

fn take_set(outs: &mut HashMap<NodeId, Slot>, id: NodeId) -> Result<PartSet> {
    match outs.get_mut(&id) {
        Some(slot) => {
            slot.left -= 1;
            if slot.left == 0 {
                Ok(outs
                    .remove(&id)
                    .map(|s| s.set)
                    .unwrap_or_else(unreachable_set))
            } else {
                Ok(slot.set.clone())
            }
        }
        None => Err(internal(format!("provider {id:?} has no planned output"))),
    }
}

fn unreachable_set() -> PartSet {
    PartSet {
        schema: Schema::default(),
        scheme: Scheme::Arbitrary,
        parts: Vec::new(),
    }
}

fn take_first(inputs: &mut Vec<PartSet>, id: NodeId) -> Result<PartSet> {
    if inputs.is_empty() {
        return Err(internal(format!("node {id:?} lacks an input pipeline")));
    }
    Ok(inputs.remove(0))
}

/// Execute `wf` with the partition-parallel streaming backend. Targets,
/// row order, and stats are bit-identical to the sequential stream (and
/// hence to materialize); counters are deterministic for a given
/// `cfg.parallelism`.
pub(crate) fn run_parallel(
    ctx: ExecCtx<'_>,
    wf: &Workflow,
    cfg: StreamConfig,
    mut cache: Option<&mut SharedCache>,
) -> Result<StreamRun> {
    let nparts = cfg.parallelism.max(2);
    let graph = wf.graph();
    let order = graph.topo_order()?;
    let mut rt = ParRuntime {
        pool: BufferPool::new(PoolConfig {
            frame_budget: cfg.frame_budget,
            shards: nparts,
        }),
        stats: ExecStats::default(),
        counters: ExecCounters::default(),
        ctx,
        batch_rows: cfg.batch_rows.max(1),
        nparts,
    };
    rt.counters.worker_rows = vec![0; nparts];

    let plan = plan_cache(wf, &order, cache.as_deref_mut(), &mut rt.counters)?;

    // Pre-seed a zero entry per executing activity (bit-identical stats
    // include the key set).
    for &id in &order {
        if !plan.runs(id) || plan.cached.contains_key(&id) {
            continue;
        }
        if let Node::Activity(act) = graph.node(id)? {
            let key = act.id.to_string();
            rt.stats.rows_processed.entry(key.clone()).or_insert(0);
            rt.stats.rows_out.entry(key).or_insert(0);
        }
    }

    let mut outs: HashMap<NodeId, Slot> = HashMap::new();
    let mut targets: BTreeMap<String, Table> = BTreeMap::new();

    for &id in &order {
        if !plan.runs(id) {
            continue;
        }
        let consumers = graph.consumers(id)?.len();
        if let Some(t) = plan.cached.get(&id) {
            if consumers == 0 {
                if let Node::Recordset(rs) = graph.node(id)? {
                    targets.insert(rs.name.clone(), (**t).clone());
                }
            } else {
                let set = distribute((**t).clone(), rt.nparts, &mut rt.counters);
                outs.insert(
                    id,
                    Slot {
                        set,
                        left: consumers,
                    },
                );
            }
            continue;
        }
        match graph.node(id)? {
            Node::Recordset(rs) => {
                let set = match graph.provider(id, 0)? {
                    None => {
                        let t = rt
                            .ctx
                            .catalog
                            .table(&rs.name)
                            .ok_or_else(|| EngineError::MissingSource(rs.name.clone()))?;
                        let source = t.reordered(&rs.schema)?;
                        distribute(source, rt.nparts, &mut rt.counters)
                    }
                    Some(p) => reorder_set(take_set(&mut outs, p)?, &rs.schema)?,
                };
                if consumers == 0 {
                    let table = rt.drain_merged(set)?;
                    if let (Some(c), Some(h)) = (cache.as_deref_mut(), plan.hashes.as_ref()) {
                        c.insert(h.of(id), Arc::new(table.clone()));
                        rt.counters.cache_insertions += 1;
                    }
                    targets.insert(rs.name.clone(), table);
                } else {
                    if consumers >= 2 {
                        if let (Some(c), Some(h)) = (cache.as_deref_mut(), plan.hashes.as_ref()) {
                            c.insert(h.of(id), Arc::new(rt.drain_merged(set.clone())?));
                            rt.counters.cache_insertions += 1;
                        }
                    }
                    outs.insert(
                        id,
                        Slot {
                            set,
                            left: consumers,
                        },
                    );
                }
            }
            Node::Activity(act) => {
                let mut inputs: Vec<PartSet> = Vec::new();
                for p in graph.providers(id)? {
                    let p = p.ok_or(EngineError::Core(CoreError::MissingProvider {
                        node: id,
                        port: 0,
                    }))?;
                    inputs.push(take_set(&mut outs, p)?);
                }
                let key = act.id.to_string();
                let set = match &act.op {
                    Op::Unary(op) => {
                        let input = take_first(&mut inputs, id)?;
                        rt.run_chain(std::slice::from_ref(op), input, &key)?
                    }
                    Op::Merged(chain) => {
                        let input = take_first(&mut inputs, id)?;
                        rt.run_chain(chain, input, &key)?
                    }
                    Op::Binary(op) => {
                        let right = inputs
                            .pop()
                            .ok_or_else(|| internal(format!("binary node {id:?} lacks inputs")))?;
                        let left = take_first(&mut inputs, id)?;
                        rt.run_binary(op, left, right, &key)?
                    }
                };
                rt.counters.batches += set.parts.iter().filter(|p| !p.is_empty()).count() as u64;
                if consumers == 0 {
                    // Dangling activity: executed for stats parity, rows
                    // discarded.
                    drop(set);
                } else {
                    if consumers >= 2 {
                        if let (Some(c), Some(h)) = (cache.as_deref_mut(), plan.hashes.as_ref()) {
                            c.insert(h.of(id), Arc::new(rt.drain_merged(set.clone())?));
                            rt.counters.cache_insertions += 1;
                        }
                    }
                    outs.insert(
                        id,
                        Slot {
                            set,
                            left: consumers,
                        },
                    );
                }
            }
        }
    }

    let pool_traffic = rt.pool.counters();
    rt.counters.absorb(&pool_traffic);
    Ok(StreamRun {
        result: ExecResult {
            targets,
            stats: rt.stats,
        },
        counters: rt.counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::executor::Executor;
    use etlopt_core::scalar::Scalar;
    use etlopt_core::workflow::WorkflowBuilder;

    #[test]
    fn routing_is_deterministic_and_spreads_keys() {
        let hits: Vec<usize> = (0..64).map(|i| route(&format!("key-{i}"), 4)).collect();
        let again: Vec<usize> = (0..64).map(|i| route(&format!("key-{i}"), 4)).collect();
        assert_eq!(hits, again, "routing must be stable across calls");
        let used: HashSet<usize> = hits.iter().copied().collect();
        assert!(used.len() > 1, "64 distinct keys should hit >1 partition");
        assert!(hits.iter().all(|&p| p < 4));
    }

    fn keyed_table(rows: i64) -> Table {
        Table::from_rows(
            Schema::of(["k", "v"]),
            (0..rows)
                .map(|i| {
                    vec![
                        Scalar::Int(i % 13),
                        if i % 7 == 0 {
                            Scalar::Null
                        } else {
                            Scalar::Float(i as f64)
                        },
                    ]
                })
                .collect(),
        )
        .expect("fixture rows match schema")
    }

    #[test]
    fn exchange_preserves_multiset_and_colocates_keys() {
        let mut counters = ExecCounters {
            worker_rows: vec![0; 4],
            ..ExecCounters::default()
        };
        let table = keyed_table(200);
        let input_rows = table.rows().to_vec();
        let set = distribute(table, 4, &mut counters);
        let out = exchange(&set, &[Attr::new("k")], 4, &mut counters).expect("exchange succeeds");

        // Union of partitions = input multiset, and tags survive intact.
        let mut merged = merge_tagged(out.parts.clone());
        assert_eq!(merged.len(), input_rows.len());
        let tags: Vec<u64> = merged.iter().map(|(t, _)| *t).collect();
        assert_eq!(tags, (0..200u64).collect::<Vec<_>>());
        let rows: Vec<Row> = merged.drain(..).map(|(_, r)| r).collect();
        assert_eq!(rows, input_rows);

        // Same key → same partition, and partitions stay tag-ascending.
        let probe = Table::empty(out.schema.clone());
        let kcol = probe.col(&Attr::new("k")).expect("k resolves");
        let mut home: HashMap<String, usize> = HashMap::new();
        for (j, part) in out.parts.iter().enumerate() {
            let mut last = None;
            for (tag, row) in part {
                assert!(last.is_none_or(|l| l < *tag), "tags ascend per partition");
                last = Some(*tag);
                let k = tuple_key([&row[kcol]].into_iter());
                assert_eq!(
                    *home.entry(k).or_insert(j),
                    j,
                    "key split across partitions"
                );
            }
        }
        assert!(home.len() > 1);
    }

    fn rich_workflow() -> etlopt_core::workflow::Workflow {
        use etlopt_core::predicate::Predicate;
        use etlopt_core::semantics::Aggregation;
        let mut b = WorkflowBuilder::new();
        let s = b.source("S", Schema::of(["k", "v"]), 300.0);
        let d = b.source("D", Schema::of(["k", "name"]), 40.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        let hi = b.unary("HI", UnaryOp::filter(Predicate::gt("v", 150.0)), nn);
        let lo = b.unary("LO", UnaryOp::filter(Predicate::le("v", 150.0)), nn);
        let u = b.binary("U", BinaryOp::Union, hi, lo);
        let dd = b.unary("DD", UnaryOp::Dedup { selectivity: 1.0 }, u);
        let j = b.binary("J", BinaryOp::Join(vec![Attr::new("k")]), dd, d);
        let g = b.unary(
            "G",
            UnaryOp::aggregate(Aggregation::sum(["k"], "v", "v")),
            j,
        );
        b.target("T1", Schema::of(["k", "v"]), g);
        b.target("T2", Schema::of(["k", "v"]), hi);
        b.build().expect("workflow builds")
    }

    fn rich_executor() -> Executor {
        let mut cat = Catalog::new();
        cat.insert("S", keyed_table(300));
        cat.insert(
            "D",
            Table::from_rows(
                Schema::of(["k", "name"]),
                (0..13)
                    .map(|i| vec![Scalar::Int(i), Scalar::from(format!("d{i}"))])
                    .collect(),
            )
            .expect("dimension fixture"),
        );
        Executor::new(cat)
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let wf = rich_workflow();
        let exec = rich_executor();
        let seq = exec.run_stream(&wf).expect("sequential run");
        for threads in [2, 3, 4] {
            let par = rich_executor()
                .with_parallelism(threads)
                .run_stream(&wf)
                .unwrap_or_else(|e| panic!("parallel run at {threads} threads: {e:?}"));
            assert_eq!(
                seq.result.targets, par.result.targets,
                "targets must be bit-identical at {threads} threads"
            );
            assert_eq!(
                seq.result.stats, par.result.stats,
                "stats must be bit-identical at {threads} threads"
            );
            assert_eq!(
                par.counters.worker_rows.len(),
                threads,
                "one batch-split lane per worker"
            );
            assert!(par.counters.worker_rows.iter().sum::<u64>() > 0);
        }
    }

    #[test]
    fn parallel_run_under_tiny_pool_spills_and_matches() {
        let mut b = WorkflowBuilder::new();
        use etlopt_core::predicate::Predicate;
        let s = b.source("S", Schema::of(["k", "v"]), 300.0);
        let nn = b.unary("NN", UnaryOp::not_null("v"), s);
        let f = b.unary("F", UnaryOp::filter(Predicate::gt("v", 10.0)), nn);
        b.target("T", Schema::of(["k", "v"]), f);
        let wf = b.build().expect("workflow builds");
        let mut cat = Catalog::new();
        cat.insert("S", keyed_table(300));
        let seq = Executor::new(cat.clone())
            .with_stream_config(StreamConfig {
                batch_rows: 8,
                frame_budget: 2,
                parallelism: 1,
            })
            .run_stream(&wf)
            .expect("sequential run");
        let par = Executor::new(cat)
            .with_stream_config(StreamConfig {
                batch_rows: 8,
                frame_budget: 2,
                parallelism: 4,
            })
            .run_stream(&wf)
            .expect("parallel run");
        assert_eq!(seq.result.targets, par.result.targets);
        assert_eq!(seq.result.stats, par.result.stats);
        assert!(par.counters.spilled(), "{:?}", par.counters);
    }

    #[test]
    fn parallel_cached_rerun_serves_targets_from_cache() {
        let wf = rich_workflow();
        let exec = rich_executor().with_parallelism(2);
        let mut cache = SharedCache::new();
        let first = exec.run_stream_cached(&wf, &mut cache).expect("first run");
        assert!(first.counters.cache_insertions > 0);
        let second = exec.run_stream_cached(&wf, &mut cache).expect("second run");
        assert!(second.counters.cache_hits > 0, "{:?}", second.counters);
        assert_eq!(first.result.targets, second.result.targets);
        // And a sequential consumer of the same cache sees the same
        // tables.
        let seq = rich_executor()
            .run_stream_cached(&wf, &mut cache)
            .expect("sequential cached run");
        assert_eq!(first.result.targets, seq.result.targets);
    }

    #[test]
    fn difference_and_intersection_match_sequential() {
        use etlopt_core::predicate::Predicate;
        for op in [BinaryOp::Difference, BinaryOp::Intersection] {
            let mut b = WorkflowBuilder::new();
            let s = b.source("S", Schema::of(["k", "v"]), 300.0);
            let nn = b.unary("NN", UnaryOp::not_null("v"), s);
            let hi = b.unary("HI", UnaryOp::filter(Predicate::gt("v", 150.0)), nn);
            let x = b.binary("X", op.clone(), nn, hi);
            b.target("T", Schema::of(["k", "v"]), x);
            let wf = b.build().expect("workflow builds");
            let mut cat = Catalog::new();
            cat.insert("S", keyed_table(300));
            let seq = Executor::new(cat.clone())
                .run_stream(&wf)
                .expect("sequential run");
            let par = Executor::new(cat)
                .with_parallelism(3)
                .run_stream(&wf)
                .expect("parallel run");
            assert_eq!(seq.result.targets, par.result.targets, "{op:?}");
            assert_eq!(seq.result.stats, par.result.stats, "{op:?}");
        }
    }
}
